"""Streaming inference — serve a Bioformer over a live sEMG stream.

The paper's deployment target is real-time gesture recognition: a
continuous 14-channel signal is windowed (150 ms window, 15 ms slide),
classified per window, and smoothed with majority voting so one bad window
cannot flip the decision.  This example runs that loop end-to-end on the
host through :mod:`repro.serve`:

1. synthesise a continuous multi-gesture recording with the synthetic
   sEMG signal model;
2. start an :class:`~repro.serve.InferenceServer` (float backend, dynamic
   micro-batching) for a Bioformer looked up from the model registry;
3. stream the recording chunk-by-chunk through a
   :class:`~repro.serve.StreamSession` and print the smoothed decisions —
   while a bulk re-scoring job of the same windows runs concurrently at
   low priority (``infer_async``), so the live stream's high-priority
   windows preempt it in the micro-batch queue;
4. repeat with the int8 backend — the GAP8 integer numerics, served
   through the LUT nonlinearity kernels (``lower_kwargs=dict(use_lut=...)``
   toggles the op set; both are bit-identical, see docs/quantization.md) —
   and compare the decision streams;
5. demonstrate the fault-tolerance layer: an int8 server with retries, a
   circuit breaker and float-backend fallback serves through an injected
   fault storm — every answer still lands (some flagged ``degraded``),
   and ``server.health()`` reports what happened;
6. run a small fleet through a :class:`~repro.serve.SessionManager`:
   tenant quotas, a mid-recording crash recovered bitwise from a
   JSON-serialised :class:`~repro.serve.SessionCheckpoint`, a dead
   electrode masked instead of refused, and a graceful ``drain()``.

The float server runs on a two-thread :class:`~repro.serve.WorkerPool`
(``num_workers=2``), overlapping micro-batch formation with backend
execution; per-priority request counts are reported at the end of each
phase.

Run with::

    python examples/streaming_inference.py
"""

import numpy as np

from repro.data import NinaProDB6, NinaProDB6Config, sliding_windows
from repro.serve import (
    BackendCache,
    CircuitBreaker,
    FaultInjectingBackend,
    InferenceServer,
    InjectError,
    NaNOutput,
    Priority,
    QuotaExceeded,
    RetryPolicy,
    SessionCheckpoint,
)


def make_stream(dataset: NinaProDB6, subject: int = 1) -> np.ndarray:
    """Concatenate a few labelled recordings into one continuous signal."""
    session = dataset.session_dataset(subject, session=1)
    # Re-join a handful of windows per gesture into a pseudo-recording.
    chosen = []
    for gesture in np.unique(session.labels)[:4]:
        gesture_windows = session.windows[session.labels == gesture][:6]
        chosen.append(np.concatenate(list(gesture_windows), axis=-1))
    return np.concatenate(chosen, axis=-1)


def run_stream(server: InferenceServer, signal: np.ndarray, slide: int) -> np.ndarray:
    """Stream at HIGH priority while bulk re-scoring rides along at LOW.

    ``open_stream`` classifies at :data:`Priority.HIGH` by default, so the
    live session's windows jump ahead of the queued low-priority bulk
    futures inside the shared micro-batch queue.
    """
    window = server.input_shape[-1]
    bulk_futures = server.infer_async(
        sliding_windows(signal, window=window, slide=slide), priority=Priority.LOW
    )
    session = server.open_stream(slide=slide, smoothing=5)
    for start in range(0, signal.shape[-1], 64):  # 64-sample acquisition chunks
        for decision in session.push(signal[:, start : start + 64]):
            if decision.window_index % 25 == 0:
                print(
                    f"  window {decision.window_index:4d}: "
                    f"raw={decision.label}  smoothed={decision.smoothed_label}"
                )
    bulk_done = sum(future.done() for future in bulk_futures)
    bulk_logits = np.stack([future.result(timeout=60.0) for future in bulk_futures])
    stream_labels = session.labels(smoothed=False)
    agreement = float(np.mean(np.argmax(bulk_logits, axis=-1) == stream_labels))
    by_priority = server.stats.by_priority
    print(
        f"  bulk rescore: {len(bulk_futures)} windows at LOW priority "
        f"({bulk_done} already done when the stream finished), "
        f"{100 * agreement:.0f}% label agreement with the live stream"
    )
    print(
        f"  served per priority: HIGH={by_priority.get(int(Priority.HIGH), 0)} "
        f"LOW={by_priority.get(int(Priority.LOW), 0)}"
    )
    return session.labels(smoothed=True)


def main() -> None:
    # 1. A continuous recording from the synthetic NinaPro DB6 surrogate.
    dataset = NinaProDB6(NinaProDB6Config.tiny())
    config = dataset.config
    signal = make_stream(dataset)
    print(
        f"streaming {signal.shape[-1]} samples x {signal.shape[0]} channels "
        f"(window={config.window_samples}, slide={config.slide_samples})"
    )

    cache = BackendCache()
    geometry = dict(
        num_channels=config.num_channels,
        window_samples=config.window_samples,
        seed=0,
    )

    # 2-3. Serve the float backend on a 2-worker pool and stream the signal
    # through it, with a concurrent low-priority bulk re-score of the same
    # windows (the stream's HIGH-priority requests preempt it).
    print("\n-- float backend (2 workers) ----------------------------------")
    with InferenceServer(
        "bio1",
        "float",
        patch_size=10,
        model_kwargs=geometry,
        cache=cache,
        max_batch_size=16,
        num_workers=2,
    ) as server:
        float_labels = run_stream(server, signal, slide=config.slide_samples)
        stats = server.stats
        print(
            f"served {stats.requests} windows in {stats.batches} micro-batches "
            f"(mean batch {stats.batcher.mean_batch:.1f}, "
            f"{stats.pool.num_workers} workers, {stats.pool.jobs} pool jobs)"
        )

    # 4. Same stream through the int8 (GAP8 numerics) backend.  use_lut=True
    # (the default) serves the LUT-based integer softmax/GELU — the fast op
    # set of the int8 path; use_lut=False would serve the legacy elementwise
    # I-BERT kernels, bit-identical but slower when batched.
    print("\n-- int8 backend (LUT nonlinearities) --------------------------")
    rng = np.random.default_rng(0)
    calibration = rng.normal(size=(16, config.num_channels, config.window_samples))
    with InferenceServer(
        "bio1",
        "int8",
        patch_size=10,
        model_kwargs=geometry,
        calibration=calibration,
        cache=cache,
        max_batch_size=16,
        lower_kwargs=dict(use_lut=True),
    ) as server:
        print(f"  int8 backend uses LUT kernels: {server.backend.uses_lut}")
        int8_labels = run_stream(server, signal, slide=config.slide_samples)

        # Cross-check the op sets: the elementwise variant (cached separately
        # by its lowering options) must produce bit-identical logits.
        probe = sliding_windows(
            signal, window=config.window_samples, slide=config.slide_samples
        )[:8]
        with InferenceServer(
            "bio1",
            "int8",
            patch_size=10,
            model_kwargs=geometry,
            calibration=calibration,
            cache=cache,
            lower_kwargs=dict(use_lut=False),
        ) as elementwise:
            exact = bool(
                np.array_equal(server.infer(probe), elementwise.infer(probe))
            )
            print(f"  LUT vs elementwise op set on {len(probe)} windows: "
                  f"{'bit-identical' if exact else 'MISMATCH'}")

    agreement = float(np.mean(float_labels == int8_labels))
    print(
        f"\nfloat vs int8 smoothed decisions: {100 * agreement:.1f}% agreement "
        f"over {float_labels.shape[0]} windows"
    )

    # 5. Fault-tolerant serving: wrap the int8 backend in a fault injector
    # (transient errors + NaN logits on a fixed schedule), arm retries, a
    # circuit breaker and the float fallback — and watch every request get
    # an answer anyway.
    print("\n-- fault tolerance (injected faults, int8 + float fallback) ---")
    probe = sliding_windows(
        signal, window=config.window_samples, slide=config.slide_samples
    )[:12]
    with InferenceServer(
        "bio1",
        "int8",
        patch_size=10,
        model_kwargs=geometry,
        calibration=calibration,
        cache=cache,
        max_batch_size=4,
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.002),
        circuit_breaker=CircuitBreaker(failure_threshold=3, recovery_s=0.25),
        fallback=True,
        backend_wrapper=lambda backend: FaultInjectingBackend(
            backend, {0: InjectError(), 2: NaNOutput(), 3: InjectError(), 4: InjectError(retryable=False)}
        ),
    ) as server:
        logits = server.infer(probe, timeout=60.0)
        labels = np.argmax(np.asarray(logits), axis=-1)
        health = server.health()
        stats = server.stats
        print(f"  {len(probe)} windows served through the fault storm: labels {labels.tolist()}")
        print(
            f"  retries={stats.retries}  degraded rows="
            f"{stats.degraded} (answered by the float fallback, "
            f"flagged via DegradedLogits)"
        )
        breaker_states = {name: snap.state for name, snap in health.breakers.items()}
        print(f"  health: status={health.status}  breakers={breaker_states}")

    # 6. Fleet session lifecycle: a SessionManager multiplexes many tenants'
    # streams over one server — per-tenant quotas, crash-safe bitwise
    # checkpoint/restore, degraded-electrode masking, graceful drain.
    print("\n-- fleet sessions (SessionManager over one server) ------------")
    with InferenceServer(
        "bio1",
        "float",
        patch_size=10,
        model_kwargs=geometry,
        cache=cache,
        max_batch_size=16,
    ) as server:
        reference = server.open_stream(slide=config.slide_samples, smoothing=5)
        reference.run(signal, chunk_size=64)

        manager = server.open_session_manager(
            slide=config.slide_samples, smoothing=5
        )
        manager.configure_tenant("clinic", priority=Priority.HIGH)
        manager.configure_tenant("bulk", priority=Priority.LOW, max_sessions=2)

        # A clinic stream interrupted mid-recording: close it (capturing a
        # checkpoint), ship the checkpoint through JSON, restore it into a
        # fresh session, finish the recording — the concatenated decisions
        # must be bitwise what the uninterrupted stream produced.
        cut = 64 * (signal.shape[-1] // 128)
        live = manager.create_session("clinic")
        live.run(signal[:, :cut], chunk_size=64)
        checkpoint = manager.close_session(live.session_id)
        resumed = manager.restore(SessionCheckpoint.from_json(checkpoint.to_json()))
        resumed.run(signal[:, cut:], chunk_size=64)
        exact = live.decisions + resumed.decisions == reference.decisions
        print(
            f"  crash at sample {cut}, restored from a JSON checkpoint: "
            f"{'bitwise-identical decisions' if exact else 'MISMATCH'} "
            f"({len(reference.decisions)} windows)"
        )

        # A dead electrode: one acquisition chunk arrives with channel 0
        # saturated to NaN.  The manager masks the channel to 0.0 (the
        # channel-dropout convention the classifier trained under) and flags
        # the affected decisions instead of refusing the chunk.
        poisoned = np.array(signal[:, : 4 * config.window_samples])
        poisoned[0] = np.nan
        flagged = [d for d in resumed.push(poisoned) if d.degraded]
        print(f"  dead-electrode chunk: {len(flagged)} decisions flagged degraded")

        # Tenant quotas are typed, not stringly: the bulk tenant is capped
        # at two concurrent sessions.
        for _ in range(2):
            manager.create_session("bulk")
        try:
            manager.create_session("bulk")
        except QuotaExceeded as exc:
            print(
                f"  bulk tenant refused a 3rd session: "
                f"QuotaExceeded(tenant={exc.tenant!r}, quota={exc.quota!r})"
            )

        snapshot = server.health().sessions
        checkpoints = manager.drain()  # settles in-flight work, checkpoints all
        print(
            f"  fleet: {snapshot.sessions_open} open sessions across "
            f"{len(snapshot.tenants)} tenants before drain; drained with "
            f"{len(checkpoints)} final checkpoints"
        )


if __name__ == "__main__":
    main()
