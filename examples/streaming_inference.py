"""Streaming inference — serve a Bioformer over a live sEMG stream.

The paper's deployment target is real-time gesture recognition: a
continuous 14-channel signal is windowed (150 ms window, 15 ms slide),
classified per window, and smoothed with majority voting so one bad window
cannot flip the decision.  This example runs that loop end-to-end on the
host through :mod:`repro.serve`:

1. synthesise a continuous multi-gesture recording with the synthetic
   sEMG signal model;
2. start an :class:`~repro.serve.InferenceServer` (float backend, dynamic
   micro-batching) for a Bioformer looked up from the model registry;
3. stream the recording chunk-by-chunk through a
   :class:`~repro.serve.StreamSession` and print the smoothed decisions;
4. repeat with the int8 backend — the GAP8 integer numerics — and compare
   the decision streams.

Run with::

    python examples/streaming_inference.py
"""

import numpy as np

from repro.data import NinaProDB6, NinaProDB6Config
from repro.serve import BackendCache, InferenceServer


def make_stream(dataset: NinaProDB6, subject: int = 1) -> np.ndarray:
    """Concatenate a few labelled recordings into one continuous signal."""
    session = dataset.session_dataset(subject, session=1)
    # Re-join a handful of windows per gesture into a pseudo-recording.
    chosen = []
    for gesture in np.unique(session.labels)[:4]:
        gesture_windows = session.windows[session.labels == gesture][:6]
        chosen.append(np.concatenate(list(gesture_windows), axis=-1))
    return np.concatenate(chosen, axis=-1)


def run_stream(server: InferenceServer, signal: np.ndarray, slide: int) -> np.ndarray:
    session = server.open_stream(slide=slide, smoothing=5)
    for start in range(0, signal.shape[-1], 64):  # 64-sample acquisition chunks
        for decision in session.push(signal[:, start : start + 64]):
            if decision.window_index % 25 == 0:
                print(
                    f"  window {decision.window_index:4d}: "
                    f"raw={decision.label}  smoothed={decision.smoothed_label}"
                )
    return session.labels(smoothed=True)


def main() -> None:
    # 1. A continuous recording from the synthetic NinaPro DB6 surrogate.
    dataset = NinaProDB6(NinaProDB6Config.tiny())
    config = dataset.config
    signal = make_stream(dataset)
    print(
        f"streaming {signal.shape[-1]} samples x {signal.shape[0]} channels "
        f"(window={config.window_samples}, slide={config.slide_samples})"
    )

    cache = BackendCache()
    geometry = dict(
        num_channels=config.num_channels,
        window_samples=config.window_samples,
        seed=0,
    )

    # 2-3. Serve the float backend and stream the signal through it.
    print("\n-- float backend ----------------------------------------------")
    with InferenceServer(
        "bio1", "float", patch_size=10, model_kwargs=geometry, cache=cache, max_batch_size=16
    ) as server:
        float_labels = run_stream(server, signal, slide=config.slide_samples)
        stats = server.stats
        print(
            f"served {stats.requests} windows in {stats.batches} micro-batches "
            f"(mean batch {stats.batcher.mean_batch:.1f})"
        )

    # 4. Same stream through the int8 (GAP8 numerics) backend.
    print("\n-- int8 backend -----------------------------------------------")
    rng = np.random.default_rng(0)
    calibration = rng.normal(size=(16, config.num_channels, config.window_samples))
    with InferenceServer(
        "bio1",
        "int8",
        patch_size=10,
        model_kwargs=geometry,
        calibration=calibration,
        cache=cache,
        max_batch_size=16,
    ) as server:
        int8_labels = run_stream(server, signal, slide=config.slide_samples)

    agreement = float(np.mean(float_labels == int8_labels))
    print(
        f"\nfloat vs int8 smoothed decisions: {100 * agreement:.1f}% agreement "
        f"over {float_labels.shape[0]} windows"
    )


if __name__ == "__main__":
    main()
