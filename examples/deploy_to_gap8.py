"""Deploy a trained Bioformer to GAP8: trace, quantise, tile and generate C.

This example walks the full deployment toolchain a user would run before
flashing a device (the flow behind the paper's Table I):

1. train Bioformer (h=8, d=1) on subject 1 of the synthetic NinaPro DB6;
2. trace the trained model into the deployment graph IR;
3. lower it to int8 (activation calibration + fixed-point requantisation,
   plus LUT lowering of the I-BERT softmax/GELU — ``use_lut=False`` keeps
   the legacy elementwise op set, bit-identical either way);
4. run the integer-only engine and compare it against float inference;
5. plan the L2 activation arena and the L1 tiling;
6. estimate latency / energy / battery life on the GAP8 cost model;
7. emit the C deployment bundle (weights.h, network.c, ...).

Run with::

    python examples/deploy_to_gap8.py
"""

import os
import tempfile

from repro.data import NinaProDB6, NinaProDB6Config, subject_split
from repro.deploy import CodeGenerator, deploy_graph
from repro.models import bioformer_bio1
from repro.training import ProtocolConfig, train_subject_specific


def main() -> None:
    # 1. Data and a quickly trained model (reduced scale; see DESIGN.md).
    dataset = NinaProDB6(NinaProDB6Config.small(num_subjects=2))
    split = subject_split(dataset, subject=1, include_pretrain=False)
    model = bioformer_bio1(
        patch_size=10,
        window_samples=dataset.config.window_samples,
        num_channels=dataset.config.num_channels,
    )
    outcome = train_subject_specific(model, split, ProtocolConfig.small(), num_classes=8)
    print(f"trained {model.name}: float test accuracy {100 * outcome.test_accuracy:.2f}%")

    # 2-6. The whole deployment pipeline in one call.  use_lut=True (the
    # default) lowers the integer softmax/GELU into lookup tables, so the
    # generated schedule calls net_gelu_lut_i8 / net_softmax_lut_i8 and
    # weights.h carries the tables; the int8 serving backend runs the same
    # op set.
    deployment = deploy_graph(
        model,
        calibration_inputs=split.train.windows[:256],
        evaluation_inputs=split.test.windows,
        evaluation_labels=split.test.labels,
        use_lut=True,
    )
    print()
    print(deployment.render())
    print(f"nonlinearity LUTs:         {deployment.lut_kilobytes:.1f} kB "
          f"(lower with use_lut=False for the elementwise op set)")

    # A few of the individual artefacts, for the curious:
    print()
    print("Largest activation tensor:", deployment.graph.largest_activation())
    print("Activation arena reuse:   ", f"{deployment.memory_plan.reuse_factor:.2f}x")
    dma_kb = deployment.tiling_plan.total_dma_bytes / 1024.0
    print("L1 tiling:                ", f"{deployment.tiling_plan.total_tiles} tiles, {dma_kb:.1f} kB DMA")

    # 7. Write the generated C sources next to this script (or a temp dir).
    output_directory = os.environ.get(
        "BIOFORMER_CODEGEN_DIR", os.path.join(tempfile.gettempdir(), "bioformer_gap8")
    )
    written = CodeGenerator(deployment.quantized, deployment.memory_plan).write(output_directory)
    print()
    print("generated C bundle:")
    for path in written:
        print(f"  {path} ({os.path.getsize(path)} bytes)")


if __name__ == "__main__":
    main()
