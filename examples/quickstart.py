"""Quickstart — train a Bioformer on synthetic NinaPro DB6 and deploy it.

This is the 5-minute tour of the library:

1. build the synthetic NinaPro DB6 surrogate (reduced scale);
2. train Bioformer (h=8, d=1) on subject 1's sessions 1-5;
3. evaluate on the multi-day test sessions 6-10;
4. quantise to int8 and estimate the GAP8 deployment cost.

Run with::

    python examples/quickstart.py
"""

from repro.data import NinaProDB6, NinaProDB6Config, subject_split
from repro.hw import deploy
from repro.models import BioformerConfig, bioformer_bio1
from repro.quant import QATConfig, evaluate_quantized, quantization_aware_finetune
from repro.training import ProtocolConfig, evaluate, train_subject_specific


def main() -> None:
    # 1. Data: the synthetic surrogate with the paper's subject/session layout.
    dataset = NinaProDB6(NinaProDB6Config.small(num_subjects=2))
    print(dataset.describe())
    split = subject_split(dataset, subject=1, include_pretrain=False)
    print(f"subject 1: {len(split.train)} training windows, {len(split.test)} test windows")

    # 2. Model: Bioformer (8 heads, depth 1, filter dimension 10).
    model = bioformer_bio1(
        patch_size=10,
        window_samples=dataset.config.window_samples,
        num_channels=dataset.config.num_channels,
    )
    print(f"model: {model.name} with {model.num_parameters():,} parameters")

    # 3. Train on sessions 1-5, test on sessions 6-10.
    protocol = ProtocolConfig.small()
    outcome = train_subject_specific(model, split, protocol, num_classes=8)
    print(f"float test accuracy: {100 * outcome.test_accuracy:.2f}%")
    for session, accuracy in outcome.session_series().items():
        print(f"  session {session}: {100 * accuracy:.1f}%")

    # 4. Quantise to int8 and estimate the GAP8 deployment.
    quantization_aware_finetune(model, split.train, QATConfig.small())
    quantized = evaluate_quantized(model, split.test, calibration=split.train, num_classes=8)
    print(f"int8 test accuracy:  {100 * quantized.accuracy:.2f}%")

    record = deploy(
        BioformerConfig(depth=1, num_heads=8, patch_size=10),  # paper geometry
        quantized_accuracy=quantized.accuracy,
    )
    print(
        f"GAP8 estimate: {record.memory_kilobytes:.1f} kB, {record.mmacs:.1f} MMAC, "
        f"{record.latency_ms:.2f} ms, {record.energy_mj:.3f} mJ per inference, "
        f"{record.duty_cycle.battery_life_hours:.0f} h on a 1000 mAh battery"
    )


if __name__ == "__main__":
    main()
