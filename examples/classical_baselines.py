"""Classical feature-engineering baselines vs. the deep models.

The paper's related work explains why the field moved from hand-crafted
features + shallow classifiers to end-to-end networks: classical pipelines
fit a single session very well but degrade across recording sessions.  This
example reproduces that observation on the synthetic NinaPro DB6 surrogate:

1. extract Hudgins-style time-domain features per electrode;
2. train LDA, linear SVM, softmax regression, random forest and kNN on
   subject 1's sessions 1-5;
3. report overall and per-session accuracy on sessions 6-10;
4. train Bioformer (h=8, d=1) under the same protocol for comparison.

Run with::

    python examples/classical_baselines.py
"""

from repro.baselines import FeatureSet, evaluate_baselines, render_baseline_table
from repro.data import NinaProDB6, NinaProDB6Config, subject_split
from repro.models import bioformer_bio1
from repro.training import ProtocolConfig, train_subject_specific


def main() -> None:
    dataset = NinaProDB6(NinaProDB6Config.small(num_subjects=2))
    split = subject_split(dataset, subject=1, include_pretrain=False)
    print(
        f"subject 1: {len(split.train)} training windows (sessions 1-5), "
        f"{len(split.test)} test windows (sessions 6-10)"
    )

    # Classical pipelines on hand-crafted features.
    features = FeatureSet(("mav", "rms", "wl", "zc", "ssc", "var"))
    results = evaluate_baselines(split, features=features)
    print()
    print(render_baseline_table(results))
    best = max(results, key=lambda result: result.test_accuracy)
    print(
        f"\nbest classical baseline: {best.name} — train {100 * best.train_accuracy:.1f}% vs "
        f"multi-day test {100 * best.test_accuracy:.1f}% "
        f"(drop of {100 * (best.train_accuracy - best.test_accuracy):.1f} points)"
    )

    # The end-to-end Bioformer under the identical protocol.
    model = bioformer_bio1(
        patch_size=10,
        window_samples=dataset.config.window_samples,
        num_channels=dataset.config.num_channels,
    )
    outcome = train_subject_specific(model, split, ProtocolConfig.small(), num_classes=8)
    print(f"\nBioformer (h=8, d=1) test accuracy: {100 * outcome.test_accuracy:.2f}%")
    print("per-session accuracy:")
    for session, accuracy in outcome.session_series().items():
        print(f"  session {session}: {100 * accuracy:.1f}%")


if __name__ == "__main__":
    main()
