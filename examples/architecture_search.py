"""Hardware-aware architecture search over the Bioformer design space.

The paper selects its two reference architectures with a grid search over
depth, heads and front-end filter size under a complexity budget.  This
example runs the same selection problem with the search package:

1. define the Bioformer design space (reduced to the synthetic dataset's
   window geometry);
2. evaluate candidates with a short training run (accuracy) and the
   analytical GAP8 cost model (MACs, latency, memory);
3. run random search under a MAC budget, then evolutionary search;
4. print the best feasible candidates and the accuracy-vs-MACs Pareto
   frontier (the Fig. 5 construction).

Run with::

    python examples/architecture_search.py
"""

from repro.data import NinaProDB6, NinaProDB6Config, subject_split
from repro.search import (
    EvolutionarySearch,
    RandomSearch,
    SearchSpace,
    TrainedAccuracyEvaluator,
)


def main() -> None:
    dataset = NinaProDB6(NinaProDB6Config.small(num_subjects=2))
    split = subject_split(dataset, subject=1, include_pretrain=False)
    channels, samples = split.train.windows.shape[1:]

    space = SearchSpace.reduced(num_channels=channels, window_samples=samples)
    print(f"design space: {space.size} candidate architectures")

    evaluator = TrainedAccuracyEvaluator(split.train, split.test, epochs=3, seed=0)
    constraints = {"max_macs": 2e6, "max_memory_kb": 120.0}

    random_search = RandomSearch(space, evaluator, constraints=constraints, seed=1)
    random_result = random_search.run(budget=6)
    print()
    print(random_result.render(top=6))

    evolutionary = EvolutionarySearch(
        space, evaluator, constraints=constraints, population_size=4, seed=2
    )
    evolution_result = evolutionary.run(generations=2)
    print()
    print(evolution_result.render(top=6))

    best = max(
        (random_result.best, evolution_result.best), key=lambda candidate: candidate.accuracy
    )
    print(
        f"\nbest feasible candidate: {best.name} — {100 * best.accuracy:.1f}% accuracy, "
        f"{best.mmacs:.2f} MMAC, {best.memory_kb:.1f} kB, {best.latency_ms:.2f} ms on GAP8"
    )

    print("\naccuracy-vs-MACs Pareto frontier (evolutionary history):")
    for point in evolution_result.pareto("macs"):
        print(f"  {point.label}: {100 * point.accuracy:.1f}% at {point.cost / 1e6:.2f} MMAC")


if __name__ == "__main__":
    main()
