"""Streaming accuracy evaluation — grade the serving tier end to end.

The paper's headline online number is the *smoothed streaming accuracy*
of a 5-window majority vote over a continuous sEMG stream.  This example
measures it — and everything around it — with :mod:`repro.eval`:

1. build a seeded :class:`~repro.eval.RecordingGenerator` and train a
   small probe Bioformer on class-conditioned windows
   (:func:`~repro.eval.fit_probe_model`; fully deterministic, never sees
   the evaluation recordings);
2. compose a labelled multi-gesture recording with exact transition
   boundaries and stream it through a managed session
   (:class:`~repro.serve.SessionManager` over a live
   :class:`~repro.serve.InferenceServer`), grading every decision:
   window accuracy, post-vote accuracy per vote depth (1/3/5/9),
   per-transition lag in windows and decision latency in milliseconds;
3. repeat under the default corruption suite
   (:class:`~repro.eval.ScenarioSuite`: noise, a dead electrode flagged
   ``degraded`` by the session layer, intermittent dropout, inter-session
   drift) and compare;
4. sweep serving deadlines with :func:`~repro.eval.accuracy_vs_deadline`
   — the accuracy/shed trade-off the benchmark records to
   ``BENCH_accuracy.json``.

Run with::

    python examples/accuracy_evaluation.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.eval import (  # noqa: E402
    RecordingGenerator,
    ScenarioSuite,
    StreamEvaluator,
    accuracy_vs_deadline,
    fit_probe_model,
)
from repro.serve import BackendCache, InferenceServer  # noqa: E402

WINDOW, SLIDE, SMOOTHING = 60, 30, 5


def banner(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main():
    banner("1. Probe model (deterministic, trained on generator windows)")
    generator = RecordingGenerator(
        num_channels=4, num_classes=5, class_separation=2.5, noise_std=0.25, seed=7
    )
    probe = fit_probe_model(generator, WINDOW, windows_per_class=16, epochs=6)
    print(f"generator: {generator.num_classes} classes x {generator.num_channels} ch")
    print(f"probe:     {type(probe).__name__} trained on held-out windows")

    recording = generator.recording(
        [0, 2, 1, 3, 2, 4, 1, 0], 600, seed=5, name="demo"
    )
    print(f"recording: {recording} ({recording.duration_s:.2f}s)")

    with InferenceServer(probe, "float", cache=BackendCache()) as server:
        manager = server.open_session_manager(slide=SLIDE, smoothing=SMOOTHING)
        evaluator = StreamEvaluator(manager, slide=SLIDE, smoothing=SMOOTHING)

        banner("2. Clean streaming accuracy (managed session, majority vote)")
        clean = evaluator.evaluate(recording)
        print(f"windows:            {clean.num_windows}")
        print(f"window accuracy:    {clean.window_accuracy:.3f}")
        print(f"post-vote accuracy: {clean.smoothed_accuracy:.3f} (depth {SMOOTHING})")
        for depth, accuracy in sorted(clean.accuracy_by_depth.items()):
            print(f"  depth {depth}: {accuracy:.3f}")
        print(
            f"transitions: {len(clean.transitions)} "
            f"(mean lag {clean.mean_transition_lag_windows:.2f} windows, "
            f"mean latency {clean.mean_decision_latency_ms:.1f} ms)"
        )

        banner("3. Robustness sweep (corruption scenarios)")
        print(
            f"{'scenario':>14} {'window':>8} {'post-vote':>10} "
            f"{'degraded':>9} {'lag':>6}"
        )
        for name, rep in evaluator.evaluate_suite(
            recording, ScenarioSuite.default(seed=1)
        ).items():
            lag = (
                f"{rep.mean_transition_lag_windows:.2f}"
                if rep.mean_transition_lag_windows is not None
                else "-"
            )
            print(
                f"{name:>14} {rep.window_accuracy:>8.3f} "
                f"{rep.smoothed_accuracy:>10.3f} {rep.degraded_rate:>9.3f} {lag:>6}"
            )

        banner("4. Accuracy vs deadline (burst submission)")
        curve = accuracy_vs_deadline(
            server, recording, slide=SLIDE, smoothing=SMOOTHING,
            deadlines=(None, 0.1, 0.01, 0.0),
        )
        print(f"{'deadline':>10} {'shed':>7} {'window':>8} {'post-vote':>10}")
        for point in curve.points:
            tag = (
                "unlimited"
                if point.deadline_s is None
                else f"{point.deadline_s * 1e3:g}ms"
            )
            print(
                f"{tag:>10} {point.shed_rate:>7.3f} "
                f"{point.window_accuracy:>8.3f} {point.smoothed_accuracy:>10.3f}"
            )
        print(
            "\nThe unlimited point is deterministic and gated against "
            "BENCH_accuracy.json by benchmarks/test_eval_accuracy.py."
        )


if __name__ == "__main__":
    main()
