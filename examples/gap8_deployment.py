"""GAP8 deployment exploration — memory, latency, energy and battery life.

The deployment half of the paper: given a trained (or merely configured)
architecture, estimate what it costs to run on the GreenWaves GAP8
microcontroller at 100 MHz / 1 V, and how long an always-on gesture
recognition loop (one 150 ms window classified every 15 ms) lasts on a
small 1000 mAh battery.

This example regenerates the deployment columns of the paper's Table I,
prints the per-layer cycle breakdown of the most accurate Bioformer, and
sweeps the inference period to show how duty-cycling drives battery life.

Run with::

    python examples/gap8_deployment.py
"""

from repro.experiments import render_table1, run_table1
from repro.hw import BatteryConfig, GAP8Config, GAP8Model, battery_life_hours, profile_bioformer
from repro.models import BioformerConfig


def main() -> None:
    # 1. The full Table I deployment columns (analytical model, no training).
    result = run_table1(measure_accuracy=False)
    print(render_table1(result))
    print(
        f"\nheadline ratios vs TEMPONet: {result.energy_ratio():.1f}x energy, "
        f"{result.memory_ratio():.1f}x memory (paper: 8.0x and 4.9x)\n"
    )

    # 2. Where do the cycles go inside Bio1 (filter 10)?
    gap8 = GAP8Model(GAP8Config())
    profile = profile_bioformer(BioformerConfig(depth=1, num_heads=8, patch_size=10))
    breakdown = gap8.latency(profile)
    print(f"per-layer breakdown of {profile.name} ({breakdown.latency_ms:.2f} ms total):")
    for cost in breakdown.dominant_layers(6):
        share = 100 * cost.cycles / breakdown.total_cycles
        print(f"  {cost.name:28s} {cost.kind:18s} {share:5.1f}% of cycles")
    print()

    # 3. Battery life vs how often a window is classified.
    print("battery life vs classification period (Bio1 filter 30, 1000 mAh):")
    latency_s = result.records["Bio1, wind=30"].latency.latency_s
    for period_ms in (15, 50, 150, 500):
        report = battery_life_hours(latency_s, period_ms * 1e-3, GAP8Config(), BatteryConfig())
        print(
            f"  every {period_ms:4d} ms: average power {1e3 * report.average_power_w:6.2f} mW, "
            f"life {report.battery_life_hours:7.0f} h"
        )


if __name__ == "__main__":
    main()
