"""Inter-subject pre-training — the paper's second contribution.

Gesture recognition is normally trained per subject, because muscle
anatomy and electrode placement differ from person to person.  The paper
shows that *pre-training on the other subjects* before the subject-specific
fine-tuning improves accuracy (by +3.39% for the best Bioformer), most of
all for the subjects whose baseline accuracy is lowest.

This example reproduces that comparison for a couple of subjects of the
synthetic surrogate and prints the per-subject gains (the data behind the
paper's Fig. 3).

Run with::

    python examples/pretraining_protocol.py
"""

from repro.data import NinaProDB6, NinaProDB6Config, subject_split
from repro.models import bioformer_bio1
from repro.training import ProtocolConfig, run_two_step_protocol, train_subject_specific


def main() -> None:
    dataset = NinaProDB6(NinaProDB6Config.small(num_subjects=3))
    protocol = ProtocolConfig.small()
    window = dataset.config.window_samples

    print("protocol comparison: standard vs inter-subject pre-training + fine-tuning")
    print(f"pre-training: {protocol.pretrain_epochs} epochs, Adam warm-up to {protocol.pretrain_peak_lr}")
    print(f"fine-tuning:  {protocol.finetune_epochs} epochs at lr {protocol.finetune_lr}")
    print()

    gains = []
    for subject in dataset.config.subjects[:2]:
        split = subject_split(dataset, subject)

        standard_model = bioformer_bio1(patch_size=10, window_samples=window, seed=subject)
        standard = train_subject_specific(standard_model, split, protocol, num_classes=8)

        pretrained_model = bioformer_bio1(patch_size=10, window_samples=window, seed=subject)
        pretrained = run_two_step_protocol(pretrained_model, split, protocol, num_classes=8)

        gain = pretrained.test_accuracy - standard.test_accuracy
        gains.append(gain)
        print(
            f"subject {subject}: standard {100 * standard.test_accuracy:.2f}%  "
            f"pre-trained {100 * pretrained.test_accuracy:.2f}%  gain {100 * gain:+.2f}%"
        )

    print()
    print(f"average gain: {100 * sum(gains) / len(gains):+.2f}%  (paper: +3.39% over 10 subjects)")


if __name__ == "__main__":
    main()
