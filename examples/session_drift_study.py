"""Session-to-session drift — why multi-day sEMG recognition is hard.

NinaPro DB6 was recorded specifically to study how recognition accuracy
degrades when the electrodes are re-donned over five days.  This example
looks at the phenomenon from two angles on the synthetic surrogate:

1. a *data-level* view: how far each session's class centroids move away
   from the training sessions (electrode shift + impedance drift);
2. a *model-level* view: per-session accuracy of a trained Bioformer, the
   series plotted in the paper's Fig. 2.

Run with::

    python examples/session_drift_study.py
"""

import numpy as np

from repro.data import NinaProDB6, NinaProDB6Config, subject_split
from repro.models import bioformer_bio1
from repro.training import ProtocolConfig, train_subject_specific


def centroid_drift(dataset: NinaProDB6, subject: int) -> None:
    """Distance of each session's class centroids from the training centroids."""
    train = dataset.training_dataset(subject)
    features = np.sqrt((train.windows**2).mean(axis=-1))  # per-channel RMS
    centroids = np.stack([features[train.labels == c].mean(axis=0) for c in range(8)])

    print("data-level drift (RMS-feature centroid distance to training sessions):")
    for session in range(1, dataset.config.num_sessions + 1):
        data = dataset.session_dataset(subject, session)
        session_features = np.sqrt((data.windows**2).mean(axis=-1))
        session_centroids = np.stack(
            [session_features[data.labels == c].mean(axis=0) for c in range(8)]
        )
        distance = np.linalg.norm(session_centroids - centroids, axis=1).mean()
        split_tag = "train" if session in dataset.config.training_sessions else "test "
        print(f"  session {session:2d} ({split_tag}): {distance:.3f}")


def model_accuracy_per_session(dataset: NinaProDB6, subject: int) -> None:
    """Per-session accuracy of Bio1 trained on sessions 1-5 (Fig. 2 series)."""
    split = subject_split(dataset, subject, include_pretrain=False)
    model = bioformer_bio1(
        patch_size=10,
        window_samples=dataset.config.window_samples,
        num_channels=dataset.config.num_channels,
        seed=subject,
    )
    outcome = train_subject_specific(model, split, ProtocolConfig.small(), num_classes=8)
    print("\nmodel-level drift (Bioformer h=8, d=1 accuracy per testing session):")
    for session, accuracy in outcome.session_series().items():
        bar = "#" * int(40 * accuracy)
        print(f"  session {session:2d}: {100 * accuracy:5.1f}%  {bar}")
    print(f"  overall: {100 * outcome.test_accuracy:.2f}%")


def main() -> None:
    dataset = NinaProDB6(NinaProDB6Config.small(num_subjects=1))
    print(dataset.describe())
    print()
    centroid_drift(dataset, subject=1)
    model_accuracy_per_session(dataset, subject=1)


if __name__ == "__main__":
    main()
