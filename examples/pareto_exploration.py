"""Architecture exploration — the accuracy/complexity Pareto space (Fig. 5).

The Bioformer's front-end filter dimension and its depth/heads settings span
a space of architectures; the paper navigates it by profiling MACs and
parameters for every candidate and keeping the Pareto-optimal ones.  This
example rebuilds those Pareto planes, reports which models survive, and then
re-ranks the frontier by *energy per inference* on GAP8 — the metric a
battery-powered product actually cares about.

Run with::

    python examples/pareto_exploration.py
"""

from repro.analysis import ParetoPoint, pareto_frontier
from repro.experiments import render_figure5, run_figure5
from repro.hw import deploy
from repro.models import BioformerConfig, TEMPONetConfig


def main() -> None:
    # 1. The paper's Fig. 5: accuracy vs MACs and vs parameters.
    result = run_figure5()
    print(render_figure5(result))

    print("\naccuracy-vs-MACs Pareto frontier:")
    for point in result.pareto_by_macs():
        print(f"  {point.label:28s} {point.cost / 1e6:6.2f} MMAC  {100 * point.accuracy:.2f}%")

    print(
        f"\nBio1 (f=10) uses {result.mac_reduction_vs_temponet('bio1', 10):.1f}x fewer MACs "
        f"than TEMPONet; Bio2 (f=10) {result.mac_reduction_vs_temponet('bio2', 10):.1f}x fewer."
    )

    # 2. Re-rank by energy on GAP8 instead of raw MACs: the 2-head Bioformer
    #    parallelises poorly on the 8-core cluster, so its energy advantage
    #    shrinks — exactly why the paper reports both planes.
    print("\nenergy-based ranking on GAP8:")
    energy_points = []
    for point in result.points:
        if point.variant == "temponet":
            config = TEMPONetConfig()
        else:
            depth, heads = (1, 8) if point.variant == "bio1" else (2, 2)
            config = BioformerConfig(depth=depth, num_heads=heads, patch_size=point.filter_dimension)
        record = deploy(config)
        energy_points.append(ParetoPoint(point.label, record.energy_mj, point.accuracy))
    for point in pareto_frontier(energy_points):
        print(f"  {point.label:28s} {point.cost:6.3f} mJ   {100 * point.accuracy:.2f}%")


if __name__ == "__main__":
    main()
