"""Model registry and sweep helpers.

The experiment drivers refer to architectures by name ("bio1", "bio2",
"temponet") and sweep hyper-parameters (front-end filter dimension, depth,
heads).  This module centralises construction so every figure/table builds
its models the same way.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from ..nn.module import Module
from .bioformer import Bioformer, BioformerConfig, bioformer_bio1, bioformer_bio2
from .temponet import TEMPONet, TEMPONetConfig, temponet

__all__ = [
    "MODEL_BUILDERS",
    "build_model",
    "available_models",
    "model_cache_key",
    "bioformer_grid",
    "bioformer_filter_sweep",
    "PAPER_FILTER_DIMENSIONS",
    "PAPER_GRID_DEPTHS",
    "PAPER_GRID_HEADS",
]

#: Front-end filter dimensions swept in the paper (Sec. III-A / Fig. 4).
PAPER_FILTER_DIMENSIONS: Tuple[int, ...] = (1, 5, 10, 20, 30)
#: Depth / heads grid searched in Sec. III-A.
PAPER_GRID_DEPTHS: Tuple[int, ...] = (1, 2, 3, 4)
PAPER_GRID_HEADS: Tuple[int, ...] = (1, 2, 4, 8)

MODEL_BUILDERS: Dict[str, Callable[..., Module]] = {
    "bio1": bioformer_bio1,
    "bio2": bioformer_bio2,
    "temponet": temponet,
}


def available_models() -> List[str]:
    """Names accepted by :func:`build_model`."""
    return sorted(MODEL_BUILDERS)


def build_model(name: str, **kwargs) -> Module:
    """Build a model by registry name.

    Parameters
    ----------
    name:
        One of :func:`available_models` (case-insensitive).
    kwargs:
        Forwarded to the underlying builder (e.g. ``patch_size``,
        ``num_channels``, ``window_samples``, ``num_classes``, ``seed``).
    """
    key = name.lower()
    if key not in MODEL_BUILDERS:
        raise KeyError(f"unknown model '{name}'; available: {available_models()}")
    if key == "temponet":
        kwargs.pop("patch_size", None)
    return MODEL_BUILDERS[key](**kwargs)


def model_cache_key(name: str, **kwargs) -> Tuple:
    """Canonical hashable identity of a registry model build.

    Two calls that would construct identical models (same architecture name
    after case-folding, same effective keyword arguments) return equal keys;
    ``patch_size`` is dropped for TEMPONet exactly as :func:`build_model`
    drops it.  The serving layer keys its executor/model caches on this.
    """
    key = name.lower()
    if key not in MODEL_BUILDERS:
        raise KeyError(f"unknown model '{name}'; available: {available_models()}")
    effective = dict(kwargs)
    if key == "temponet":
        effective.pop("patch_size", None)
    return (key,) + tuple(sorted(effective.items()))


def bioformer_grid(
    depths: Iterable[int] = PAPER_GRID_DEPTHS,
    heads: Iterable[int] = PAPER_GRID_HEADS,
    patch_size: int = 10,
    **kwargs,
) -> List[BioformerConfig]:
    """Return the configs of the paper's depth x heads architecture grid."""
    configs = []
    for depth in depths:
        for num_heads in heads:
            configs.append(
                BioformerConfig(
                    depth=depth, num_heads=num_heads, patch_size=patch_size, **kwargs
                )
            )
    return configs


def bioformer_filter_sweep(
    variant: str,
    filter_dimensions: Iterable[int] = PAPER_FILTER_DIMENSIONS,
    **kwargs,
) -> List[Bioformer]:
    """Build one Bioformer per front-end filter dimension (Fig. 4 / Fig. 5).

    ``variant`` is ``"bio1"`` or ``"bio2"``; window lengths that are not a
    multiple of the filter dimension are allowed (the trailing samples are
    simply not covered by any patch, as with a strided convolution).
    """
    if variant not in ("bio1", "bio2"):
        raise ValueError("variant must be 'bio1' or 'bio2'")
    builder = MODEL_BUILDERS[variant]
    models = []
    for filter_dimension in filter_dimensions:
        models.append(builder(patch_size=filter_dimension, **kwargs))
    return models
