"""TEMPONet — the temporal convolutional network baseline.

TEMPONet (Zanghieri et al., *IEEE TBioCAS* 2019) is the state-of-the-art
embedded sEMG classifier the paper compares every Bioformer against.  It is
a Temporal Convolutional Network organised in three blocks; each block
stacks two dilated temporal convolutions, a strided convolution and an
average-pooling stage, with channel width doubling from block to block
(32 -> 64 -> 128).  The convolutional feature extractor is followed by a
fully connected classifier.

The original network is described for 300-sample (150 ms @ 2 kHz) windows
and, quantised to 8 bits, occupies roughly 460 kB and 16 MMAC — the numbers
reported in the paper's Table I.  This re-implementation follows that
topology; the exact parameter count of the original is not published layer
by layer, so our profiler reports the count of *this* implementation, which
lands in the same range (see EXPERIMENTS.md).

The implementation adapts its classifier input size to the configured
window length so the reduced-scale presets (shorter synthetic windows) can
train the same topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .. import nn
from ..nn.module import Module
from ..nn.tensor import Tensor
from ..utils.rng import derive_rng

__all__ = ["TEMPONetConfig", "TEMPONet", "temponet"]


@dataclass
class TEMPONetConfig:
    """Hyper-parameters of the TEMPONet baseline."""

    num_channels: int = 14
    window_samples: int = 300
    num_classes: int = 8
    #: Output channels of the three convolutional blocks.
    block_channels: Tuple[int, int, int] = (32, 64, 128)
    #: Dilation of the two temporal convolutions inside each block.
    block_dilations: Tuple[int, int, int] = (2, 4, 8)
    #: Stride of the convolution closing each block (the early blocks keep
    #: full temporal resolution, as in the original TEMPONet).
    block_strides: Tuple[int, int, int] = (1, 1, 2)
    #: Kernel size of the dilated temporal convolutions.
    kernel_size: int = 3
    #: Kernel size of the strided convolution closing each block.
    strided_kernel_size: int = 5
    #: Hidden sizes of the fully connected classifier.  Together with
    #: ``block_strides`` these are chosen so that the 300-sample int8 model
    #: lands on the ~461 kB / ~16 MMAC reported for TEMPONet in Table I.
    fc_hidden: Tuple[int, int] = (100, 128)
    dropout: float = 0.2
    seed: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent settings."""
        if not (len(self.block_channels) == len(self.block_dilations) == len(self.block_strides)):
            raise ValueError(
                "block_channels, block_dilations and block_strides must have the same length"
            )
        length = self.window_samples
        for stride in self.block_strides:
            length = ((length + stride - 1) // stride) // 2
        if length < 1:
            raise ValueError(
                f"window of {self.window_samples} samples collapses to zero length "
                f"after the {len(self.block_channels)} blocks"
            )

    def describe(self) -> str:
        """Short architecture tag used in reports."""
        return "TEMPONet"


class _TemporalBlock(Module):
    """One TEMPONet block: two dilated convs, a strided conv, average pooling."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        dilation: int,
        stride: int,
        kernel_size: int,
        strided_kernel_size: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        padding = dilation * (kernel_size - 1) // 2
        self.conv1 = nn.Conv1d(
            in_channels, out_channels, kernel_size, padding=padding, dilation=dilation, rng=rng
        )
        self.bn1 = nn.BatchNorm1d(out_channels)
        self.conv2 = nn.Conv1d(
            out_channels, out_channels, kernel_size, padding=padding, dilation=dilation, rng=rng
        )
        self.bn2 = nn.BatchNorm1d(out_channels)
        self.strided_conv = nn.Conv1d(
            out_channels,
            out_channels,
            strided_kernel_size,
            stride=stride,
            padding=strided_kernel_size // 2,
            rng=rng,
        )
        self.bn3 = nn.BatchNorm1d(out_channels)
        self.pool = nn.AvgPool1d(kernel_size=2, stride=2)
        self.relu = nn.ReLU()

    def forward(self, x: Tensor) -> Tensor:
        x = self.relu(self.bn1(self.conv1(x)))
        x = self.relu(self.bn2(self.conv2(x)))
        x = self.relu(self.bn3(self.strided_conv(x)))
        return self.pool(x)


class TEMPONet(Module):
    """TEMPONet TCN; consumes ``(batch, channels, samples)`` windows."""

    def __init__(self, config: Optional[TEMPONetConfig] = None) -> None:
        super().__init__()
        self.config = config if config is not None else TEMPONetConfig()
        self.config.validate()
        cfg = self.config
        rng = derive_rng("temponet", cfg.window_samples, seed=cfg.seed)

        blocks: List[Module] = []
        in_channels = cfg.num_channels
        length = cfg.window_samples
        for out_channels, dilation, stride in zip(
            cfg.block_channels, cfg.block_dilations, cfg.block_strides
        ):
            blocks.append(
                _TemporalBlock(
                    in_channels,
                    out_channels,
                    dilation,
                    stride,
                    cfg.kernel_size,
                    cfg.strided_kernel_size,
                    rng,
                )
            )
            in_channels = out_channels
            # Strided conv (ceil division with same padding) then pool by two.
            length = (length + stride - 1) // stride
            length = length // 2
        self.blocks = nn.ModuleList(blocks)
        self.flatten_length = length
        self.flatten_features = in_channels * length

        hidden1, hidden2 = cfg.fc_hidden
        self.classifier = nn.Sequential(
            nn.Flatten(start_dim=1),
            nn.Linear(self.flatten_features, hidden1, rng=rng),
            nn.ReLU(),
            nn.Dropout(cfg.dropout, rng=rng),
            nn.Linear(hidden1, hidden2, rng=rng),
            nn.ReLU(),
            nn.Dropout(cfg.dropout, rng=rng),
            nn.Linear(hidden2, cfg.num_classes, rng=rng),
        )

    def features(self, x: Tensor) -> Tensor:
        """Return the convolutional feature map ``(batch, channels, length)``."""
        for block in self.blocks:
            x = block(x)
        return x

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        cfg = self.config
        if x.ndim != 3 or x.shape[1] != cfg.num_channels:
            raise ValueError(
                f"expected input of shape (batch, {cfg.num_channels}, samples), got {x.shape}"
            )
        return self.classifier(self.features(x))

    @property
    def name(self) -> str:
        """Architecture tag used in reports and benchmark tables."""
        return self.config.describe()


def temponet(
    num_channels: int = 14,
    window_samples: int = 300,
    num_classes: int = 8,
    seed: int = 0,
    **overrides,
) -> TEMPONet:
    """Build the TEMPONet baseline for the given input geometry."""
    config = TEMPONetConfig(
        num_channels=num_channels,
        window_samples=window_samples,
        num_classes=num_classes,
        seed=seed,
        **overrides,
    )
    return TEMPONet(config)
