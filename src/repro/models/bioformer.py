"""The Bioformer architecture (the paper's primary contribution).

A Bioformer is a ViT-inspired transformer scaled down to TinyML budgets:

1. **1-D convolutional patch embedding** — a ``Conv1d`` with ``kernel ==
   stride == patch_size`` and no padding aggregates non-overlapping chunks
   of the raw 14-channel sEMG window into ``N`` tokens of dimension 64.
   The patch size (the paper's "filter dimension", swept over
   ``{1, 5, 10, 20, 30}``) trades sequence length — and therefore attention
   cost — against accuracy (Fig. 4).  With ``patch_size == 1`` the layer
   degenerates into a per-sample fully-connected embedding.
2. **Class token** — a learnable 64-dimensional token appended to the
   sequence; its output is the only one fed to the classifier, following
   ViT.
3. **Transformer encoder** — ``depth`` pre-norm blocks of multi-head
   self-attention (head dimension ``P = 32``) and a feed-forward hidden
   space of 128.
4. **Classification head** — LayerNorm + Linear over the class-token
   output.

The two variants benchmarked by the paper are :func:`bioformer_bio1`
(8 heads, depth 1) and :func:`bioformer_bio2` (2 heads, depth 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.module import Module, Parameter
from ..nn.tensor import Tensor
from ..utils.rng import derive_rng

__all__ = ["BioformerConfig", "Bioformer", "bioformer_bio1", "bioformer_bio2"]


@dataclass
class BioformerConfig:
    """Hyper-parameters of a Bioformer instance.

    The defaults are the shared settings of every architecture in the paper
    (token dimension 64, head dimension 32, FFN hidden 128, 8 classes,
    14-channel / 300-sample input windows).
    """

    num_channels: int = 14
    window_samples: int = 300
    num_classes: int = 8
    patch_size: int = 10
    embed_dim: int = 64
    depth: int = 1
    num_heads: int = 8
    head_dim: int = 32
    hidden_dim: int = 128
    dropout: float = 0.1
    #: Learned positional embedding added to the token sequence.  The paper
    #: follows ViT; disabling it is exercised by the ablation benchmarks.
    use_positional_embedding: bool = True
    #: ``"class_token"`` (paper) or ``"mean"`` pooling for the classifier
    #: input; the class-token choice is one of the paper's design points.
    pooling: str = "class_token"
    seed: int = 0

    @property
    def num_tokens(self) -> int:
        """Number of patch tokens ``N`` produced by the front-end."""
        return self.window_samples // self.patch_size

    @property
    def sequence_length(self) -> int:
        """Transformer sequence length (patch tokens + class token)."""
        return self.num_tokens + (1 if self.pooling == "class_token" else 0)

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent settings."""
        if self.patch_size <= 0:
            raise ValueError("patch_size must be positive")
        if self.window_samples < self.patch_size:
            raise ValueError(
                f"window of {self.window_samples} samples is shorter than one patch "
                f"({self.patch_size})"
            )
        if self.depth < 1:
            raise ValueError("depth must be at least 1")
        if self.num_heads < 1 or self.head_dim < 1:
            raise ValueError("num_heads and head_dim must be positive")
        if self.pooling not in ("class_token", "mean"):
            raise ValueError("pooling must be 'class_token' or 'mean'")

    def with_patch_size(self, patch_size: int) -> "BioformerConfig":
        """Return a copy of this config with a different front-end filter."""
        return replace(self, patch_size=patch_size)

    def describe(self) -> str:
        """Short architecture tag, e.g. ``Bioformer(h=8,d=1,f=10)``."""
        return f"Bioformer(h={self.num_heads},d={self.depth},f={self.patch_size})"


class Bioformer(Module):
    """Bioformer model; consumes ``(batch, channels, samples)`` windows."""

    def __init__(self, config: Optional[BioformerConfig] = None) -> None:
        super().__init__()
        self.config = config if config is not None else BioformerConfig()
        self.config.validate()
        cfg = self.config
        rng = derive_rng("bioformer", cfg.num_heads, cfg.depth, cfg.patch_size, seed=cfg.seed)

        # 1. Non-overlapping 1-D convolutional patch embedding.
        self.patch_embedding = nn.Conv1d(
            cfg.num_channels,
            cfg.embed_dim,
            kernel_size=cfg.patch_size,
            stride=cfg.patch_size,
            padding=0,
            rng=rng,
        )

        # 2. Class token and positional embedding.
        if cfg.pooling == "class_token":
            self.class_token = Parameter(
                nn.init.normal((1, 1, cfg.embed_dim), rng, std=0.02), name="class_token"
            )
        if cfg.use_positional_embedding:
            self.positional_embedding = Parameter(
                nn.init.normal((1, cfg.sequence_length, cfg.embed_dim), rng, std=0.02),
                name="positional_embedding",
            )

        # 3. Transformer encoder.
        self.blocks = nn.ModuleList(
            [
                nn.TransformerEncoderBlock(
                    cfg.embed_dim,
                    cfg.num_heads,
                    cfg.head_dim,
                    cfg.hidden_dim,
                    dropout=cfg.dropout,
                    rng=rng,
                )
                for _ in range(cfg.depth)
            ]
        )
        self.final_norm = nn.LayerNorm(cfg.embed_dim)

        # 4. Classification head.
        self.head = nn.Linear(cfg.embed_dim, cfg.num_classes, rng=rng)
        self.embedding_dropout = nn.Dropout(cfg.dropout, rng=rng)

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def embed(self, x: Tensor) -> Tensor:
        """Run the front-end: patches -> tokens (+ class token + positions)."""
        cfg = self.config
        if x.ndim != 3 or x.shape[1] != cfg.num_channels:
            raise ValueError(
                f"expected input of shape (batch, {cfg.num_channels}, samples), got {x.shape}"
            )
        tokens = self.patch_embedding(x)  # (B, embed_dim, N)
        tokens = tokens.transpose((0, 2, 1))  # (B, N, embed_dim)
        if cfg.pooling == "class_token":
            batch = tokens.shape[0]
            class_tokens = self.class_token * Tensor(np.ones((batch, 1, 1)))
            tokens = Tensor.concatenate([tokens, class_tokens], axis=1)
        if cfg.use_positional_embedding:
            tokens = tokens + self.positional_embedding
        return self.embedding_dropout(tokens)

    def features(self, x: Tensor) -> Tensor:
        """Return the pooled feature vector fed to the classification head."""
        tokens = self.embed(x)
        for block in self.blocks:
            tokens = block(tokens)
        tokens = self.final_norm(tokens)
        if self.config.pooling == "class_token":
            return tokens[:, -1, :]
        return tokens.mean(axis=1)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.head(self.features(x))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Architecture tag used in reports and benchmark tables."""
        return self.config.describe()

    def attention_maps(self) -> list:
        """Attention probabilities of every block from the last forward pass."""
        return [block.attention.last_attention for block in self.blocks]


def bioformer_bio1(
    patch_size: int = 10,
    num_channels: int = 14,
    window_samples: int = 300,
    num_classes: int = 8,
    seed: int = 0,
    **overrides,
) -> Bioformer:
    """Bio1 — the paper's most accurate Bioformer: 8 heads, depth 1."""
    config = BioformerConfig(
        num_channels=num_channels,
        window_samples=window_samples,
        num_classes=num_classes,
        patch_size=patch_size,
        depth=1,
        num_heads=8,
        seed=seed,
        **overrides,
    )
    return Bioformer(config)


def bioformer_bio2(
    patch_size: int = 10,
    num_channels: int = 14,
    window_samples: int = 300,
    num_classes: int = 8,
    seed: int = 0,
    **overrides,
) -> Bioformer:
    """Bio2 — the paper's lightest Bioformer: 2 heads, depth 2."""
    config = BioformerConfig(
        num_channels=num_channels,
        window_samples=window_samples,
        num_classes=num_classes,
        patch_size=patch_size,
        depth=2,
        num_heads=2,
        seed=seed,
        **overrides,
    )
    return Bioformer(config)
