"""``repro.models`` — the Bioformer architectures and the TEMPONet baseline."""

from .bioformer import Bioformer, BioformerConfig, bioformer_bio1, bioformer_bio2
from .registry import (
    MODEL_BUILDERS,
    PAPER_FILTER_DIMENSIONS,
    PAPER_GRID_DEPTHS,
    PAPER_GRID_HEADS,
    available_models,
    bioformer_filter_sweep,
    bioformer_grid,
    build_model,
    model_cache_key,
)
from .temponet import TEMPONet, TEMPONetConfig, temponet

__all__ = [
    "Bioformer",
    "BioformerConfig",
    "bioformer_bio1",
    "bioformer_bio2",
    "TEMPONet",
    "TEMPONetConfig",
    "temponet",
    "build_model",
    "model_cache_key",
    "available_models",
    "bioformer_grid",
    "bioformer_filter_sweep",
    "MODEL_BUILDERS",
    "PAPER_FILTER_DIMENSIONS",
    "PAPER_GRID_DEPTHS",
    "PAPER_GRID_HEADS",
]
