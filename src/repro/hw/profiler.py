"""Analytical complexity profiler: per-layer MACs, parameters and data sizes.

The Pareto plots (Fig. 5) and the deployment table (Table I) of the paper
are driven by two complexity numbers per architecture — multiply-accumulate
operations (MACs) per inference and parameter count — plus a per-layer
breakdown that the GAP8 latency model needs (different kernels achieve
different core utilisation on the 8-core cluster).

This module computes those numbers *analytically* from the architecture
configurations, mirroring how deployment toolchains reason about a network
before code generation, and cross-checks the parameter totals against the
actual model instances in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

from ..models.bioformer import Bioformer, BioformerConfig
from ..models.temponet import TEMPONet, TEMPONetConfig

__all__ = ["LayerProfile", "ModelProfile", "profile_bioformer", "profile_temponet", "profile_model"]


@dataclass
class LayerProfile:
    """Complexity of one layer (or fused kernel) of a network.

    Attributes
    ----------
    name:
        Qualified layer name (e.g. ``"block0.attention.qkv"``).
    kind:
        Kernel category used by the GAP8 cost model: ``"conv"``,
        ``"linear"``, ``"attention_matmul"``, ``"softmax"``, ``"norm"``,
        ``"activation"`` or ``"pool"``.
    macs:
        Multiply-accumulate operations per inference.
    params:
        Parameter count (weights + biases) of the layer.
    elementwise_ops:
        Non-MAC elementwise operations (softmax exponentials, normalisation
        divisions, activations) per inference.
    parallel_units:
        Degree of independent parallelism the GAP8 kernel can exploit across
        cluster cores (e.g. the number of attention heads); ``0`` means
        "enough to saturate the cluster".
    """

    name: str
    kind: str
    macs: int = 0
    params: int = 0
    elementwise_ops: int = 0
    parallel_units: int = 0


@dataclass
class ModelProfile:
    """Aggregated complexity of a full architecture."""

    name: str
    input_shape: tuple
    layers: List[LayerProfile] = field(default_factory=list)

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulate operations per inference."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_params(self) -> int:
        """Total parameter count."""
        return sum(layer.params for layer in self.layers)

    @property
    def total_elementwise_ops(self) -> int:
        """Total non-MAC elementwise operations per inference."""
        return sum(layer.elementwise_ops for layer in self.layers)

    @property
    def mmacs(self) -> float:
        """MACs in millions (the paper's "MMAC" column)."""
        return self.total_macs / 1e6

    def memory_bytes(self, bits_per_weight: int = 8) -> int:
        """Weight memory footprint for a given storage bit-width."""
        return int(self.total_params * bits_per_weight / 8)

    def memory_kilobytes(self, bits_per_weight: int = 8) -> float:
        """Weight memory footprint in kB (the paper's "Memory" column)."""
        return self.memory_bytes(bits_per_weight) / 1e3

    def by_kind(self) -> dict:
        """MACs grouped by kernel kind (for the ablation reports)."""
        grouped: dict = {}
        for layer in self.layers:
            grouped[layer.kind] = grouped.get(layer.kind, 0) + layer.macs
        return grouped


def profile_bioformer(config: BioformerConfig) -> ModelProfile:
    """Analytical complexity profile of a Bioformer configuration."""
    config.validate()
    profile = ModelProfile(
        name=config.describe(),
        input_shape=(config.num_channels, config.window_samples),
    )
    tokens = config.num_tokens
    sequence = config.sequence_length
    dim = config.embed_dim
    heads = config.num_heads
    head_dim = config.head_dim
    total_head_dim = heads * head_dim
    hidden = config.hidden_dim

    # 1. Patch-embedding convolution: every token needs K x C_in MACs per
    # output feature.
    conv_macs = tokens * dim * config.patch_size * config.num_channels
    conv_params = dim * config.patch_size * config.num_channels + dim
    profile.layers.append(
        LayerProfile("patch_embedding", "conv", macs=conv_macs, params=conv_params)
    )
    if config.pooling == "class_token":
        profile.layers.append(LayerProfile("class_token", "norm", params=dim))
    if config.use_positional_embedding:
        profile.layers.append(
            LayerProfile(
                "positional_embedding",
                "norm",
                params=sequence * dim,
                elementwise_ops=sequence * dim,
            )
        )

    for block in range(config.depth):
        prefix = f"block{block}"
        # Pre-attention LayerNorm.
        profile.layers.append(
            LayerProfile(
                f"{prefix}.attention_norm",
                "norm",
                params=2 * dim,
                elementwise_ops=4 * sequence * dim,
            )
        )
        # Q, K, V projections (the GAP8 kernel parallelises them per head).
        qkv_macs = 3 * sequence * dim * total_head_dim
        qkv_params = 3 * (dim * total_head_dim + total_head_dim)
        profile.layers.append(
            LayerProfile(
                f"{prefix}.attention.qkv",
                "linear",
                macs=qkv_macs,
                params=qkv_params,
                parallel_units=heads,
            )
        )
        # Attention matrices: Q K^T and A V, one pair per head.
        attention_macs = 2 * heads * sequence * sequence * head_dim
        profile.layers.append(
            LayerProfile(
                f"{prefix}.attention.scores",
                "attention_matmul",
                macs=attention_macs,
                parallel_units=heads,
            )
        )
        profile.layers.append(
            LayerProfile(
                f"{prefix}.attention.softmax",
                "softmax",
                elementwise_ops=heads * sequence * sequence,
                parallel_units=heads,
            )
        )
        # Output projection merging the heads.
        out_macs = sequence * total_head_dim * dim
        out_params = total_head_dim * dim + dim
        profile.layers.append(
            LayerProfile(f"{prefix}.attention.out", "linear", macs=out_macs, params=out_params)
        )
        # Pre-FFN LayerNorm + FFN (two linear layers with GELU in between).
        profile.layers.append(
            LayerProfile(
                f"{prefix}.ffn_norm",
                "norm",
                params=2 * dim,
                elementwise_ops=4 * sequence * dim,
            )
        )
        ffn_macs = sequence * (dim * hidden + hidden * dim)
        ffn_params = dim * hidden + hidden + hidden * dim + dim
        profile.layers.append(
            LayerProfile(
                f"{prefix}.ffn",
                "linear",
                macs=ffn_macs,
                params=ffn_params,
                elementwise_ops=sequence * hidden,
            )
        )

    # Final LayerNorm + classification head (class-token row only).
    profile.layers.append(
        LayerProfile("final_norm", "norm", params=2 * dim, elementwise_ops=4 * sequence * dim)
    )
    profile.layers.append(
        LayerProfile(
            "head",
            "linear",
            macs=dim * config.num_classes,
            params=dim * config.num_classes + config.num_classes,
        )
    )
    return profile


def profile_temponet(config: TEMPONetConfig) -> ModelProfile:
    """Analytical complexity profile of the TEMPONet baseline."""
    config.validate()
    profile = ModelProfile(
        name=config.describe(),
        input_shape=(config.num_channels, config.window_samples),
    )
    in_channels = config.num_channels
    length = config.window_samples
    for index, (out_channels, dilation, stride) in enumerate(
        zip(config.block_channels, config.block_dilations, config.block_strides)
    ):
        prefix = f"block{index}"
        for conv_index in (1, 2):
            macs = length * out_channels * config.kernel_size * (
                in_channels if conv_index == 1 else out_channels
            )
            params = out_channels * config.kernel_size * (
                in_channels if conv_index == 1 else out_channels
            ) + out_channels
            profile.layers.append(
                LayerProfile(f"{prefix}.conv{conv_index}", "conv", macs=macs, params=params)
            )
            profile.layers.append(
                LayerProfile(
                    f"{prefix}.bn{conv_index}",
                    "norm",
                    params=2 * out_channels,
                    elementwise_ops=2 * length * out_channels,
                )
            )
            in_channels = out_channels
        strided_length = (length + stride - 1) // stride
        macs = strided_length * out_channels * config.strided_kernel_size * out_channels
        params = out_channels * config.strided_kernel_size * out_channels + out_channels
        profile.layers.append(
            LayerProfile(f"{prefix}.strided_conv", "conv", macs=macs, params=params)
        )
        profile.layers.append(
            LayerProfile(
                f"{prefix}.bn3",
                "norm",
                params=2 * out_channels,
                elementwise_ops=2 * strided_length * out_channels,
            )
        )
        pooled_length = strided_length // 2
        profile.layers.append(
            LayerProfile(
                f"{prefix}.pool",
                "pool",
                elementwise_ops=pooled_length * out_channels * 2,
            )
        )
        length = pooled_length

    features = in_channels * length
    hidden1, hidden2 = config.fc_hidden
    for name, fan_in, fan_out in (
        ("fc1", features, hidden1),
        ("fc2", hidden1, hidden2),
        ("fc3", hidden2, config.num_classes),
    ):
        profile.layers.append(
            LayerProfile(
                name,
                "linear",
                macs=fan_in * fan_out,
                params=fan_in * fan_out + fan_out,
            )
        )
    return profile


def profile_model(model: Union[Bioformer, TEMPONet, BioformerConfig, TEMPONetConfig]) -> ModelProfile:
    """Profile a model instance or configuration (dispatch helper)."""
    if isinstance(model, Bioformer):
        return profile_bioformer(model.config)
    if isinstance(model, TEMPONet):
        return profile_temponet(model.config)
    if isinstance(model, BioformerConfig):
        return profile_bioformer(model)
    if isinstance(model, TEMPONetConfig):
        return profile_temponet(model)
    raise TypeError(f"cannot profile object of type {type(model).__name__}")
