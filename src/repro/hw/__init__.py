"""``repro.hw`` — the GAP8 deployment substrate.

Analytical complexity profiling (MACs / parameters per layer), a calibrated
GAP8 latency & energy model, memory-fit checks, duty-cycle power analysis
and battery-life projection.
"""

from .battery import BatteryConfig, DutyCycleReport, battery_life_hours, duty_cycle_power
from .deploy import DeploymentRecord, deploy
from .gap8 import GAP8Config, GAP8Model, LatencyBreakdown, LayerCost
from .profiler import (
    LayerProfile,
    ModelProfile,
    profile_bioformer,
    profile_model,
    profile_temponet,
)

__all__ = [
    "LayerProfile",
    "ModelProfile",
    "profile_bioformer",
    "profile_temponet",
    "profile_model",
    "GAP8Config",
    "GAP8Model",
    "LayerCost",
    "LatencyBreakdown",
    "BatteryConfig",
    "DutyCycleReport",
    "duty_cycle_power",
    "battery_life_hours",
    "DeploymentRecord",
    "deploy",
]
