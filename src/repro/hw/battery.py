"""Duty-cycled power and battery-life model.

The paper's final claim (Sec. IV-C) is the always-on scenario: a 150 ms
window is classified every 15 ms; between inferences the 8-core cluster is
idled through the hardware synchronisation unit and only the Fabric
Controller (10 mW) stays on.  With a small 1000 mAh battery this yields
~257 h of continuous operation for the fastest Bioformer versus ~54 h for
TEMPONet.

A model whose inference latency exceeds the inter-window period cannot be
duty-cycled at all: it runs back-to-back and its average power is the full
active power plus the FC (this is what happens to TEMPONet at the 15 ms
slide).
"""

from __future__ import annotations

from dataclasses import dataclass

from .gap8 import GAP8Config

__all__ = ["BatteryConfig", "DutyCycleReport", "duty_cycle_power", "battery_life_hours"]


@dataclass
class BatteryConfig:
    """Battery parameters for the lifetime projection."""

    capacity_mah: float = 1000.0
    voltage_v: float = 3.3

    @property
    def energy_j(self) -> float:
        """Total stored energy in joules."""
        return self.capacity_mah * 1e-3 * 3600.0 * self.voltage_v


@dataclass
class DutyCycleReport:
    """Average-power analysis of the always-on gesture-recognition loop."""

    latency_s: float
    period_s: float
    active_power_w: float
    idle_power_w: float
    average_power_w: float
    duty_cycle: float
    real_time: bool
    battery_life_hours: float


def duty_cycle_power(
    latency_s: float,
    period_s: float,
    gap8: GAP8Config,
) -> tuple:
    """Average power of classifying one window every ``period_s`` seconds.

    Returns ``(average_power_w, duty_cycle, real_time)``.
    """
    if latency_s <= 0 or period_s <= 0:
        raise ValueError("latency and period must be positive")
    if latency_s >= period_s:
        # No idle time: the cluster never sleeps (and the system misses its
        # real-time deadline).
        return gap8.active_power_w + gap8.idle_power_w, 1.0, False
    duty = latency_s / period_s
    average = duty * gap8.active_power_w + (1.0 - duty) * gap8.idle_power_w
    return average, duty, True


def battery_life_hours(
    latency_s: float,
    period_s: float,
    gap8: GAP8Config,
    battery: BatteryConfig = BatteryConfig(),
) -> DutyCycleReport:
    """Battery-life projection of the always-on recognition loop."""
    average_power, duty, real_time = duty_cycle_power(latency_s, period_s, gap8)
    hours = battery.energy_j / average_power / 3600.0
    return DutyCycleReport(
        latency_s=latency_s,
        period_s=period_s,
        active_power_w=gap8.active_power_w,
        idle_power_w=gap8.idle_power_w,
        average_power_w=average_power,
        duty_cycle=duty,
        real_time=real_time,
        battery_life_hours=hours,
    )
