"""GAP8 system-on-chip model and per-layer latency / energy estimation.

GAP8 (GreenWaves Technologies) is the deployment target of the paper: a
RISC-V Fabric Controller (FC) plus an 8-core RISC-V cluster with a 64 kB
shared L1 scratchpad and 512 kB of L2 memory, running the int8 transformer
kernels of Burrello et al. (COINS 2021) at 100 MHz / 1 V with an average
active power of 51 mW (10 mW with the cluster idle).

Real silicon is not available in this environment, so deployment numbers
come from an analytical cost model over the per-layer profiles produced by
:mod:`repro.hw.profiler`:

* MAC-dominated kernels run at ``peak_macs_per_cycle x utilisation``; the
  utilisation depends on the kernel kind and on how many independent units
  (e.g. attention heads) it can spread over the 8 cores — this is what makes
  the 2-head Bioformer slower than the 8-head one despite having fewer MACs,
  exactly as in the paper's Table I;
* elementwise kernels (softmax, normalisation, activations) cost a fixed
  number of cycles per element;
* every layer pays a constant offload/DMA overhead.

The utilisation/overhead constants were calibrated once against the six
measured rows of the paper's Table I (see ``TableICalibration`` in the test
suite), and the calibration procedure itself ships with the module so users
can re-fit it for other targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .profiler import LayerProfile, ModelProfile

__all__ = ["GAP8Config", "LayerCost", "LatencyBreakdown", "GAP8Model"]


@dataclass
class GAP8Config:
    """Hardware description and calibrated kernel-efficiency constants."""

    name: str = "GAP8"
    #: Cluster configuration.
    num_cores: int = 8
    frequency_hz: float = 100e6
    #: Peak int8 MACs the 8-core cluster can retire per cycle.
    peak_macs_per_cycle: float = 16.0
    #: Memory hierarchy.
    l1_bytes: int = 64 * 1024
    l2_bytes: int = 512 * 1024
    #: Power states (W).
    active_power_w: float = 51e-3
    idle_power_w: float = 10e-3
    #: Calibrated utilisation of the cluster per kernel kind (fraction of
    #: ``peak_macs_per_cycle`` achieved by a kernel that can use all cores).
    utilization: Dict[str, float] = field(
        default_factory=lambda: {
            "conv": 0.75,
            "linear": 0.78,
            "attention_matmul": 0.72,
            "tcn_conv": 0.51,
        }
    )
    #: Cycles per element for elementwise kernels.
    elementwise_cycles: Dict[str, float] = field(
        default_factory=lambda: {
            "softmax": 4.0,
            "norm": 1.2,
            "activation": 1.0,
            "pool": 1.5,
        }
    )
    #: Fixed per-layer overhead (kernel launch, DMA programming), in cycles.
    layer_overhead_cycles: float = 900.0

    def validate(self) -> None:
        """Raise ``ValueError`` for physically meaningless settings."""
        if self.num_cores <= 0 or self.frequency_hz <= 0:
            raise ValueError("num_cores and frequency_hz must be positive")
        if self.peak_macs_per_cycle <= 0:
            raise ValueError("peak_macs_per_cycle must be positive")
        if not 0 < self.active_power_w:
            raise ValueError("active_power_w must be positive")


@dataclass
class LayerCost:
    """Cycle cost of one layer on the target."""

    name: str
    kind: str
    macs: int
    cycles: float

    @property
    def mac_per_cycle(self) -> float:
        """Achieved MAC throughput (0 for non-MAC layers)."""
        return self.macs / self.cycles if self.cycles > 0 else 0.0


@dataclass
class LatencyBreakdown:
    """Per-layer and total latency/energy of one model on one target."""

    model_name: str
    target_name: str
    layer_costs: list
    frequency_hz: float
    active_power_w: float

    @property
    def total_cycles(self) -> float:
        """Total cycles per inference."""
        return sum(cost.cycles for cost in self.layer_costs)

    @property
    def latency_s(self) -> float:
        """Inference latency in seconds."""
        return self.total_cycles / self.frequency_hz

    @property
    def latency_ms(self) -> float:
        """Inference latency in milliseconds (Table I column)."""
        return self.latency_s * 1e3

    @property
    def energy_j(self) -> float:
        """Energy per inference in joules (latency x active power)."""
        return self.latency_s * self.active_power_w

    @property
    def energy_mj(self) -> float:
        """Energy per inference in millijoules (Table I column)."""
        return self.energy_j * 1e3

    def dominant_layers(self, top: int = 5) -> list:
        """The ``top`` most expensive layers (for optimisation reports)."""
        return sorted(self.layer_costs, key=lambda cost: cost.cycles, reverse=True)[:top]


class GAP8Model:
    """Analytical GAP8 latency / energy / memory estimator."""

    def __init__(self, config: Optional[GAP8Config] = None) -> None:
        self.config = config if config is not None else GAP8Config()
        self.config.validate()

    # ------------------------------------------------------------------ #
    # Per-layer cost
    # ------------------------------------------------------------------ #
    def _utilization(self, layer: LayerProfile, model_name: str) -> float:
        config = self.config
        kind = layer.kind
        if kind == "conv" and model_name.startswith("TEMPONet"):
            # The TCN's dilated convolutions stream large activations through
            # L1 and achieve lower MAC utilisation than the dense transformer
            # GEMMs (calibrated on the paper's TEMPONet row).
            base = config.utilization["tcn_conv"]
        else:
            base = config.utilization.get(kind, config.utilization["linear"])
        if layer.parallel_units and layer.parallel_units < config.num_cores:
            # A kernel parallelised over fewer independent units than cores
            # leaves the remaining cores idle (e.g. 2-head attention).
            base *= layer.parallel_units / config.num_cores
        return base

    def layer_cost(self, layer: LayerProfile, model_name: str = "") -> LayerCost:
        """Estimate the cycle cost of a single profiled layer."""
        config = self.config
        cycles = config.layer_overhead_cycles
        if layer.macs > 0:
            throughput = config.peak_macs_per_cycle * self._utilization(layer, model_name)
            cycles += layer.macs / max(throughput, 1e-9)
        if layer.elementwise_ops > 0:
            per_element = config.elementwise_cycles.get(layer.kind, 1.0)
            cycles += layer.elementwise_ops * per_element / config.num_cores
        return LayerCost(name=layer.name, kind=layer.kind, macs=layer.macs, cycles=cycles)

    # ------------------------------------------------------------------ #
    # Whole-model estimates
    # ------------------------------------------------------------------ #
    def latency(self, profile: ModelProfile) -> LatencyBreakdown:
        """Latency/energy breakdown of a profiled model on this target."""
        costs = [self.layer_cost(layer, profile.name) for layer in profile.layers]
        return LatencyBreakdown(
            model_name=profile.name,
            target_name=self.config.name,
            layer_costs=costs,
            frequency_hz=self.config.frequency_hz,
            active_power_w=self.config.active_power_w,
        )

    def fits_memory(self, profile: ModelProfile, bits_per_weight: int = 8) -> bool:
        """Whether the weights fit in the 512 kB L2 memory."""
        return profile.memory_bytes(bits_per_weight) <= self.config.l2_bytes

    def memory_utilization(self, profile: ModelProfile, bits_per_weight: int = 8) -> float:
        """Fraction of L2 occupied by the weights."""
        return profile.memory_bytes(bits_per_weight) / self.config.l2_bytes
