"""End-to-end deployment pipeline: profile -> quantise -> estimate -> report.

This is the flow a user follows before committing a model to the GAP8
target, and the code path that regenerates the paper's Table I: given a
trained model (optionally with a quantised-accuracy figure), produce its
memory footprint, MMAC count, latency, energy and battery-life projection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..models.bioformer import Bioformer, BioformerConfig
from ..models.temponet import TEMPONet, TEMPONetConfig
from .battery import BatteryConfig, DutyCycleReport, battery_life_hours
from .gap8 import GAP8Config, GAP8Model, LatencyBreakdown
from .profiler import ModelProfile, profile_model

__all__ = ["DeploymentRecord", "deploy"]

ModelLike = Union[Bioformer, TEMPONet, BioformerConfig, TEMPONetConfig]


@dataclass
class DeploymentRecord:
    """Everything one row of the paper's Table I needs."""

    model_name: str
    profile: ModelProfile
    latency: LatencyBreakdown
    memory_kilobytes: float
    quantized_accuracy: Optional[float] = None
    duty_cycle: Optional[DutyCycleReport] = None

    @property
    def mmacs(self) -> float:
        """Million MACs per inference."""
        return self.profile.mmacs

    @property
    def latency_ms(self) -> float:
        """Latency in milliseconds."""
        return self.latency.latency_ms

    @property
    def energy_mj(self) -> float:
        """Energy per inference in millijoules."""
        return self.latency.energy_mj

    def as_row(self) -> tuple:
        """The record formatted as a Table I row."""
        accuracy = (
            f"{100 * self.quantized_accuracy:.2f}%" if self.quantized_accuracy is not None else "-"
        )
        return (
            self.model_name,
            f"{self.memory_kilobytes:.1f} kB",
            f"{self.mmacs:.1f}",
            f"{self.latency_ms:.2f}",
            f"{self.energy_mj:.3f}",
            accuracy,
        )


def deploy(
    model: ModelLike,
    gap8: Optional[GAP8Config] = None,
    quantized_accuracy: Optional[float] = None,
    inference_period_s: Optional[float] = 15e-3,
    battery: Optional[BatteryConfig] = None,
    bits_per_weight: int = 8,
) -> DeploymentRecord:
    """Run the full deployment estimation for ``model``.

    Parameters
    ----------
    model:
        A model instance or configuration (Bioformer or TEMPONet).
    gap8:
        Target description; defaults to the paper's GAP8 @ 100 MHz / 1 V.
    quantized_accuracy:
        Optional int8 accuracy to attach to the record (Table I's last
        column); the deployment estimate itself does not need it.
    inference_period_s:
        Period of the always-on loop (the paper classifies a window every
        15 ms); pass ``None`` to skip the battery-life projection.
    battery:
        Battery description for the lifetime projection.
    bits_per_weight:
        Weight storage precision (8 for the int8 deployment).
    """
    gap8 = gap8 if gap8 is not None else GAP8Config()
    target = GAP8Model(gap8)
    profile = profile_model(model)
    latency = target.latency(profile)
    duty_report = None
    if inference_period_s is not None:
        duty_report = battery_life_hours(
            latency.latency_s,
            inference_period_s,
            gap8,
            battery if battery is not None else BatteryConfig(),
        )
    return DeploymentRecord(
        model_name=profile.name,
        profile=profile,
        latency=latency,
        memory_kilobytes=profile.memory_kilobytes(bits_per_weight),
        quantized_accuracy=quantized_accuracy,
        duty_cycle=duty_report,
    )
