"""Training utilities: early stopping, best-model checkpointing, weight EMA.

The paper trains with fixed epoch budgets (100 pre-training + 20 fine-tuning
epochs); these helpers cover the knobs a practitioner adds around that loop
when training on their own data.  They are deliberately standalone — each
one is driven explicitly from the training script rather than hooked into
:class:`~repro.training.trainer.Trainer` — so they compose with any loop.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from ..nn.module import Module
from ..nn.serialization import load_state_dict, save_state_dict

__all__ = ["EarlyStopping", "BestModelCheckpoint", "ExponentialMovingAverage"]


class EarlyStopping:
    """Stop training when a monitored metric stops improving.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving updates tolerated before
        :attr:`should_stop` turns ``True``.
    min_delta:
        Minimum improvement that counts as progress.
    mode:
        ``"max"`` for accuracy-like metrics, ``"min"`` for losses.
    restore_best:
        Keep a copy of the best model state and restore it on demand.

    Example
    -------
    >>> stopper = EarlyStopping(patience=3)
    >>> for epoch in range(epochs):
    ...     ...  # train one epoch
    ...     if stopper.update(validation_accuracy, model):
    ...         break
    >>> stopper.restore(model)
    """

    def __init__(
        self,
        patience: int = 5,
        min_delta: float = 0.0,
        mode: str = "max",
        restore_best: bool = True,
    ) -> None:
        if patience < 1:
            raise ValueError("patience must be at least 1")
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        if min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        self.patience = patience
        self.min_delta = min_delta
        self.mode = mode
        self.restore_best = restore_best
        self.best_metric: Optional[float] = None
        self.best_state: Optional[Dict[str, np.ndarray]] = None
        self.bad_updates = 0
        self.stopped_at: Optional[int] = None
        self._updates = 0

    def _improved(self, metric: float) -> bool:
        if self.best_metric is None:
            return True
        if self.mode == "max":
            return metric > self.best_metric + self.min_delta
        return metric < self.best_metric - self.min_delta

    @property
    def should_stop(self) -> bool:
        """Whether the patience budget has been exhausted."""
        return self.bad_updates >= self.patience

    def update(self, metric: float, model: Optional[Module] = None) -> bool:
        """Record one evaluation of the monitored metric.

        Returns ``True`` when training should stop.
        """
        self._updates += 1
        if self._improved(metric):
            self.best_metric = float(metric)
            self.bad_updates = 0
            if self.restore_best and model is not None:
                self.best_state = model.state_dict()
        else:
            self.bad_updates += 1
            if self.should_stop and self.stopped_at is None:
                self.stopped_at = self._updates
        return self.should_stop

    def restore(self, model: Module) -> bool:
        """Load the best recorded state back into ``model`` (if any)."""
        if self.best_state is None:
            return False
        model.load_state_dict(self.best_state)
        return True


class BestModelCheckpoint:
    """Persist the best model state to disk as training progresses."""

    def __init__(self, path: str, mode: str = "max") -> None:
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        self.path = path
        self.mode = mode
        self.best_metric: Optional[float] = None

    def update(self, metric: float, model: Module) -> bool:
        """Save ``model`` when ``metric`` improves; returns ``True`` on save."""
        improved = (
            self.best_metric is None
            or (self.mode == "max" and metric > self.best_metric)
            or (self.mode == "min" and metric < self.best_metric)
        )
        if improved:
            self.best_metric = float(metric)
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            save_state_dict(model.state_dict(), self.path)
        return improved

    def load_best(self, model: Module) -> None:
        """Load the best checkpoint back into ``model``."""
        if self.best_metric is None or not os.path.exists(self.path):
            raise FileNotFoundError("no checkpoint has been written yet")
        model.load_state_dict(load_state_dict(self.path))


class ExponentialMovingAverage:
    """Exponential moving average of a model's parameters.

    EMA weights generalise better than the raw final weights for noisy
    small-data training, which is exactly the subject-specific fine-tuning
    regime of the paper.  Typical use::

        ema = ExponentialMovingAverage(model, decay=0.99)
        for step in training_steps:
            ...
            ema.update(model)
        ema.apply_to(model)      # evaluate with averaged weights
        ema.restore(model)       # back to the raw weights
    """

    def __init__(self, model: Module, decay: float = 0.99) -> None:
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must lie in (0, 1)")
        self.decay = decay
        self.shadow: Dict[str, np.ndarray] = {
            name: parameter.data.copy() for name, parameter in model.named_parameters()
        }
        self._backup: Optional[Dict[str, np.ndarray]] = None
        self.num_updates = 0

    def update(self, model: Module) -> None:
        """Fold the model's current parameters into the moving average."""
        self.num_updates += 1
        for name, parameter in model.named_parameters():
            if name not in self.shadow:
                raise KeyError(f"parameter '{name}' was not present at EMA construction")
            self.shadow[name] = (
                self.decay * self.shadow[name] + (1.0 - self.decay) * parameter.data
            )

    def apply_to(self, model: Module) -> None:
        """Swap the averaged weights into ``model`` (keeping a backup)."""
        self._backup = {name: parameter.data.copy() for name, parameter in model.named_parameters()}
        for name, parameter in model.named_parameters():
            parameter.data[...] = self.shadow[name]

    def restore(self, model: Module) -> None:
        """Undo :meth:`apply_to`, restoring the raw training weights."""
        if self._backup is None:
            raise RuntimeError("apply_to() must be called before restore()")
        for name, parameter in model.named_parameters():
            parameter.data[...] = self._backup[name]
        self._backup = None
