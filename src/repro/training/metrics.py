"""Classification metrics used across the experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = ["accuracy", "confusion_matrix", "per_class_accuracy", "macro_f1", "ClassificationReport"]


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of ``predictions`` equal to ``targets``."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same shape")
    if predictions.size == 0:
        return 0.0
    return float((predictions == targets).mean())


def confusion_matrix(predictions: np.ndarray, targets: np.ndarray, num_classes: int) -> np.ndarray:
    """``(num_classes, num_classes)`` matrix with true classes on the rows."""
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for target, prediction in zip(np.asarray(targets), np.asarray(predictions)):
        matrix[int(target), int(prediction)] += 1
    return matrix


def per_class_accuracy(matrix: np.ndarray) -> np.ndarray:
    """Recall of every class from a confusion matrix (NaN-free)."""
    totals = matrix.sum(axis=1)
    correct = np.diag(matrix)
    with np.errstate(divide="ignore", invalid="ignore"):
        recall = np.where(totals > 0, correct / np.maximum(totals, 1), 0.0)
    return recall


def macro_f1(matrix: np.ndarray) -> float:
    """Macro-averaged F1 score from a confusion matrix."""
    true_positive = np.diag(matrix).astype(np.float64)
    predicted = matrix.sum(axis=0).astype(np.float64)
    actual = matrix.sum(axis=1).astype(np.float64)
    precision = np.where(predicted > 0, true_positive / np.maximum(predicted, 1), 0.0)
    recall = np.where(actual > 0, true_positive / np.maximum(actual, 1), 0.0)
    denominator = precision + recall
    f1 = np.where(denominator > 0, 2 * precision * recall / np.maximum(denominator, 1e-12), 0.0)
    return float(f1.mean())


@dataclass
class ClassificationReport:
    """Bundle of evaluation results for one model on one dataset."""

    accuracy: float
    confusion: np.ndarray
    loss: Optional[float] = None

    @property
    def per_class(self) -> np.ndarray:
        """Per-class recall."""
        return per_class_accuracy(self.confusion)

    @property
    def macro_f1(self) -> float:
        """Macro-averaged F1."""
        return macro_f1(self.confusion)

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of headline numbers (for logging / tables)."""
        result = {"accuracy": self.accuracy, "macro_f1": self.macro_f1}
        if self.loss is not None:
            result["loss"] = self.loss
        return result
