"""The paper's training protocols.

Two protocols are reproduced (Sec. III-B):

* **Standard (subject-specific) training** — the model is trained from
  scratch on the target subject's sessions 1-5 and tested on sessions 6-10.
* **Two-step inter-subject pre-training** — the model is first pre-trained
  on the training sessions of every *other* subject (100 epochs, Adam with
  a linear learning-rate warm-up from 1e-7 to 5e-4), then fine-tuned on the
  target subject's sessions 1-5 (20 epochs, lr 1e-4 reduced 10x after 10
  epochs) and tested on sessions 6-10.

Both return a :class:`SubjectResult` that records overall and per-session
test accuracy, which is exactly the information Figs. 2 and 3 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

import numpy as np

from ..data.dataset import ArrayDataset
from ..data.splits import SubjectSplit
from ..nn.module import Module
from ..nn.optim import Adam
from ..nn.schedulers import LinearWarmup, StepDecay
from ..utils.logging import get_logger
from ..utils.rng import derive_rng
from .metrics import ClassificationReport
from .trainer import Trainer, TrainingConfig, TrainingHistory, evaluate

__all__ = [
    "ProtocolConfig",
    "SubjectResult",
    "train_subject_specific",
    "pretrain_inter_subject",
    "finetune_subject",
    "run_two_step_protocol",
]

_LOGGER = get_logger("protocol")


@dataclass
class ProtocolConfig:
    """Hyper-parameters of the two-step training protocol.

    The defaults are the paper's values; the reduced-scale presets shrink
    epoch counts (never the structure of the protocol) so that the NumPy
    substrate finishes in benchmark-friendly time.
    """

    # Pre-training (inter-subject) phase.
    pretrain_epochs: int = 100
    pretrain_warmup_start_lr: float = 1e-7
    pretrain_peak_lr: float = 5e-4
    pretrain_warmup_epochs: Optional[int] = None  # default: full pre-training length
    # Fine-tuning (subject-specific) phase.
    finetune_epochs: int = 20
    finetune_lr: float = 1e-4
    finetune_lr_decay_epoch: int = 10
    finetune_lr_decay_factor: float = 0.1
    # Standard training (no pre-training) uses the fine-tuning schedule but
    # trains longer since it starts from random weights.
    standard_epochs: int = 30
    standard_lr: float = 5e-4
    # Shared loop parameters.
    batch_size: int = 64
    max_grad_norm: float = 5.0
    seed: int = 0
    verbose: bool = False

    @classmethod
    def paper(cls) -> "ProtocolConfig":
        """The protocol exactly as described in the paper."""
        return cls()

    @classmethod
    def small(cls, seed: int = 0) -> "ProtocolConfig":
        """Reduced epochs for the benchmark harness (minutes, not hours)."""
        return cls(
            pretrain_epochs=12,
            finetune_epochs=8,
            finetune_lr=2e-4,
            finetune_lr_decay_epoch=4,
            standard_epochs=10,
            batch_size=64,
            seed=seed,
        )

    @classmethod
    def tiny(cls, seed: int = 0) -> "ProtocolConfig":
        """Smoke-test preset for the integration tests (seconds)."""
        return cls(
            pretrain_epochs=2,
            finetune_epochs=2,
            finetune_lr_decay_epoch=1,
            standard_epochs=2,
            batch_size=32,
            seed=seed,
        )


@dataclass
class SubjectResult:
    """Outcome of one protocol run on one subject."""

    subject: int
    protocol: str
    test_accuracy: float
    per_session_accuracy: Dict[int, float]
    report: ClassificationReport
    pretrain_history: Optional[TrainingHistory] = None
    train_history: Optional[TrainingHistory] = None

    def session_series(self) -> Dict[int, float]:
        """Per-session accuracies sorted by session id (Fig. 2 series)."""
        return dict(sorted(self.per_session_accuracy.items()))


def _evaluate_split(model: Module, split: SubjectSplit, num_classes: int) -> tuple:
    """Overall and per-session test evaluation."""
    report = evaluate(model, split.test, num_classes=num_classes)
    per_session = {
        session: evaluate(model, dataset, num_classes=num_classes).accuracy
        for session, dataset in split.test_per_session.items()
    }
    return report, per_session


def pretrain_inter_subject(
    model: Module,
    pretrain_dataset: ArrayDataset,
    config: ProtocolConfig,
    num_classes: int,
) -> TrainingHistory:
    """Run the inter-subject pre-training phase on ``model`` in place."""
    if len(pretrain_dataset) == 0:
        raise ValueError("pre-training dataset is empty")
    optimizer = Adam(model.parameters(), lr=config.pretrain_warmup_start_lr)
    warmup_epochs = (
        config.pretrain_warmup_epochs
        if config.pretrain_warmup_epochs is not None
        else config.pretrain_epochs
    )
    scheduler = LinearWarmup(
        optimizer,
        start_lr=config.pretrain_warmup_start_lr,
        peak_lr=config.pretrain_peak_lr,
        warmup_steps=max(warmup_epochs, 1),
    )
    trainer = Trainer(
        model,
        optimizer,
        scheduler,
        TrainingConfig(
            epochs=config.pretrain_epochs,
            batch_size=config.batch_size,
            max_grad_norm=config.max_grad_norm,
            verbose=config.verbose,
        ),
        rng=derive_rng("protocol", "pretrain", seed=config.seed),
    )
    return trainer.fit(pretrain_dataset, num_classes=num_classes)


def finetune_subject(
    model: Module,
    train_dataset: ArrayDataset,
    config: ProtocolConfig,
    num_classes: int,
) -> TrainingHistory:
    """Run the subject-specific fine-tuning phase on ``model`` in place."""
    optimizer = Adam(model.parameters(), lr=config.finetune_lr)
    scheduler = StepDecay(
        optimizer,
        base_lr=config.finetune_lr,
        step_size=config.finetune_lr_decay_epoch,
        gamma=config.finetune_lr_decay_factor,
    )
    trainer = Trainer(
        model,
        optimizer,
        scheduler,
        TrainingConfig(
            epochs=config.finetune_epochs,
            batch_size=config.batch_size,
            max_grad_norm=config.max_grad_norm,
            verbose=config.verbose,
        ),
        rng=derive_rng("protocol", "finetune", seed=config.seed),
    )
    return trainer.fit(train_dataset, num_classes=num_classes)


def train_subject_specific(
    model: Module,
    split: SubjectSplit,
    config: ProtocolConfig,
    num_classes: int = 8,
) -> SubjectResult:
    """Standard training: train from scratch on sessions 1-5, test on 6-10."""
    optimizer = Adam(model.parameters(), lr=config.standard_lr)
    scheduler = StepDecay(
        optimizer,
        base_lr=config.standard_lr,
        step_size=max(config.standard_epochs // 2, 1),
        gamma=config.finetune_lr_decay_factor,
    )
    trainer = Trainer(
        model,
        optimizer,
        scheduler,
        TrainingConfig(
            epochs=config.standard_epochs,
            batch_size=config.batch_size,
            max_grad_norm=config.max_grad_norm,
            verbose=config.verbose,
        ),
        rng=derive_rng("protocol", "standard", split.subject, seed=config.seed),
    )
    history = trainer.fit(split.train, num_classes=num_classes)
    report, per_session = _evaluate_split(model, split, num_classes)
    _LOGGER.info(
        "subject %d standard training: test accuracy %.2f%%",
        split.subject,
        100 * report.accuracy,
    )
    return SubjectResult(
        subject=split.subject,
        protocol="standard",
        test_accuracy=report.accuracy,
        per_session_accuracy=per_session,
        report=report,
        train_history=history,
    )


def run_two_step_protocol(
    model: Module,
    split: SubjectSplit,
    config: ProtocolConfig,
    num_classes: int = 8,
    pretrained_state: Optional[dict] = None,
) -> SubjectResult:
    """Two-step protocol: inter-subject pre-training then subject fine-tuning.

    Parameters
    ----------
    model:
        Freshly initialised model (trained in place).
    split:
        The target subject's data views.
    config:
        Protocol hyper-parameters.
    num_classes:
        Number of gesture classes.
    pretrained_state:
        Optional ``state_dict`` of an already pre-trained model for this
        subject (lets experiment drivers reuse one pre-training run across
        several analyses instead of repeating it).
    """
    pretrain_history: Optional[TrainingHistory] = None
    if pretrained_state is not None:
        model.load_state_dict(pretrained_state)
    else:
        pretrain_history = pretrain_inter_subject(model, split.pretrain, config, num_classes)
    finetune_history = finetune_subject(model, split.train, config, num_classes)
    report, per_session = _evaluate_split(model, split, num_classes)
    _LOGGER.info(
        "subject %d two-step protocol: test accuracy %.2f%%",
        split.subject,
        100 * report.accuracy,
    )
    return SubjectResult(
        subject=split.subject,
        protocol="pretrain+finetune",
        test_accuracy=report.accuracy,
        per_session_accuracy=per_session,
        report=report,
        pretrain_history=pretrain_history,
        train_history=finetune_history,
    )
