"""``repro.training`` — training loop, metrics and the paper's protocols."""

from .callbacks import BestModelCheckpoint, EarlyStopping, ExponentialMovingAverage
from .metrics import (
    ClassificationReport,
    accuracy,
    confusion_matrix,
    macro_f1,
    per_class_accuracy,
)
from .protocol import (
    ProtocolConfig,
    SubjectResult,
    finetune_subject,
    pretrain_inter_subject,
    run_two_step_protocol,
    train_subject_specific,
)
from .trainer import EpochRecord, Trainer, TrainingConfig, TrainingHistory, evaluate

__all__ = [
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "macro_f1",
    "ClassificationReport",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "EpochRecord",
    "evaluate",
    "ProtocolConfig",
    "SubjectResult",
    "train_subject_specific",
    "run_two_step_protocol",
    "pretrain_inter_subject",
    "finetune_subject",
    "EarlyStopping",
    "BestModelCheckpoint",
    "ExponentialMovingAverage",
]
