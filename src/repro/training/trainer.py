"""Generic supervised training loop.

The :class:`Trainer` runs mini-batch gradient descent with any optimiser /
scheduler combination from :mod:`repro.nn`, records a per-epoch history and
evaluates models on held-out datasets.  Both training phases of the paper's
protocol (inter-subject pre-training and subject-specific fine-tuning) are
driven through this class by :mod:`repro.training.protocol`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..data.dataset import ArrayDataset, DataLoader
from ..nn import CrossEntropyLoss, clip_grad_norm, no_grad
from ..nn.module import Module
from ..nn.optim import Optimizer
from ..nn.schedulers import Scheduler
from ..nn.tensor import Tensor
from ..utils.logging import get_logger
from .metrics import ClassificationReport, accuracy, confusion_matrix

__all__ = ["TrainingConfig", "EpochRecord", "TrainingHistory", "Trainer", "evaluate"]

_LOGGER = get_logger("training")


@dataclass
class TrainingConfig:
    """Knobs of one training phase."""

    epochs: int = 20
    batch_size: int = 64
    shuffle: bool = True
    max_grad_norm: Optional[float] = 5.0
    label_smoothing: float = 0.0
    log_every: int = 0  # 0 = only log at the end of each epoch
    verbose: bool = False


@dataclass
class EpochRecord:
    """Metrics of a single training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    learning_rate: float
    validation_accuracy: Optional[float] = None


@dataclass
class TrainingHistory:
    """Accumulated per-epoch records of one training phase."""

    records: List[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        """Add one epoch record."""
        self.records.append(record)

    @property
    def final_train_accuracy(self) -> float:
        """Training accuracy of the last epoch (0 when empty)."""
        return self.records[-1].train_accuracy if self.records else 0.0

    @property
    def losses(self) -> List[float]:
        """Training loss trajectory."""
        return [record.train_loss for record in self.records]

    @property
    def learning_rates(self) -> List[float]:
        """Learning-rate trajectory (one value per epoch)."""
        return [record.learning_rate for record in self.records]


def evaluate(
    model: Module,
    dataset: ArrayDataset,
    batch_size: int = 128,
    num_classes: Optional[int] = None,
    loss_function: Optional[Module] = None,
) -> ClassificationReport:
    """Evaluate ``model`` on ``dataset`` and return a :class:`ClassificationReport`."""
    model.eval()
    classes = num_classes if num_classes is not None else dataset.num_classes
    predictions = np.zeros(len(dataset), dtype=np.int64)
    total_loss = 0.0
    batches = 0
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            stop = min(start + batch_size, len(dataset))
            windows = dataset.windows[start:stop]
            labels = dataset.labels[start:stop]
            logits = model(Tensor(windows))
            predictions[start:stop] = np.argmax(logits.data, axis=-1)
            if loss_function is not None:
                total_loss += float(loss_function(logits, labels).data)
                batches += 1
    report = ClassificationReport(
        accuracy=accuracy(predictions, dataset.labels),
        confusion=confusion_matrix(predictions, dataset.labels, classes),
        loss=(total_loss / batches) if batches else None,
    )
    return report


class Trainer:
    """Mini-batch supervised trainer.

    Parameters
    ----------
    model:
        The module to optimise.
    optimizer:
        Any :class:`repro.nn.Optimizer`.
    scheduler:
        Optional learning-rate scheduler stepped **once per epoch** (the
        granularity used by the paper's warm-up / decay schedules).
    config:
        Loop hyper-parameters.
    rng:
        Random generator used for shuffling.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        scheduler: Optional[Scheduler] = None,
        config: Optional[TrainingConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.config = config if config is not None else TrainingConfig()
        self._rng = rng if rng is not None else np.random.default_rng()
        self.loss_function = CrossEntropyLoss(label_smoothing=self.config.label_smoothing)
        self.history = TrainingHistory()

    def _run_epoch(self, loader: DataLoader, epoch: int) -> EpochRecord:
        self.model.train()
        if self.scheduler is not None:
            learning_rate = self.scheduler.step()
        else:
            learning_rate = self.optimizer.lr
        epoch_loss = 0.0
        correct = 0
        seen = 0
        for batch_index, (windows, labels) in enumerate(loader):
            logits = self.model(Tensor(windows))
            loss = self.loss_function(logits, labels)
            self.optimizer.zero_grad()
            loss.backward()
            if self.config.max_grad_norm is not None:
                clip_grad_norm(self.optimizer.parameters, self.config.max_grad_norm)
            self.optimizer.step()

            batch_predictions = np.argmax(logits.data, axis=-1)
            correct += int((batch_predictions == labels).sum())
            seen += labels.shape[0]
            epoch_loss += float(loss.data) * labels.shape[0]
            if self.config.log_every and (batch_index + 1) % self.config.log_every == 0:
                _LOGGER.info(
                    "epoch %d batch %d loss %.4f", epoch, batch_index + 1, float(loss.data)
                )
        return EpochRecord(
            epoch=epoch,
            train_loss=epoch_loss / max(seen, 1),
            train_accuracy=correct / max(seen, 1),
            learning_rate=learning_rate,
        )

    def fit(
        self,
        train_dataset: ArrayDataset,
        validation_dataset: Optional[ArrayDataset] = None,
        num_classes: Optional[int] = None,
    ) -> TrainingHistory:
        """Train for ``config.epochs`` epochs and return the history."""
        loader = DataLoader(
            train_dataset,
            batch_size=self.config.batch_size,
            shuffle=self.config.shuffle,
            rng=self._rng,
        )
        for epoch in range(1, self.config.epochs + 1):
            record = self._run_epoch(loader, epoch)
            if validation_dataset is not None and len(validation_dataset):
                record.validation_accuracy = evaluate(
                    self.model, validation_dataset, num_classes=num_classes
                ).accuracy
            self.history.append(record)
            if self.config.verbose:
                _LOGGER.info(
                    "epoch %d/%d loss %.4f train_acc %.3f%s",
                    epoch,
                    self.config.epochs,
                    record.train_loss,
                    record.train_accuracy,
                    (
                        f" val_acc {record.validation_accuracy:.3f}"
                        if record.validation_accuracy is not None
                        else ""
                    ),
                )
        return self.history
