"""Bioformers reproduction — ultra-low-power sEMG gesture recognition.

A from-scratch Python reproduction of *"Bioformers: Embedding Transformers
for Ultra-Low Power sEMG-based Gesture Recognition"* (Burrello et al., DATE
2022), including every substrate the paper depends on:

* :mod:`repro.nn` — NumPy tensor/autograd deep-learning framework;
* :mod:`repro.data` — synthetic NinaPro DB6 surrogate (sEMG signal model,
  subjects, sessions, windows) plus preprocessing and augmentation;
* :mod:`repro.models` — the Bioformer architectures and the TEMPONet
  baseline;
* :mod:`repro.baselines` — classical-ML baselines (hand-crafted sEMG
  features + LDA/SVM/RF/kNN) from the paper's related-work comparison;
* :mod:`repro.training` — the standard and inter-subject pre-training
  protocols;
* :mod:`repro.quant` — int8 PTQ/QAT and I-BERT integer kernels;
* :mod:`repro.deploy` — GAP8 deployment toolchain (graph tracing, int8
  lowering, integer-only execution, L1 tiling, memory planning, C codegen);
* :mod:`repro.hw` — GAP8 complexity/latency/energy/battery modelling;
* :mod:`repro.search` — architecture search over the Bioformer design space;
* :mod:`repro.serve` — streaming inference service (dynamic micro-batching,
  float/int8 backends, majority-vote smoothing);
* :mod:`repro.experiments` — one driver per paper figure/table;
* :mod:`repro.eval` — streaming accuracy & robustness evaluation harness
  (labelled synthetic recordings, corruption scenarios, stream grading,
  accuracy-vs-deadline curves).

See README.md for a quickstart and DESIGN.md for the substitution notes.
"""

from . import (
    analysis,
    baselines,
    data,
    deploy,
    eval,
    experiments,
    hw,
    models,
    nn,
    quant,
    search,
    serve,
    training,
    utils,
)

__version__ = "1.0.0"

__all__ = [
    "nn",
    "data",
    "models",
    "baselines",
    "training",
    "quant",
    "hw",
    "deploy",
    "search",
    "serve",
    "analysis",
    "experiments",
    "eval",
    "utils",
    "__version__",
]
