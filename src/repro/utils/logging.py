"""Tiny logging facade.

The experiment drivers print progress through this module so that tests can
silence it and the benchmark harness can keep the console output identical
to the tables in EXPERIMENTS.md.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger"]

_CONFIGURED = False


def _configure() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    handler = logging.StreamHandler(sys.stdout)
    handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
    root = logging.getLogger("repro")
    root.addHandler(handler)
    root.setLevel(logging.INFO)
    root.propagate = False
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger in the ``repro`` hierarchy."""
    _configure()
    return logging.getLogger(f"repro.{name}")
