"""Deterministic random-number management.

Every stochastic component of the reproduction (dataset synthesis, weight
initialisation, dropout, data shuffling) draws from a
:class:`numpy.random.Generator` derived from a named seed, so that

* two runs with the same configuration produce identical numbers, and
* changing one component's stream (e.g. the dataset) does not silently
  reshuffle another's (e.g. the model initialisation).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["SeedSequence", "derive_rng", "set_global_seed", "global_rng"]

_GLOBAL_SEED = 0x5EED


def set_global_seed(seed: int) -> None:
    """Set the process-wide base seed used by :func:`global_rng`."""
    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)


def global_rng() -> np.random.Generator:
    """Return a generator seeded from the process-wide base seed."""
    return np.random.default_rng(_GLOBAL_SEED)


def derive_rng(*keys, seed: Optional[int] = None) -> np.random.Generator:
    """Derive an independent generator from a tuple of hashable ``keys``.

    The same ``(seed, *keys)`` combination always produces the same stream;
    different key tuples produce statistically independent streams.

    Example
    -------
    >>> rng = derive_rng("dataset", "subject", 3, seed=42)
    """
    base = _GLOBAL_SEED if seed is None else int(seed)
    material = [base]
    for key in keys:
        if isinstance(key, str):
            material.extend(key.encode("utf-8"))
        else:
            material.append(int(key) & 0xFFFFFFFF)
    return np.random.default_rng(np.random.SeedSequence(material))


class SeedSequence:
    """Convenience wrapper handing out named, reproducible sub-generators."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def rng(self, *keys) -> np.random.Generator:
        """Return the generator associated with ``keys``."""
        return derive_rng(*keys, seed=self.seed)

    def spawn(self, *keys) -> "SeedSequence":
        """Return a child :class:`SeedSequence` for a named sub-component."""
        child_seed = int(self.rng(*keys).integers(0, 2**31 - 1))
        return SeedSequence(child_seed)
