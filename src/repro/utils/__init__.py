"""Shared utilities: seeding, simple configuration containers and logging."""

from .rng import SeedSequence, derive_rng, global_rng, set_global_seed
from .logging import get_logger
from .tables import format_table

__all__ = [
    "SeedSequence",
    "derive_rng",
    "global_rng",
    "set_global_seed",
    "get_logger",
    "format_table",
]
