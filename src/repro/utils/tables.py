"""Plain-text table rendering for experiment reports.

The benchmark harness regenerates the paper's tables and figure series as
text; this module renders them with aligned columns so the console output
can be pasted directly into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)
