"""Candidate evaluation: accuracy, complexity and deployment objectives.

Hardware-aware architecture search needs two kinds of measurements per
candidate:

* **cost** — parameters, MACs, estimated GAP8 latency/energy and memory,
  all available analytically (milliseconds per candidate) through
  :mod:`repro.hw`;
* **quality** — validation accuracy after a (short) training run on the
  target subject's data, by far the expensive part.

:class:`CandidateEvaluation` bundles both; :class:`ComplexityEvaluator`
computes the cost half, :class:`TrainedAccuracyEvaluator` the quality half
(with a configurable epoch budget so the search harness stays tractable on
the NumPy substrate), and :func:`evaluate_candidate` combines them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

import numpy as np

from ..data.dataset import ArrayDataset
from ..hw.gap8 import GAP8Config, GAP8Model
from ..hw.profiler import profile_bioformer
from ..models.bioformer import Bioformer, BioformerConfig
from ..nn import Adam
from ..training.trainer import Trainer, TrainingConfig, evaluate
from .space import candidate_name

__all__ = [
    "CandidateEvaluation",
    "ComplexityEvaluator",
    "TrainedAccuracyEvaluator",
    "evaluate_candidate",
]


@dataclass
class CandidateEvaluation:
    """Everything the search strategies need to know about one candidate."""

    config: BioformerConfig
    accuracy: float
    params: int
    macs: int
    latency_ms: float
    energy_mj: float
    memory_kb: float
    train_accuracy: Optional[float] = None

    @property
    def name(self) -> str:
        """Short architecture identifier."""
        return candidate_name(self.config)

    @property
    def mmacs(self) -> float:
        """MACs in millions."""
        return self.macs / 1e6

    def meets(self, constraints: Dict[str, float]) -> bool:
        """Whether the candidate satisfies upper-bound deployment constraints.

        Supported keys: ``max_params``, ``max_macs``, ``max_latency_ms``,
        ``max_energy_mj``, ``max_memory_kb``.
        """
        checks = {
            "max_params": self.params,
            "max_macs": self.macs,
            "max_latency_ms": self.latency_ms,
            "max_energy_mj": self.energy_mj,
            "max_memory_kb": self.memory_kb,
        }
        for key, value in constraints.items():
            if key not in checks:
                raise KeyError(f"unknown constraint '{key}'")
            if checks[key] > value:
                return False
        return True


class ComplexityEvaluator:
    """Analytical cost model for candidates (no training involved)."""

    def __init__(self, gap8: Optional[GAP8Config] = None, bits_per_weight: int = 8) -> None:
        self.gap8 = gap8 if gap8 is not None else GAP8Config()
        self.bits_per_weight = bits_per_weight
        self._target = GAP8Model(self.gap8)

    def __call__(self, config: BioformerConfig) -> Dict[str, float]:
        profile = profile_bioformer(config)
        latency = self._target.latency(profile)
        return {
            "params": profile.total_params,
            "macs": profile.total_macs,
            "latency_ms": latency.latency_ms,
            "energy_mj": latency.energy_mj,
            "memory_kb": profile.memory_kilobytes(self.bits_per_weight),
        }


class TrainedAccuracyEvaluator:
    """Short-budget training evaluation of a candidate.

    Parameters
    ----------
    train, validation:
        Subject-specific training and held-out window datasets.
    epochs, batch_size, learning_rate:
        The (reduced) training budget per candidate.
    seed:
        Seed for weight init / shuffling, so the search is reproducible.
    """

    def __init__(
        self,
        train: ArrayDataset,
        validation: ArrayDataset,
        epochs: int = 5,
        batch_size: int = 64,
        learning_rate: float = 1e-3,
        seed: int = 0,
    ) -> None:
        if len(train) == 0 or len(validation) == 0:
            raise ValueError("training and validation datasets must be non-empty")
        self.train = train
        self.validation = validation
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed

    def __call__(self, config: BioformerConfig) -> Dict[str, float]:
        config = replace(config, seed=self.seed)
        model = Bioformer(config)
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=self.learning_rate),
            config=TrainingConfig(epochs=self.epochs, batch_size=self.batch_size),
            rng=np.random.default_rng(self.seed),
        )
        history = trainer.fit(self.train)
        report = evaluate(model, self.validation, num_classes=config.num_classes)
        return {
            "accuracy": report.accuracy,
            "train_accuracy": history.final_train_accuracy,
        }


def evaluate_candidate(
    config: BioformerConfig,
    accuracy_evaluator: Callable[[BioformerConfig], Dict[str, float]],
    complexity_evaluator: Optional[ComplexityEvaluator] = None,
) -> CandidateEvaluation:
    """Evaluate one candidate with the given quality and cost evaluators."""
    complexity_evaluator = (
        complexity_evaluator if complexity_evaluator is not None else ComplexityEvaluator()
    )
    cost = complexity_evaluator(config)
    quality = accuracy_evaluator(config)
    return CandidateEvaluation(
        config=config,
        accuracy=float(quality["accuracy"]),
        train_accuracy=quality.get("train_accuracy"),
        params=int(cost["params"]),
        macs=int(cost["macs"]),
        latency_ms=float(cost["latency_ms"]),
        energy_mj=float(cost["energy_mj"]),
        memory_kb=float(cost["memory_kb"]),
    )
