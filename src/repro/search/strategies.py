"""Search strategies: exhaustive grid, random search and evolutionary search.

The paper's own architecture selection is an exhaustive grid over depth,
heads and filter size.  That grid is small enough to enumerate, but the
moment the space grows (embedding width, FFN width, per-block heads, ...)
exhaustive search stops being an option — which is why hardware-aware NAS
is the standard tool for TinyML model design (and explicitly cited by the
paper as the way such models are obtained).  This module implements the
three standard strategies over the :class:`~repro.search.space.SearchSpace`:

* :class:`GridSearch` — evaluate every candidate (the paper's approach);
* :class:`RandomSearch` — uniform sampling under an evaluation budget;
* :class:`EvolutionarySearch` — regularised evolution (tournament parent
  selection + mutation) with constraint handling.

All strategies share the :class:`SearchResult` output: the full evaluation
history, the accuracy-vs-MACs Pareto frontier and the best feasible
candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..analysis.pareto import ParetoPoint, pareto_frontier
from ..models.bioformer import BioformerConfig
from ..utils.tables import format_table
from .objectives import CandidateEvaluation, ComplexityEvaluator, evaluate_candidate
from .space import SearchSpace, candidate_name

__all__ = ["SearchResult", "GridSearch", "RandomSearch", "EvolutionarySearch"]

AccuracyEvaluator = Callable[[BioformerConfig], Dict[str, float]]


@dataclass
class SearchResult:
    """Outcome of one architecture-search run."""

    strategy: str
    history: List[CandidateEvaluation] = field(default_factory=list)
    constraints: Dict[str, float] = field(default_factory=dict)

    @property
    def num_evaluations(self) -> int:
        """Number of candidates that were trained and scored."""
        return len(self.history)

    def feasible(self) -> List[CandidateEvaluation]:
        """Candidates satisfying the deployment constraints."""
        return [candidate for candidate in self.history if candidate.meets(self.constraints)]

    @property
    def best(self) -> CandidateEvaluation:
        """Most accurate feasible candidate (falls back to the whole history)."""
        pool = self.feasible() or self.history
        if not pool:
            raise RuntimeError("the search evaluated no candidates")
        return max(pool, key=lambda candidate: candidate.accuracy)

    def pareto(self, cost: str = "macs") -> List[ParetoPoint]:
        """Accuracy-vs-``cost`` Pareto frontier over the evaluated candidates."""
        attribute = {
            "macs": lambda c: c.macs,
            "params": lambda c: c.params,
            "latency_ms": lambda c: c.latency_ms,
            "energy_mj": lambda c: c.energy_mj,
            "memory_kb": lambda c: c.memory_kb,
        }[cost]
        points = [
            ParetoPoint(label=candidate.name, cost=float(attribute(candidate)), accuracy=candidate.accuracy)
            for candidate in self.history
        ]
        return pareto_frontier(points)

    def render(self, top: int = 10) -> str:
        """Plain-text table of the best candidates found."""
        ranked = sorted(self.history, key=lambda candidate: candidate.accuracy, reverse=True)[:top]
        rows = [
            (
                candidate.name,
                f"{100 * candidate.accuracy:.1f}%",
                f"{candidate.mmacs:.2f}",
                f"{candidate.params / 1e3:.0f}k",
                f"{candidate.latency_ms:.2f}",
                "yes" if candidate.meets(self.constraints) else "no",
            )
            for candidate in ranked
        ]
        return format_table(
            ("candidate", "accuracy", "MMAC", "params", "latency ms", "feasible"),
            rows,
            title=f"{self.strategy} ({self.num_evaluations} evaluations)",
        )


class _BaseStrategy:
    """Shared bookkeeping of the concrete strategies."""

    name = "search"

    def __init__(
        self,
        space: SearchSpace,
        accuracy_evaluator: AccuracyEvaluator,
        complexity_evaluator: Optional[ComplexityEvaluator] = None,
        constraints: Optional[Dict[str, float]] = None,
        seed: int = 0,
    ) -> None:
        space.validate()
        self.space = space
        self.accuracy_evaluator = accuracy_evaluator
        self.complexity_evaluator = (
            complexity_evaluator if complexity_evaluator is not None else ComplexityEvaluator()
        )
        self.constraints = dict(constraints or {})
        self._rng = np.random.default_rng(seed)
        self._cache: Dict[str, CandidateEvaluation] = {}

    def _evaluate(self, config: BioformerConfig) -> CandidateEvaluation:
        key = candidate_name(config)
        if key not in self._cache:
            self._cache[key] = evaluate_candidate(
                config, self.accuracy_evaluator, self.complexity_evaluator
            )
        return self._cache[key]

    def _result(self, history: Sequence[CandidateEvaluation]) -> SearchResult:
        return SearchResult(strategy=self.name, history=list(history), constraints=self.constraints)


class GridSearch(_BaseStrategy):
    """Exhaustive evaluation of the whole space (the paper's Sec. III-A search)."""

    name = "grid search"

    def run(self) -> SearchResult:
        """Evaluate every candidate in the space."""
        history = [self._evaluate(config) for config in self.space.enumerate()]
        return self._result(history)


class RandomSearch(_BaseStrategy):
    """Uniform random sampling under a fixed evaluation budget."""

    name = "random search"

    def run(self, budget: int = 16) -> SearchResult:
        """Evaluate up to ``budget`` distinct random candidates."""
        if budget < 1:
            raise ValueError("budget must be at least 1")
        history: List[CandidateEvaluation] = []
        seen = set()
        attempts = 0
        while len(history) < budget and attempts < 50 * budget:
            attempts += 1
            config = self.space.sample(self._rng)
            key = candidate_name(config)
            if key in seen:
                continue
            seen.add(key)
            history.append(self._evaluate(config))
            if len(seen) >= self.space.size:
                break
        return self._result(history)


class EvolutionarySearch(_BaseStrategy):
    """Regularised evolution: tournament selection + single-axis mutation.

    Infeasible candidates (violating the deployment constraints) are never
    selected as parents but stay in the history, so the Pareto analysis sees
    them.
    """

    name = "evolutionary search"

    def __init__(
        self,
        space: SearchSpace,
        accuracy_evaluator: AccuracyEvaluator,
        complexity_evaluator: Optional[ComplexityEvaluator] = None,
        constraints: Optional[Dict[str, float]] = None,
        population_size: int = 8,
        tournament_size: int = 3,
        crossover_probability: float = 0.3,
        seed: int = 0,
    ) -> None:
        super().__init__(space, accuracy_evaluator, complexity_evaluator, constraints, seed)
        if population_size < 2:
            raise ValueError("population_size must be at least 2")
        if tournament_size < 1:
            raise ValueError("tournament_size must be at least 1")
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.crossover_probability = crossover_probability

    def _fitness(self, candidate: CandidateEvaluation) -> float:
        # Constraint violations are pushed below every feasible candidate.
        penalty = 0.0 if candidate.meets(self.constraints) else 1.0
        return candidate.accuracy - penalty

    def _tournament(self, population: List[CandidateEvaluation]) -> CandidateEvaluation:
        size = min(self.tournament_size, len(population))
        contenders_idx = self._rng.choice(len(population), size=size, replace=False)
        contenders = [population[int(index)] for index in contenders_idx]
        return max(contenders, key=self._fitness)

    def run(self, generations: int = 4) -> SearchResult:
        """Run the evolutionary loop and return every evaluated candidate."""
        if generations < 1:
            raise ValueError("generations must be at least 1")
        population = [self._evaluate(self.space.sample(self._rng)) for _ in range(self.population_size)]
        history = list(population)
        for _ in range(generations):
            offspring: List[CandidateEvaluation] = []
            for _ in range(self.population_size):
                parent = self._tournament(population)
                if len(population) >= 2 and self._rng.random() < self.crossover_probability:
                    other = self._tournament(population)
                    child_config = self.space.crossover(parent.config, other.config, self._rng)
                else:
                    child_config = parent.config
                child_config = self.space.mutate(child_config, self._rng)
                offspring.append(self._evaluate(child_config))
            history.extend(offspring)
            # Regularised evolution: survivors are the fittest of the union.
            population = sorted(population + offspring, key=self._fitness, reverse=True)[
                : self.population_size
            ]
        return self._result(history)
