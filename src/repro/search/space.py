"""The Bioformer architecture search space.

The paper finds its two reference architectures (Bio1: 8 heads / depth 1,
Bio2: 2 heads / depth 2) with a grid search over depth x heads and a sweep
of the front-end filter dimension (Sec. III-A and Fig. 4).  This module
formalises that design space so the search strategies in
:mod:`repro.search.strategies` can sample, perturb and enumerate it:

* :class:`SearchSpace` — the axes (depth, heads, patch size, embedding and
  FFN width) with the paper's values as defaults;
* :meth:`SearchSpace.sample` / :meth:`SearchSpace.mutate` /
  :meth:`SearchSpace.enumerate` — the three access patterns used by random,
  evolutionary and grid search respectively.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..models.bioformer import BioformerConfig

__all__ = ["SearchSpace", "candidate_name"]


def candidate_name(config: BioformerConfig) -> str:
    """Stable short identifier of one candidate architecture."""
    return (
        f"h{config.num_heads}-d{config.depth}-f{config.patch_size}"
        f"-e{config.embed_dim}-m{config.hidden_dim}"
    )


@dataclass
class SearchSpace:
    """Discrete Bioformer design space (the paper's axes, extensible).

    Every axis lists the admissible values; the fixed input geometry
    (channels, window length, classes) is shared by all candidates.
    """

    depths: Tuple[int, ...] = (1, 2, 3, 4)
    heads: Tuple[int, ...] = (1, 2, 4, 8)
    patch_sizes: Tuple[int, ...] = (1, 5, 10, 20, 30)
    embed_dims: Tuple[int, ...] = (64,)
    hidden_dims: Tuple[int, ...] = (128,)
    num_channels: int = 14
    window_samples: int = 300
    num_classes: int = 8
    seed: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` for empty axes or impossible patch sizes."""
        for name, axis in (
            ("depths", self.depths),
            ("heads", self.heads),
            ("patch_sizes", self.patch_sizes),
            ("embed_dims", self.embed_dims),
            ("hidden_dims", self.hidden_dims),
        ):
            if not axis:
                raise ValueError(f"search axis '{name}' is empty")
        if any(patch > self.window_samples for patch in self.patch_sizes):
            raise ValueError("a patch size exceeds the window length")

    # ------------------------------------------------------------------ #
    # Candidate construction
    # ------------------------------------------------------------------ #
    def make_config(
        self,
        depth: int,
        num_heads: int,
        patch_size: int,
        embed_dim: Optional[int] = None,
        hidden_dim: Optional[int] = None,
    ) -> BioformerConfig:
        """Build the :class:`BioformerConfig` for one point of the space."""
        config = BioformerConfig(
            num_channels=self.num_channels,
            window_samples=self.window_samples,
            num_classes=self.num_classes,
            patch_size=patch_size,
            depth=depth,
            num_heads=num_heads,
            embed_dim=embed_dim if embed_dim is not None else self.embed_dims[0],
            hidden_dim=hidden_dim if hidden_dim is not None else self.hidden_dims[0],
            seed=self.seed,
        )
        config.validate()
        return config

    @property
    def size(self) -> int:
        """Number of distinct candidates in the space."""
        return (
            len(self.depths)
            * len(self.heads)
            * len(self.patch_sizes)
            * len(self.embed_dims)
            * len(self.hidden_dims)
        )

    def enumerate(self) -> Iterator[BioformerConfig]:
        """Yield every candidate (grid-search order)."""
        self.validate()
        for depth, heads, patch, embed, hidden in product(
            self.depths, self.heads, self.patch_sizes, self.embed_dims, self.hidden_dims
        ):
            yield self.make_config(depth, heads, patch, embed, hidden)

    def sample(self, rng: np.random.Generator) -> BioformerConfig:
        """Draw one candidate uniformly at random."""
        self.validate()
        return self.make_config(
            depth=int(rng.choice(self.depths)),
            num_heads=int(rng.choice(self.heads)),
            patch_size=int(rng.choice(self.patch_sizes)),
            embed_dim=int(rng.choice(self.embed_dims)),
            hidden_dim=int(rng.choice(self.hidden_dims)),
        )

    def mutate(self, config: BioformerConfig, rng: np.random.Generator) -> BioformerConfig:
        """Perturb one axis of ``config`` to an adjacent admissible value."""
        self.validate()
        axes: Dict[str, Tuple[Sequence[int], int]] = {
            "depth": (self.depths, config.depth),
            "num_heads": (self.heads, config.num_heads),
            "patch_size": (self.patch_sizes, config.patch_size),
            "embed_dim": (self.embed_dims, config.embed_dim),
            "hidden_dim": (self.hidden_dims, config.hidden_dim),
        }
        mutable = [name for name, (axis, _) in axes.items() if len(axis) > 1]
        if not mutable:
            return replace(config)
        axis_name = str(rng.choice(mutable))
        axis, current = axes[axis_name]
        axis = list(axis)
        position = axis.index(current) if current in axis else 0
        step = int(rng.choice((-1, 1)))
        new_position = int(np.clip(position + step, 0, len(axis) - 1))
        if new_position == position:
            new_position = int(np.clip(position - step, 0, len(axis) - 1))
        mutated = replace(config, **{axis_name: axis[new_position]})
        mutated.validate()
        return mutated

    def crossover(
        self, first: BioformerConfig, second: BioformerConfig, rng: np.random.Generator
    ) -> BioformerConfig:
        """Uniform crossover of two parents (per-axis coin flip)."""
        choose = lambda a, b: a if rng.random() < 0.5 else b  # noqa: E731
        child = self.make_config(
            depth=choose(first.depth, second.depth),
            num_heads=choose(first.num_heads, second.num_heads),
            patch_size=choose(first.patch_size, second.patch_size),
            embed_dim=choose(first.embed_dim, second.embed_dim),
            hidden_dim=choose(first.hidden_dim, second.hidden_dim),
        )
        return child

    def contains(self, config: BioformerConfig) -> bool:
        """Whether ``config`` is a point of this space."""
        return (
            config.depth in self.depths
            and config.num_heads in self.heads
            and config.patch_size in self.patch_sizes
            and config.embed_dim in self.embed_dims
            and config.hidden_dim in self.hidden_dims
            and config.num_channels == self.num_channels
            and config.window_samples == self.window_samples
            and config.num_classes == self.num_classes
        )

    @classmethod
    def paper(cls, **overrides) -> "SearchSpace":
        """The exact grid the paper searched (depth x heads x filter)."""
        return cls(**overrides)

    @classmethod
    def reduced(cls, num_channels: int, window_samples: int, num_classes: int = 8) -> "SearchSpace":
        """A smaller space matched to the reduced-scale synthetic datasets."""
        patch_sizes = tuple(
            patch for patch in (1, 5, 10, 20) if patch <= max(window_samples // 4, 1)
        )
        return cls(
            depths=(1, 2),
            heads=(2, 4, 8),
            patch_sizes=patch_sizes or (1,),
            num_channels=num_channels,
            window_samples=window_samples,
            num_classes=num_classes,
        )
