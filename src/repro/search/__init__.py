"""``repro.search`` — hardware-aware architecture search for Bioformers.

The two reference Bioformers are the outcome of the paper's grid search over
depth, heads and front-end filter size under a complexity budget; the same
selection problem, at larger scale, is what TinyML practitioners solve with
hardware-aware NAS.  This package provides:

* :mod:`repro.search.space` — the discrete Bioformer design space
  (sample / mutate / crossover / enumerate);
* :mod:`repro.search.objectives` — per-candidate accuracy (short training
  runs) and analytical GAP8 cost objectives, plus deployment constraints;
* :mod:`repro.search.strategies` — grid, random and evolutionary search
  returning the evaluation history, the best feasible candidate and the
  accuracy-vs-complexity Pareto frontier.
"""

from .objectives import (
    CandidateEvaluation,
    ComplexityEvaluator,
    TrainedAccuracyEvaluator,
    evaluate_candidate,
)
from .space import SearchSpace, candidate_name
from .strategies import EvolutionarySearch, GridSearch, RandomSearch, SearchResult

__all__ = [
    "SearchSpace",
    "candidate_name",
    "CandidateEvaluation",
    "ComplexityEvaluator",
    "TrainedAccuracyEvaluator",
    "evaluate_candidate",
    "GridSearch",
    "RandomSearch",
    "EvolutionarySearch",
    "SearchResult",
]
