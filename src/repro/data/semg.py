"""Synthetic surface-EMG signal model.

The real evaluation substrate of the paper is the NinaPro DB6 recording
campaign (10 subjects, 10 sessions, 14 Delsys Trigno electrodes at 2 kHz).
That data cannot be downloaded in this offline environment, so this module
implements a physiologically-motivated generator that preserves the
statistical structure the paper's experiments rely on:

* **Gestures as muscle-synergy activations.**  Each gesture is a vector of
  activation levels over a small set of latent forearm muscles.  The seven
  grasps share a common "grasp" synergy and differ only by a perturbation,
  which makes them mutually confusable (the paper reports ~65% accuracy, far
  from ceiling); the rest class has near-zero activation.
* **Subjects as electrode mixing matrices.**  Each subject maps muscle
  activity to the 14 electrodes through a mixing matrix built from a
  population template plus a subject-specific deviation.  The shared
  template is what makes *inter-subject pre-training* useful; the deviation
  is what keeps the task subject-specific.
* **Sessions as electrode-shift / impedance drift.**  Every re-donning of
  the sensor array perturbs the mixing matrix and the noise floor, with the
  perturbation growing with the distance from the training sessions.  This
  reproduces the degradation over testing sessions 6-10 that Fig. 2
  measures.
* **Amplitude-modulated interference-pattern EMG.**  The raw signal is
  band-limited Gaussian noise (the classical interference-pattern model of
  a full contraction) whose envelope follows the gesture's activation
  profile, plus measurement noise, baseline wander and power-line hum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "SemgConfig",
    "GestureLibrary",
    "SubjectModel",
    "SessionConditions",
    "SemgSynthesizer",
]


@dataclass
class SemgConfig:
    """Physical and statistical parameters of the synthetic sEMG generator.

    The defaults mimic the NinaPro DB6 acquisition setup; experiment presets
    reduce ``sampling_rate_hz`` and durations to keep NumPy training fast
    while preserving the window geometry expected by the models.
    """

    num_channels: int = 14
    num_muscles: int = 8
    num_gestures: int = 8
    sampling_rate_hz: float = 2000.0
    #: EMG content band (Hz); the interference pattern is band-passed here.
    emg_band_hz: Tuple[float, float] = (20.0, 450.0)
    #: Standard deviation of additive broadband measurement noise, relative
    #: to the unit-amplitude contraction envelope.
    measurement_noise: float = 0.18
    #: Amplitude of the 50 Hz power-line interference.
    powerline_amplitude: float = 0.03
    #: Amplitude of slow baseline wander (motion artefacts).
    baseline_wander: float = 0.05
    #: How far apart the grasp gestures are in synergy space.  Smaller values
    #: make gestures more confusable and lower the attainable accuracy.
    gesture_separation: float = 0.38
    #: Subject-specific deviation from the population mixing template.
    subject_deviation: float = 0.35
    #: Per-repetition variability of the contraction effort.
    effort_variability: float = 0.18
    #: Electrode-shift drift per session away from the reference donning.
    session_drift: float = 0.04
    #: Extra noise added per session away from the reference donning.
    session_noise_growth: float = 0.012

    def validate(self) -> None:
        """Raise ``ValueError`` for physically meaningless settings."""
        if self.num_channels <= 0 or self.num_muscles <= 0 or self.num_gestures <= 1:
            raise ValueError("channels, muscles and gestures must be positive (gestures > 1)")
        if self.sampling_rate_hz <= 0:
            raise ValueError("sampling_rate_hz must be positive")
        low, high = self.emg_band_hz
        if not 0 < low < high:
            raise ValueError("emg_band_hz must satisfy 0 < low < high")
        if high >= self.sampling_rate_hz / 2:
            # Clamp rather than fail: reduced-rate presets reuse the default band.
            self.emg_band_hz = (min(low, self.sampling_rate_hz / 8), self.sampling_rate_hz / 2 * 0.9)


class GestureLibrary:
    """Muscle-synergy activation prototypes for every gesture class.

    Gesture 0 is the rest position (near-zero activation).  Gestures 1..G-1
    are grasps built as ``base_grasp + separation * direction_g`` where the
    directions are (approximately) orthogonal unit vectors, so every pair of
    grasps is equally (and only mildly) separated — matching the paper's
    observation that "similar gestures result in similar muscle
    contractions".
    """

    def __init__(self, config: SemgConfig, rng: np.random.Generator) -> None:
        self.config = config
        muscles = config.num_muscles
        gestures = config.num_gestures
        base_grasp = 0.55 + 0.25 * rng.random(muscles)
        directions = rng.standard_normal((gestures - 1, muscles))
        # Orthonormalise as many directions as the muscle space allows
        # (Gram-Schmidt via QR) so that no two grasps are accidentally
        # near-identical; any surplus gestures keep normalised random
        # directions, which simply makes them more confusable.
        orthonormal_count = min(gestures - 1, muscles)
        q, _ = np.linalg.qr(directions[:orthonormal_count].T)
        directions[:orthonormal_count] = q.T[:orthonormal_count]
        norms = np.linalg.norm(directions[orthonormal_count:], axis=1, keepdims=True)
        if norms.size:
            directions[orthonormal_count:] /= np.clip(norms, 1e-9, None)
        prototypes = np.zeros((gestures, muscles))
        prototypes[0] = 0.04 * rng.random(muscles)  # rest: residual tone only
        for gesture in range(1, gestures):
            prototypes[gesture] = np.clip(
                base_grasp + config.gesture_separation * directions[gesture - 1], 0.02, None
            )
        self.prototypes = prototypes
        #: Per-gesture tremor frequency (Hz): grasps differ slightly in the
        #: low-frequency modulation of the contraction, a secondary cue.
        self.tremor_hz = 4.0 + 1.5 * rng.random(gestures)

    def activation(self, gesture: int) -> np.ndarray:
        """Return the muscle-activation prototype of ``gesture``."""
        return self.prototypes[gesture]


class SubjectModel:
    """Subject-specific mapping from muscle space to electrode space."""

    def __init__(
        self,
        subject_id: int,
        config: SemgConfig,
        template_mixing: np.ndarray,
        gesture_library: GestureLibrary,
        rng: np.random.Generator,
    ) -> None:
        self.subject_id = subject_id
        self.config = config
        self.gestures = gesture_library
        deviation = rng.standard_normal(template_mixing.shape)
        deviation /= np.linalg.norm(deviation) / np.linalg.norm(template_mixing)
        self.mixing = template_mixing + config.subject_deviation * deviation
        self.mixing = np.clip(self.mixing, 0.0, None)
        #: Subject-specific gesture deviation: how an individual performs the
        #: grasp differs slightly from the population prototype.
        self.gesture_offsets = 0.08 * rng.standard_normal(
            (config.num_gestures, config.num_muscles)
        )
        #: Subject signal-to-noise quality in (0.55, 1.0]; low-quality
        #: subjects are the ones that benefit most from pre-training (Fig. 3).
        self.signal_quality = 0.55 + 0.45 * rng.random()

    def muscle_activation(self, gesture: int) -> np.ndarray:
        """Activation prototype of ``gesture`` as performed by this subject."""
        activation = self.gestures.activation(gesture) + self.gesture_offsets[gesture]
        return np.clip(activation, 0.0, None)


@dataclass
class SessionConditions:
    """Per-session acquisition conditions derived from the donning drift."""

    session_id: int
    mixing_perturbation: np.ndarray
    channel_gain: np.ndarray
    extra_noise: float

    def apply(self, mixing: np.ndarray) -> np.ndarray:
        """Return the session-effective mixing matrix."""
        return self.channel_gain[:, None] * (mixing + self.mixing_perturbation)


class SemgSynthesizer:
    """Generates raw multi-channel sEMG recordings for one subject/session."""

    def __init__(self, config: SemgConfig, rng: np.random.Generator) -> None:
        config.validate()
        self.config = config
        self._rng = rng
        self.gesture_library = GestureLibrary(config, rng)
        #: Population mixing template shared by all subjects (each latent
        #: muscle projects mostly onto a contiguous group of electrodes).
        self.template_mixing = self._build_template_mixing(rng)

    def _build_template_mixing(self, rng: np.random.Generator) -> np.ndarray:
        channels = self.config.num_channels
        muscles = self.config.num_muscles
        centers = np.linspace(0, channels - 1, muscles)
        positions = np.arange(channels)
        mixing = np.zeros((channels, muscles))
        for muscle, center in enumerate(centers):
            spread = channels / (1.5 * muscles)
            mixing[:, muscle] = np.exp(-0.5 * ((positions - center) / spread) ** 2)
        mixing += 0.05 * rng.random((channels, muscles))
        return mixing

    # ------------------------------------------------------------------ #
    # Model-instantiation helpers
    # ------------------------------------------------------------------ #
    def subject(self, subject_id: int, rng: np.random.Generator) -> SubjectModel:
        """Instantiate the model of ``subject_id`` from its own random stream."""
        return SubjectModel(subject_id, self.config, self.template_mixing, self.gesture_library, rng)

    def session(self, session_id: int, reference_session: int, rng: np.random.Generator) -> SessionConditions:
        """Instantiate acquisition conditions for ``session_id``.

        The drift magnitude grows with the distance from
        ``reference_session`` (the last training session), which is what
        produces the monotonic accuracy degradation of Fig. 2.
        """
        config = self.config
        distance = abs(session_id - reference_session)
        drift = config.session_drift * (1.0 + 0.6 * distance)
        perturbation = drift * rng.standard_normal((config.num_channels, config.num_muscles))
        channel_gain = 1.0 + drift * rng.standard_normal(config.num_channels)
        extra_noise = config.session_noise_growth * distance
        return SessionConditions(
            session_id=session_id,
            mixing_perturbation=perturbation,
            channel_gain=np.clip(channel_gain, 0.3, None),
            extra_noise=extra_noise,
        )

    # ------------------------------------------------------------------ #
    # Signal synthesis
    # ------------------------------------------------------------------ #
    def _interference_pattern(self, samples: int, rng: np.random.Generator) -> np.ndarray:
        """Band-limited white noise: the carrier of a full contraction."""
        low, high = self.config.emg_band_hz
        raw = rng.standard_normal(samples)
        spectrum = np.fft.rfft(raw)
        frequencies = np.fft.rfftfreq(samples, d=1.0 / self.config.sampling_rate_hz)
        band = (frequencies >= low) & (frequencies <= high)
        spectrum[~band] = 0.0
        shaped = np.fft.irfft(spectrum, n=samples)
        std = shaped.std()
        return shaped / std if std > 0 else shaped

    def _activation_envelope(
        self,
        gesture: int,
        subject: SubjectModel,
        samples: int,
        effort: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-muscle activation envelope over a repetition, shape ``(M, T)``."""
        config = self.config
        time = np.arange(samples) / config.sampling_rate_hz
        activation = subject.muscle_activation(gesture)
        # Smooth ramp-up / ramp-down of the contraction over the repetition.
        ramp = np.minimum(1.0, np.minimum(time, time[::-1] if samples > 1 else time) * 4.0)
        tremor = 1.0 + 0.22 * np.sin(2 * np.pi * self.gesture_library.tremor_hz[gesture] * time)
        slow_drift = 1.0 + 0.05 * np.sin(2 * np.pi * 0.4 * time + rng.uniform(0, 2 * np.pi))
        envelope = activation[:, None] * (effort * ramp * tremor * slow_drift)[None, :]
        return np.clip(envelope, 0.0, None)

    def synthesize_repetition(
        self,
        subject: SubjectModel,
        session: SessionConditions,
        gesture: int,
        duration_s: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Synthesize one repetition of ``gesture``; returns ``(C, T)`` float32.

        Parameters
        ----------
        subject:
            Subject model (mixing matrix, per-subject gesture offsets).
        session:
            Session acquisition conditions (electrode shift, extra noise).
        gesture:
            Gesture class index in ``[0, num_gestures)``.
        duration_s:
            Length of the repetition in seconds.
        rng:
            Random stream for this specific repetition.
        """
        config = self.config
        samples = max(int(round(duration_s * config.sampling_rate_hz)), 1)
        effort = 1.0 + config.effort_variability * rng.standard_normal()
        effort = float(np.clip(effort, 0.4, 1.8))
        envelope = self._activation_envelope(gesture, subject, samples, effort, rng)

        mixing = session.apply(subject.mixing)  # (C, M)
        channels = config.num_channels
        signal = np.zeros((channels, samples))
        # Each muscle contributes an independent interference pattern whose
        # amplitude is the muscle's envelope, projected onto the electrodes.
        for muscle in range(config.num_muscles):
            carrier = self._interference_pattern(samples, rng)
            signal += mixing[:, muscle : muscle + 1] * (envelope[muscle] * carrier)[None, :]

        quality = subject.signal_quality
        noise_std = (config.measurement_noise + session.extra_noise) / quality
        signal += noise_std * rng.standard_normal((channels, samples))
        time = np.arange(samples) / config.sampling_rate_hz
        signal += config.powerline_amplitude * np.sin(
            2 * np.pi * 50.0 * time + rng.uniform(0, 2 * np.pi)
        )
        signal += config.baseline_wander * np.sin(
            2 * np.pi * 0.3 * time + rng.uniform(0, 2 * np.pi)
        )
        return signal.astype(np.float32)
