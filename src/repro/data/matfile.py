"""Loader for real NinaPro DB6 recordings stored as MATLAB ``.mat`` files.

The synthetic :class:`~repro.data.ninapro.NinaProDB6` surrogate is what the
offline benchmark harness trains on, but a user with access to the real
database (https://ninapro.hevs.ch, one ``.mat`` file per subject/session,
e.g. ``S1_D1_T1.mat``) should be able to drop it into the same pipeline.
This module parses those files with :func:`scipy.io.loadmat`, relabels the
DB6 grasp stimuli to the contiguous 8-class encoding used by the paper, and
segments the recordings with the same 150 ms / 15 ms sliding windows as the
synthetic dataset — yielding the familiar :class:`ArrayDataset` objects.

The NinaPro field conventions handled here:

* ``emg`` — ``(samples, 14)`` raw electrode data;
* ``restimulus`` (preferred) or ``stimulus`` — per-sample gesture id, with 0
  meaning rest;
* ``rerepetition`` / ``repetition`` — per-sample repetition counter.

Nothing in the test-suite depends on real files being present; the loader
is exercised against synthetic ``.mat`` files written with
:func:`scipy.io.savemat`.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import io as sp_io

from .dataset import ArrayDataset, normalize_windows
from .preprocessing import Preprocessor
from .windowing import sliding_windows

__all__ = ["MatRecording", "MatLoaderConfig", "load_mat_recording", "NinaProMatLoader"]

#: Default mapping from DB6 stimulus ids to the paper's 8 contiguous classes
#: (0 = rest, 1-7 = the seven grasps).
_DEFAULT_CLASS_MAP = {0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 5, 6: 6, 7: 7}

#: File name convention of the DB6 release: S<subject>_D<day>_T<time>.mat.
_FILENAME_PATTERN = re.compile(r"S(?P<subject>\d+)_D(?P<day>\d+)_T(?P<time>\d+)", re.IGNORECASE)


@dataclass
class MatRecording:
    """One parsed NinaPro recording (continuous, before windowing)."""

    emg: np.ndarray  # (channels, samples)
    stimulus: np.ndarray  # (samples,)
    repetition: np.ndarray  # (samples,)
    subject: Optional[int] = None
    session: Optional[int] = None
    source: str = ""

    @property
    def num_channels(self) -> int:
        return self.emg.shape[0]

    @property
    def num_samples(self) -> int:
        return self.emg.shape[1]

    @property
    def gestures_present(self) -> np.ndarray:
        """Sorted unique gesture ids occurring in the recording."""
        return np.unique(self.stimulus)


def _first_field(contents: Dict[str, np.ndarray], names: Sequence[str]) -> Optional[np.ndarray]:
    for name in names:
        if name in contents:
            return np.asarray(contents[name])
    return None


def parse_session_from_filename(path: str) -> Tuple[Optional[int], Optional[int]]:
    """Extract ``(subject, session)`` from a DB6-style file name.

    DB6 numbers sessions 1-10 as five days times two daily acquisitions
    (``D1_T1`` -> session 1, ``D1_T2`` -> session 2, ...).
    """
    match = _FILENAME_PATTERN.search(os.path.basename(path))
    if match is None:
        return None, None
    subject = int(match.group("subject"))
    session = (int(match.group("day")) - 1) * 2 + int(match.group("time"))
    return subject, session


def load_mat_recording(path: str, class_map: Optional[Dict[int, int]] = None) -> MatRecording:
    """Load one NinaPro ``.mat`` file into a :class:`MatRecording`.

    Raises
    ------
    FileNotFoundError
        When the path does not exist.
    KeyError
        When the file has no ``emg`` variable or no stimulus variable.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    contents = sp_io.loadmat(path)
    emg = _first_field(contents, ("emg", "EMG"))
    if emg is None:
        raise KeyError(f"{path} contains no 'emg' variable")
    stimulus = _first_field(contents, ("restimulus", "stimulus"))
    if stimulus is None:
        raise KeyError(f"{path} contains no 'restimulus'/'stimulus' variable")
    repetition = _first_field(contents, ("rerepetition", "repetition"))
    if repetition is None:
        repetition = np.zeros(stimulus.size, dtype=np.int64)

    emg = np.asarray(emg, dtype=np.float64)
    if emg.shape[0] > emg.shape[1]:
        # NinaPro stores (samples, channels); the pipeline wants (channels, samples).
        emg = emg.T
    stimulus = np.asarray(stimulus).reshape(-1).astype(np.int64)
    repetition = np.asarray(repetition).reshape(-1).astype(np.int64)
    length = min(emg.shape[1], stimulus.size, repetition.size)
    emg, stimulus, repetition = emg[:, :length], stimulus[:length], repetition[:length]

    mapping = class_map if class_map is not None else _DEFAULT_CLASS_MAP
    remapped = np.full_like(stimulus, -1)
    for raw, target in mapping.items():
        remapped[stimulus == raw] = target

    subject, session = parse_session_from_filename(path)
    return MatRecording(
        emg=emg,
        stimulus=remapped,
        repetition=repetition,
        subject=subject,
        session=session,
        source=path,
    )


@dataclass
class MatLoaderConfig:
    """Windowing / preprocessing settings for the real-recording loader."""

    sampling_rate_hz: float = 2000.0
    window_ms: float = 150.0
    slide_ms: float = 15.0
    #: Drop windows whose samples span more than one gesture label.
    require_homogeneous_labels: bool = True
    #: Discard samples whose stimulus is not covered by the class map.
    drop_unmapped: bool = True
    normalize: bool = True
    preprocessor: Optional[Preprocessor] = None
    class_map: Dict[int, int] = field(default_factory=lambda: dict(_DEFAULT_CLASS_MAP))

    @property
    def window_samples(self) -> int:
        return int(round(self.window_ms * 1e-3 * self.sampling_rate_hz))

    @property
    def slide_samples(self) -> int:
        return max(1, int(round(self.slide_ms * 1e-3 * self.sampling_rate_hz)))

    def validate(self) -> None:
        if self.sampling_rate_hz <= 0:
            raise ValueError("sampling_rate_hz must be positive")
        if self.window_samples < 1:
            raise ValueError("window_ms too short for the sampling rate")


class NinaProMatLoader:
    """Converts real NinaPro recordings into the repository's window datasets."""

    def __init__(self, config: Optional[MatLoaderConfig] = None) -> None:
        self.config = config if config is not None else MatLoaderConfig()
        self.config.validate()

    # ------------------------------------------------------------------ #
    # Recording -> windows
    # ------------------------------------------------------------------ #
    def windows_from_recording(self, recording: MatRecording) -> ArrayDataset:
        """Segment one recording into labelled windows."""
        config = self.config
        emg = recording.emg
        if config.preprocessor is not None:
            emg = config.preprocessor(emg)
        window, slide = config.window_samples, config.slide_samples
        windows = sliding_windows(emg, window, slide)
        if windows.shape[0] == 0:
            return ArrayDataset(
                np.empty((0, recording.num_channels, window)), np.empty(0, dtype=np.int64)
            )
        starts = np.arange(windows.shape[0]) * slide
        label_matrix = recording.stimulus[starts[:, None] + np.arange(window)[None, :]]
        majority = np.apply_along_axis(
            lambda row: np.bincount(row + 1, minlength=1).argmax() - 1, 1, label_matrix
        )
        keep = np.ones(windows.shape[0], dtype=bool)
        if config.require_homogeneous_labels:
            keep &= (label_matrix == label_matrix[:, :1]).all(axis=1)
        if config.drop_unmapped:
            keep &= majority >= 0
        windows, majority = windows[keep], majority[keep]
        if config.normalize and windows.shape[0]:
            windows = normalize_windows(windows)
        metadata = {
            "session": np.full(windows.shape[0], recording.session or 0, dtype=np.int64),
            "subject": np.full(windows.shape[0], recording.subject or 0, dtype=np.int64),
        }
        return ArrayDataset(windows, majority.astype(np.int64), metadata)

    def load_file(self, path: str) -> ArrayDataset:
        """Load and window one ``.mat`` file."""
        return self.windows_from_recording(load_mat_recording(path, self.config.class_map))

    # ------------------------------------------------------------------ #
    # Directory -> per-session datasets
    # ------------------------------------------------------------------ #
    def discover(self, directory: str, subject: Optional[int] = None) -> List[str]:
        """Find DB6-style ``.mat`` files under ``directory`` (optionally one subject)."""
        if not os.path.isdir(directory):
            raise FileNotFoundError(directory)
        paths = []
        for name in sorted(os.listdir(directory)):
            if not name.lower().endswith(".mat"):
                continue
            file_subject, _ = parse_session_from_filename(name)
            if subject is not None and file_subject != subject:
                continue
            paths.append(os.path.join(directory, name))
        return paths

    def load_subject(self, directory: str, subject: int) -> Dict[int, ArrayDataset]:
        """Load every session of one subject, keyed by session number."""
        sessions: Dict[int, ArrayDataset] = {}
        for path in self.discover(directory, subject=subject):
            _, session = parse_session_from_filename(path)
            dataset = self.load_file(path)
            if session is None or len(dataset) == 0:
                continue
            if session in sessions:
                sessions[session] = ArrayDataset.concatenate([sessions[session], dataset])
            else:
                sessions[session] = dataset
        return sessions

    def train_test_split(
        self,
        sessions: Dict[int, ArrayDataset],
        training_sessions: Sequence[int] = (1, 2, 3, 4, 5),
    ) -> Tuple[ArrayDataset, ArrayDataset]:
        """Assemble the paper's protocol split from per-session datasets."""
        train = [dataset for session, dataset in sessions.items() if session in training_sessions]
        test = [dataset for session, dataset in sessions.items() if session not in training_sessions]
        if not train or not test:
            raise ValueError("need at least one training and one testing session")
        return ArrayDataset.concatenate(train), ArrayDataset.concatenate(test)
