"""sEMG signal preprocessing: filtering, rectification, envelopes, scaling.

Real sEMG acquisitions (NinaPro DB6 included) are conditioned before they
reach a classifier: power-line interference is notched out, the signal is
band-limited to the EMG band (~20-500 Hz), and for envelope-based pipelines
it is rectified and low-pass filtered.  The paper feeds raw windows to its
networks, but the preprocessing stage is part of any deployable sEMG system
and is also what the classical baselines and the real-recording loader use.

Everything operates on arrays shaped ``(channels, samples)`` or
``(windows, channels, samples)`` and filters along the last axis using
zero-phase (forward-backward) IIR filtering from SciPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import signal as sp_signal

__all__ = [
    "bandpass_filter",
    "notch_filter",
    "rectify",
    "moving_average",
    "envelope",
    "mu_law_compress",
    "standardize",
    "PreprocessingConfig",
    "Preprocessor",
]


def _check_sampling(sampling_rate_hz: float) -> None:
    if sampling_rate_hz <= 0:
        raise ValueError("sampling_rate_hz must be positive")


def bandpass_filter(
    signal: np.ndarray,
    sampling_rate_hz: float,
    low_hz: float = 20.0,
    high_hz: float = 500.0,
    order: int = 4,
) -> np.ndarray:
    """Zero-phase Butterworth band-pass along the last axis.

    The pass band defaults to the usual surface-EMG band (20-500 Hz); the
    upper edge is clipped below Nyquist for low-rate synthetic presets.
    """
    _check_sampling(sampling_rate_hz)
    nyquist = sampling_rate_hz / 2.0
    high_hz = min(high_hz, 0.99 * nyquist)
    if not 0.0 < low_hz < high_hz:
        raise ValueError(f"invalid band ({low_hz}, {high_hz}) Hz at fs={sampling_rate_hz} Hz")
    coefficients = sp_signal.butter(order, [low_hz / nyquist, high_hz / nyquist], btype="band")
    return sp_signal.filtfilt(*coefficients, np.asarray(signal, dtype=np.float64), axis=-1)


def notch_filter(
    signal: np.ndarray,
    sampling_rate_hz: float,
    notch_hz: float = 50.0,
    quality: float = 30.0,
) -> np.ndarray:
    """Zero-phase IIR notch removing power-line interference (50/60 Hz)."""
    _check_sampling(sampling_rate_hz)
    nyquist = sampling_rate_hz / 2.0
    if not 0.0 < notch_hz < nyquist:
        raise ValueError(f"notch frequency {notch_hz} Hz outside (0, {nyquist}) Hz")
    numerator, denominator = sp_signal.iirnotch(notch_hz / nyquist, quality)
    return sp_signal.filtfilt(numerator, denominator, np.asarray(signal, dtype=np.float64), axis=-1)


def rectify(signal: np.ndarray) -> np.ndarray:
    """Full-wave rectification (absolute value)."""
    return np.abs(np.asarray(signal, dtype=np.float64))


def moving_average(signal: np.ndarray, window_samples: int) -> np.ndarray:
    """Causal moving average along the last axis (same length as the input)."""
    if window_samples < 1:
        raise ValueError("window_samples must be at least 1")
    signal = np.asarray(signal, dtype=np.float64)
    kernel = np.ones(window_samples) / window_samples
    padded = np.concatenate(
        [np.repeat(signal[..., :1], window_samples - 1, axis=-1), signal], axis=-1
    )
    return np.apply_along_axis(lambda row: np.convolve(row, kernel, mode="valid"), -1, padded)


def envelope(
    signal: np.ndarray, sampling_rate_hz: float, smoothing_ms: float = 20.0
) -> np.ndarray:
    """Linear envelope: rectification followed by a moving-average low-pass."""
    _check_sampling(sampling_rate_hz)
    window = max(1, int(round(smoothing_ms * 1e-3 * sampling_rate_hz)))
    return moving_average(rectify(signal), window)


def mu_law_compress(signal: np.ndarray, mu: float = 255.0) -> np.ndarray:
    """Mu-law amplitude compression onto [-1, 1] (common for sEMG dynamic range)."""
    if mu <= 0:
        raise ValueError("mu must be positive")
    signal = np.asarray(signal, dtype=np.float64)
    scale = np.max(np.abs(signal))
    if scale == 0:
        return np.zeros_like(signal)
    normalized = signal / scale
    return np.sign(normalized) * np.log1p(mu * np.abs(normalized)) / np.log1p(mu)


def standardize(signal: np.ndarray, axis: Optional[Tuple[int, ...]] = None, eps: float = 1e-8) -> np.ndarray:
    """Zero-mean / unit-variance scaling over ``axis`` (all axes by default)."""
    signal = np.asarray(signal, dtype=np.float64)
    mean = signal.mean(axis=axis, keepdims=True)
    std = signal.std(axis=axis, keepdims=True)
    return (signal - mean) / (std + eps)


@dataclass
class PreprocessingConfig:
    """Configuration of the standard sEMG conditioning chain."""

    sampling_rate_hz: float = 2000.0
    apply_bandpass: bool = True
    band_hz: Tuple[float, float] = (20.0, 500.0)
    apply_notch: bool = True
    notch_hz: float = 50.0
    notch_quality: float = 30.0
    apply_envelope: bool = False
    envelope_smoothing_ms: float = 20.0
    apply_standardize: bool = True

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent settings."""
        _check_sampling(self.sampling_rate_hz)
        low, high = self.band_hz
        if self.apply_bandpass and not 0 < low < high:
            raise ValueError("band_hz must satisfy 0 < low < high")
        if self.apply_notch and not 0 < self.notch_hz < self.sampling_rate_hz / 2:
            raise ValueError("notch_hz must be below Nyquist")


class Preprocessor:
    """The standard conditioning chain: notch -> band-pass -> envelope -> scale.

    Example
    -------
    >>> preprocessor = Preprocessor(PreprocessingConfig(sampling_rate_hz=2000.0))
    >>> conditioned = preprocessor(recording)          # (channels, samples)
    """

    def __init__(self, config: Optional[PreprocessingConfig] = None) -> None:
        self.config = config if config is not None else PreprocessingConfig()
        self.config.validate()

    def __call__(self, signal: np.ndarray) -> np.ndarray:
        return self.process(signal)

    def process(self, signal: np.ndarray) -> np.ndarray:
        """Apply the configured stages to ``signal`` (last axis = time)."""
        config = self.config
        processed = np.asarray(signal, dtype=np.float64)
        if config.apply_notch:
            processed = notch_filter(
                processed, config.sampling_rate_hz, config.notch_hz, config.notch_quality
            )
        if config.apply_bandpass:
            low, high = config.band_hz
            processed = bandpass_filter(processed, config.sampling_rate_hz, low, high)
        if config.apply_envelope:
            processed = envelope(
                processed, config.sampling_rate_hz, config.envelope_smoothing_ms
            )
        if config.apply_standardize:
            processed = standardize(processed)
        return processed
