"""NinaPro DB6 surrogate dataset.

The Non-Invasive Adaptive hand Prosthetics Database 6 (Palermo et al., 2017)
is the paper's evaluation dataset: 10 non-amputee subjects, 10 acquisition
sessions spread over 5 days, 8 classes (rest + 7 grasps), 12 repetitions of
every gesture per session, 14 Delsys Trigno electrodes sampled at 2 kHz,
segmented in 150 ms windows with a 15 ms slide.

The real recordings cannot be downloaded in this offline environment, so
:class:`NinaProDB6` generates a synthetic dataset with the same geometry and
the same statistical structure (see :mod:`repro.data.semg` for the signal
model and DESIGN.md for the substitution rationale).  The class exposes the
exact splits used by the paper's protocol: sessions 1-5 for training, 6-10
for testing, plus a "leave-one-subject-in" view used by the inter-subject
pre-training step.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..utils.rng import derive_rng
from .dataset import ArrayDataset, normalize_windows
from .semg import SemgConfig, SemgSynthesizer
from .windowing import segment_recording

__all__ = ["GESTURE_NAMES", "NinaProDB6Config", "NinaProDB6"]

#: Human-readable names for the 8 classes (rest + 7 grasps typical of the
#: activities of daily living covered by DB6).
GESTURE_NAMES: Tuple[str, ...] = (
    "rest",
    "medium wrap",
    "lateral grasp",
    "parallel extension",
    "tripod grasp",
    "power sphere",
    "precision disk",
    "prismatic pinch",
)


@dataclass
class NinaProDB6Config:
    """Geometry and scale of the (synthetic) NinaPro DB6 dataset.

    The default values are the paper's: use :meth:`paper` for the full-size
    dataset and :meth:`small` / :meth:`tiny` for the reduced presets used by
    the benchmark harness and the test suite.
    """

    num_subjects: int = 10
    num_sessions: int = 10
    num_gestures: int = 8
    repetitions_per_session: int = 12
    repetition_duration_s: float = 6.0
    rest_duration_s: float = 2.0
    window_ms: float = 150.0
    slide_ms: float = 15.0
    #: Sessions (1-based) used for subject-specific training; the remainder
    #: are the testing sessions, exactly as in the paper.
    training_sessions: Tuple[int, ...] = (1, 2, 3, 4, 5)
    normalize: bool = True
    #: Input representation fed to the models.
    #:
    #: * ``"raw"`` — the raw interference-pattern signal, as in the paper
    #:   (the networks learn their own rectification, which needs the paper's
    #:   full epoch/data budget);
    #: * ``"envelope"`` — rectified and low-pass-filtered sEMG.  The reduced
    #:   scale presets use this so that the drastically smaller training
    #:   budget still lets every architecture converge; the model topologies
    #:   and the experiment protocol are unchanged (see DESIGN.md).
    representation: str = "raw"
    #: Length of the envelope moving-average filter, in milliseconds.
    envelope_smoothing_ms: float = 20.0
    seed: int = 2022
    semg: SemgConfig = field(default_factory=SemgConfig)

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #
    @classmethod
    def paper(cls) -> "NinaProDB6Config":
        """Full paper-scale geometry (10 subjects, 12 repetitions, 2 kHz)."""
        return cls()

    @classmethod
    def small(cls, num_subjects: int = 3, seed: int = 2022) -> "NinaProDB6Config":
        """Reduced-scale preset used by the benchmark harness.

        Keeps 10 sessions, 8 gestures and the 150 ms window concept but
        shrinks the sampling rate, repetition count and duration so that a
        full pre-train + fine-tune cycle runs in seconds on NumPy.
        """
        return cls(
            num_subjects=num_subjects,
            num_sessions=10,
            repetitions_per_session=1,
            repetition_duration_s=2.4,
            rest_duration_s=0.0,
            window_ms=200.0,
            slide_ms=200.0,
            representation="envelope",
            seed=seed,
            semg=SemgConfig(
                sampling_rate_hz=500.0,
                emg_band_hz=(20.0, 220.0),
                measurement_noise=0.26,
                subject_deviation=0.28,
            ),
        )

    @classmethod
    def tiny(cls, seed: int = 7) -> "NinaProDB6Config":
        """Smoke-test preset used by the integration tests (runs in seconds)."""
        return cls(
            num_subjects=2,
            num_sessions=4,
            repetitions_per_session=1,
            repetition_duration_s=0.8,
            rest_duration_s=0.0,
            window_ms=200.0,
            slide_ms=200.0,
            training_sessions=(1, 2),
            representation="envelope",
            seed=seed,
            semg=SemgConfig(sampling_rate_hz=200.0, emg_band_hz=(10.0, 90.0)),
        )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def window_samples(self) -> int:
        """Window length in samples."""
        return int(round(self.window_ms * 1e-3 * self.semg.sampling_rate_hz))

    @property
    def slide_samples(self) -> int:
        """Window slide in samples."""
        return max(int(round(self.slide_ms * 1e-3 * self.semg.sampling_rate_hz)), 1)

    @property
    def num_channels(self) -> int:
        """Number of sEMG electrodes."""
        return self.semg.num_channels

    @property
    def testing_sessions(self) -> Tuple[int, ...]:
        """Sessions (1-based) reserved for testing."""
        return tuple(
            session
            for session in range(1, self.num_sessions + 1)
            if session not in self.training_sessions
        )

    @property
    def subjects(self) -> Tuple[int, ...]:
        """Subject identifiers (1-based, as in the paper's Fig. 3)."""
        return tuple(range(1, self.num_subjects + 1))

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.num_subjects < 1:
            raise ValueError("at least one subject is required")
        if any(s < 1 or s > self.num_sessions for s in self.training_sessions):
            raise ValueError("training_sessions must be within [1, num_sessions]")
        if not self.testing_sessions:
            raise ValueError("at least one testing session is required")
        if self.window_samples < 1:
            raise ValueError("window is shorter than one sample")
        if self.representation not in ("raw", "rectified", "envelope"):
            raise ValueError("representation must be 'raw', 'rectified' or 'envelope'")
        if self.num_gestures != self.semg.num_gestures:
            self.semg.num_gestures = self.num_gestures
        self.semg.validate()


class NinaProDB6:
    """Synthetic NinaPro DB6 with the paper's subject/session/window layout.

    Data is generated lazily per ``(subject, session)`` pair and cached in
    memory, so repeated experiment drivers (Fig. 2, 3 and 4 all reuse the
    same training windows) never pay the synthesis cost twice.
    """

    def __init__(self, config: Optional[NinaProDB6Config] = None) -> None:
        self.config = config if config is not None else NinaProDB6Config()
        self.config.validate()
        self._synthesizer = SemgSynthesizer(
            self.config.semg, derive_rng("ninapro", "template", seed=self.config.seed)
        )
        self._subjects = {
            subject: self._synthesizer.subject(
                subject, derive_rng("ninapro", "subject", subject, seed=self.config.seed)
            )
            for subject in self.config.subjects
        }
        self._cache: Dict[Tuple[int, int], ArrayDataset] = {}

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def _reference_session(self) -> int:
        """Session against which donning drift is measured (last training one)."""
        return max(self.config.training_sessions)

    def session_dataset(self, subject: int, session: int) -> ArrayDataset:
        """Return every window of ``(subject, session)`` as an :class:`ArrayDataset`.

        Parameters
        ----------
        subject:
            Subject identifier in ``[1, num_subjects]``.
        session:
            Session identifier in ``[1, num_sessions]``.
        """
        self._check_subject(subject)
        if not 1 <= session <= self.config.num_sessions:
            raise ValueError(f"session {session} outside [1, {self.config.num_sessions}]")
        key = (subject, session)
        if key in self._cache:
            return self._cache[key]

        config = self.config
        subject_model = self._subjects[subject]
        session_rng = derive_rng("ninapro", "session", subject, session, seed=config.seed)
        conditions = self._synthesizer.session(session, self._reference_session(), session_rng)

        all_windows: List[np.ndarray] = []
        all_labels: List[np.ndarray] = []
        repetition_ids: List[np.ndarray] = []
        for repetition in range(config.repetitions_per_session):
            for gesture in range(config.num_gestures):
                duration = (
                    config.rest_duration_s if gesture == 0 and config.rest_duration_s > 0
                    else config.repetition_duration_s
                )
                repetition_rng = derive_rng(
                    "ninapro", "rep", subject, session, repetition, gesture, seed=config.seed
                )
                signal = self._synthesizer.synthesize_repetition(
                    subject_model, conditions, gesture, duration, repetition_rng
                )
                windows, labels = segment_recording(
                    signal, gesture, config.window_samples, config.slide_samples
                )
                if windows.shape[0] == 0:
                    continue
                all_windows.append(windows)
                all_labels.append(labels)
                repetition_ids.append(np.full(labels.shape, repetition, dtype=np.int64))

        windows = np.concatenate(all_windows, axis=0).astype(np.float64)
        labels = np.concatenate(all_labels, axis=0)
        repetitions = np.concatenate(repetition_ids, axis=0)
        windows = self._apply_representation(windows)
        if config.normalize:
            windows = normalize_windows(windows)
        metadata = {
            "subject": np.full(labels.shape, subject, dtype=np.int64),
            "session": np.full(labels.shape, session, dtype=np.int64),
            "repetition": repetitions,
        }
        dataset = ArrayDataset(windows, labels, metadata)
        self._cache[key] = dataset
        return dataset

    def _apply_representation(self, windows: np.ndarray) -> np.ndarray:
        """Convert raw windows to the configured input representation."""
        config = self.config
        if config.representation == "raw":
            return windows
        rectified = np.abs(windows)
        if config.representation == "rectified":
            return rectified
        # Envelope: moving-average smoothing of the rectified signal.
        taps = max(
            int(round(config.envelope_smoothing_ms * 1e-3 * config.semg.sampling_rate_hz)), 1
        )
        kernel = np.ones(taps) / taps
        padded = np.pad(rectified, ((0, 0), (0, 0), (taps // 2, taps - 1 - taps // 2)), mode="edge")
        smoothed = np.apply_along_axis(
            lambda row: np.convolve(row, kernel, mode="valid"), -1, padded
        )
        return smoothed

    # ------------------------------------------------------------------ #
    # Paper splits
    # ------------------------------------------------------------------ #
    def sessions_dataset(self, subject: int, sessions: Iterable[int]) -> ArrayDataset:
        """Concatenate the windows of ``subject`` over ``sessions``."""
        datasets = [self.session_dataset(subject, session) for session in sessions]
        return ArrayDataset.concatenate(datasets)

    def training_dataset(self, subject: int) -> ArrayDataset:
        """Sessions 1-5 of ``subject`` — the subject-specific training set."""
        return self.sessions_dataset(subject, self.config.training_sessions)

    def testing_dataset(self, subject: int) -> ArrayDataset:
        """Sessions 6-10 of ``subject`` — the multi-day testing set."""
        return self.sessions_dataset(subject, self.config.testing_sessions)

    def testing_dataset_per_session(self, subject: int) -> Dict[int, ArrayDataset]:
        """Testing windows of ``subject`` keyed by session (for Fig. 2)."""
        return {
            session: self.session_dataset(subject, session)
            for session in self.config.testing_sessions
        }

    def pretraining_dataset(self, excluded_subject: int) -> ArrayDataset:
        """Training-session windows of every subject except ``excluded_subject``.

        This is the inter-subject pre-training corpus of Sec. III-B: for the
        model that will be fine-tuned (and tested) on ``excluded_subject``,
        the pre-training step may only see the *other* subjects.
        """
        self._check_subject(excluded_subject)
        others = [s for s in self.config.subjects if s != excluded_subject]
        if not others:
            raise ValueError("pre-training requires at least two subjects")
        datasets = [self.training_dataset(subject) for subject in others]
        return ArrayDataset.concatenate(datasets)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def _check_subject(self, subject: int) -> None:
        if subject not in self.config.subjects:
            raise ValueError(
                f"subject {subject} outside [1, {self.config.num_subjects}]"
            )

    @property
    def input_shape(self) -> Tuple[int, int]:
        """Shape ``(channels, window_samples)`` of a single model input."""
        return (self.config.num_channels, self.config.window_samples)

    def describe(self) -> str:
        """One-line human readable summary of the dataset geometry."""
        config = self.config
        return (
            f"NinaProDB6(surrogate): {config.num_subjects} subjects x "
            f"{config.num_sessions} sessions x {config.num_gestures} gestures, "
            f"{config.num_channels} channels @ {config.semg.sampling_rate_hz:.0f} Hz, "
            f"window {config.window_samples} samples / slide {config.slide_samples}"
        )
