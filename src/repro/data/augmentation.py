"""Data augmentation for sEMG windows.

The paper's inter-subject pre-training attacks the small-data problem with
more *subjects*; augmentation attacks it with more *views* of the same
windows and is the standard complement (and one of the extensions the
reduced-scale experiments in this repository use to stabilise training).
Every transform models a physically plausible perturbation of an sEMG
recording:

* :func:`jitter` — additive measurement noise;
* :func:`amplitude_scale` — electrode-gain / impedance variation;
* :func:`channel_dropout` — an electrode losing skin contact;
* :func:`channel_shift` — electrode-array rotation around the forearm
  (donning/doffing misplacement);
* :func:`time_shift` — window misalignment relative to the contraction;
* :func:`time_warp` — small variations in contraction speed;
* :func:`magnitude_warp` — slow gain drift within the window.

All transforms take and return ``(windows, channels, samples)`` batches and
never modify their input in place.  :class:`Augmenter` composes a random
subset per window, mirroring the usual training-time pipeline.

Every transform draws exclusively from the ``rng`` generator passed to it
(and :class:`Augmenter` from its own seeded generator) — never from the
global NumPy state — so the same seed reproduces the same corrupted batch
bit for bit.  The evaluation harness (:mod:`repro.eval`) builds its
scenario corruptions on top of this contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CHANNEL_FILL_VALUE",
    "jitter",
    "amplitude_scale",
    "channel_dropout",
    "channel_shift",
    "time_shift",
    "time_warp",
    "magnitude_warp",
    "AugmentationConfig",
    "Augmenter",
]


#: The value a lost electrode reads as, shared across every path that
#: simulates or repairs one: :func:`channel_dropout` fills dropped channels
#: with it, and the session layer's dead-electrode masking
#: (:mod:`repro.serve.sessions`) masks dead channels *to* it — so a model
#: augmented against dropout sees exactly the signal the serving tier
#: produces when an electrode dies in production.
CHANNEL_FILL_VALUE = 0.0


def _as_batch(windows: np.ndarray) -> np.ndarray:
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim != 3:
        raise ValueError(f"expected (windows, channels, samples), got shape {windows.shape}")
    return windows.copy()


def jitter(windows: np.ndarray, rng: np.random.Generator, sigma: float = 0.05) -> np.ndarray:
    """Add Gaussian measurement noise with standard deviation ``sigma``."""
    batch = _as_batch(windows)
    return batch + rng.normal(scale=sigma, size=batch.shape)


def amplitude_scale(
    windows: np.ndarray, rng: np.random.Generator, sigma: float = 0.1
) -> np.ndarray:
    """Scale every channel by an independent gain drawn around 1."""
    batch = _as_batch(windows)
    gains = rng.normal(loc=1.0, scale=sigma, size=(batch.shape[0], batch.shape[1], 1))
    return batch * np.clip(gains, 0.1, None)


def channel_dropout(
    windows: np.ndarray, rng: np.random.Generator, probability: float = 0.1
) -> np.ndarray:
    """Drop whole channels to :data:`CHANNEL_FILL_VALUE` with the given
    per-channel probability (an electrode losing skin contact)."""
    if not 0.0 <= probability < 1.0:
        raise ValueError("probability must lie in [0, 1)")
    batch = _as_batch(windows)
    keep = rng.random(size=(batch.shape[0], batch.shape[1], 1)) >= probability
    return np.where(keep, batch, CHANNEL_FILL_VALUE)


def channel_shift(
    windows: np.ndarray, rng: np.random.Generator, max_shift: int = 1
) -> np.ndarray:
    """Cyclically rotate the electrode axis by up to ``max_shift`` positions.

    Models the electrode array being donned slightly rotated around the
    forearm relative to the training sessions.
    """
    if max_shift < 0:
        raise ValueError("max_shift must be non-negative")
    batch = _as_batch(windows)
    output = np.empty_like(batch)
    shifts = rng.integers(-max_shift, max_shift + 1, size=batch.shape[0])
    for index, shift in enumerate(shifts):
        output[index] = np.roll(batch[index], int(shift), axis=0)
    return output


def time_shift(
    windows: np.ndarray, rng: np.random.Generator, max_fraction: float = 0.1
) -> np.ndarray:
    """Cyclically shift every window in time by up to ``max_fraction`` of its length."""
    if not 0.0 <= max_fraction <= 1.0:
        raise ValueError("max_fraction must lie in [0, 1]")
    batch = _as_batch(windows)
    samples = batch.shape[-1]
    limit = max(1, int(round(max_fraction * samples)))
    output = np.empty_like(batch)
    shifts = rng.integers(-limit, limit + 1, size=batch.shape[0])
    for index, shift in enumerate(shifts):
        output[index] = np.roll(batch[index], int(shift), axis=-1)
    return output


def time_warp(
    windows: np.ndarray, rng: np.random.Generator, max_speed_change: float = 0.15
) -> np.ndarray:
    """Resample every window at a slightly different speed (linear interpolation)."""
    if not 0.0 <= max_speed_change < 1.0:
        raise ValueError("max_speed_change must lie in [0, 1)")
    batch = _as_batch(windows)
    num_windows, channels, samples = batch.shape
    original_grid = np.arange(samples)
    output = np.empty_like(batch)
    speeds = 1.0 + rng.uniform(-max_speed_change, max_speed_change, size=num_windows)
    for index, speed in enumerate(speeds):
        warped_grid = np.clip(np.arange(samples) * speed, 0, samples - 1)
        for channel in range(channels):
            output[index, channel] = np.interp(warped_grid, original_grid, batch[index, channel])
    return output


def magnitude_warp(
    windows: np.ndarray,
    rng: np.random.Generator,
    sigma: float = 0.2,
    num_knots: int = 4,
) -> np.ndarray:
    """Multiply every window by a smooth random gain curve (slow drift)."""
    if num_knots < 2:
        raise ValueError("num_knots must be at least 2")
    batch = _as_batch(windows)
    num_windows, channels, samples = batch.shape
    knot_positions = np.linspace(0, samples - 1, num_knots)
    grid = np.arange(samples)
    curves = np.empty((num_windows, samples))
    for index in range(num_windows):
        knot_values = rng.normal(loc=1.0, scale=sigma, size=num_knots)
        curves[index] = np.interp(grid, knot_positions, knot_values)
    return batch * curves[:, None, :]


@dataclass
class AugmentationConfig:
    """Which transforms the :class:`Augmenter` applies, and how strongly."""

    jitter_sigma: float = 0.05
    scale_sigma: float = 0.1
    dropout_probability: float = 0.05
    max_channel_shift: int = 1
    max_time_shift_fraction: float = 0.05
    max_speed_change: float = 0.1
    magnitude_sigma: float = 0.15
    #: Probability of applying each individual transform to a batch.
    apply_probability: float = 0.5
    #: Transform names to use; ``None`` means all of them.
    transforms: Optional[Tuple[str, ...]] = None


class Augmenter:
    """Composable, reproducible augmentation pipeline for window batches."""

    def __init__(self, config: Optional[AugmentationConfig] = None, seed: int = 0) -> None:
        self.config = config if config is not None else AugmentationConfig()
        self._rng = np.random.default_rng(seed)
        self._registry: Dict[str, Callable[[np.ndarray, np.random.Generator], np.ndarray]] = {
            "jitter": lambda w, r: jitter(w, r, self.config.jitter_sigma),
            "amplitude_scale": lambda w, r: amplitude_scale(w, r, self.config.scale_sigma),
            "channel_dropout": lambda w, r: channel_dropout(
                w, r, self.config.dropout_probability
            ),
            "channel_shift": lambda w, r: channel_shift(w, r, self.config.max_channel_shift),
            "time_shift": lambda w, r: time_shift(w, r, self.config.max_time_shift_fraction),
            "time_warp": lambda w, r: time_warp(w, r, self.config.max_speed_change),
            "magnitude_warp": lambda w, r: magnitude_warp(w, r, self.config.magnitude_sigma),
        }
        selected = self.config.transforms
        if selected is not None:
            unknown = [name for name in selected if name not in self._registry]
            if unknown:
                raise ValueError(f"unknown transforms {unknown}; available: {self.available()}")
            self._active = list(selected)
        else:
            self._active = list(self._registry)

    def available(self) -> List[str]:
        """Names of every registered transform."""
        return sorted(self._registry)

    def __call__(self, windows: np.ndarray) -> np.ndarray:
        """Apply a random subset of the active transforms to a window batch."""
        batch = _as_batch(windows)
        for name in self._active:
            if self._rng.random() < self.config.apply_probability:
                batch = self._registry[name](batch, self._rng)
        return batch

    def augment_dataset(self, windows: np.ndarray, labels: np.ndarray, copies: int = 1):
        """Return the original batch plus ``copies`` augmented copies.

        Labels are replicated accordingly; useful for oversampling the small
        subject-specific fine-tuning sets.
        """
        if copies < 0:
            raise ValueError("copies must be non-negative")
        windows = _as_batch(windows)
        labels = np.asarray(labels)
        augmented = [windows]
        augmented_labels = [labels]
        for _ in range(copies):
            augmented.append(self(windows))
            augmented_labels.append(labels)
        return np.concatenate(augmented, axis=0), np.concatenate(augmented_labels, axis=0)
