"""Sliding-window segmentation of continuous sEMG recordings.

The paper segments every recording into 150 ms windows (300 samples at
2 kHz) with a 15 ms slide; each window inherits the label of the gesture
being performed.  These helpers implement that segmentation for arbitrary
window / slide settings so the reduced-scale presets reuse the same code
path.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "sliding_window_count",
    "sliding_windows",
    "segment_recording",
    "StreamWindower",
]


def sliding_window_count(num_samples: int, window: int, slide: int) -> int:
    """Number of complete windows obtainable from ``num_samples`` samples."""
    if window <= 0 or slide <= 0:
        raise ValueError("window and slide must be positive")
    if num_samples < window:
        return 0
    return (num_samples - window) // slide + 1


def sliding_windows(signal: np.ndarray, window: int, slide: int) -> np.ndarray:
    """Cut a ``(channels, samples)`` signal into ``(num_windows, channels, window)``.

    Windows are complete (no padding); a recording shorter than one window
    produces an empty array with the correct trailing dimensions.
    """
    if signal.ndim != 2:
        raise ValueError(f"expected a (channels, samples) array, got shape {signal.shape}")
    channels, samples = signal.shape
    count = sliding_window_count(samples, window, slide)
    if count == 0:
        return np.empty((0, channels, window), dtype=signal.dtype)
    starts = np.arange(count) * slide
    index = starts[:, None] + np.arange(window)[None, :]
    return np.ascontiguousarray(signal[:, index].transpose(1, 0, 2))


def segment_recording(
    signal: np.ndarray,
    label: int,
    window: int,
    slide: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Segment a labelled recording into windows and per-window labels."""
    windows = sliding_windows(signal, window, slide)
    labels = np.full(windows.shape[0], label, dtype=np.int64)
    return windows, labels


class StreamWindower:
    """Incremental sliding windows over a chunked ``(channels, samples)`` stream.

    A live acquisition delivers samples in arbitrarily sized chunks; this
    class buffers them and emits every complete window exactly once, with
    the same geometry as :func:`sliding_windows` applied to the concatenated
    signal.  The invariant (enforced by the test-suite) is::

        sum of windows emitted by push()  ==  sliding_window_count(total, window, slide)

    and the *content* of the emitted windows matches the offline segmentation
    bit-for-bit.
    """

    def __init__(
        self,
        window: int,
        slide: int,
        num_channels: int,
        dtype=np.float64,
    ) -> None:
        if window <= 0 or slide <= 0:
            raise ValueError("window and slide must be positive")
        if num_channels <= 0:
            raise ValueError("num_channels must be positive")
        self.window = int(window)
        self.slide = int(slide)
        self.num_channels = int(num_channels)
        self.dtype = np.dtype(dtype)
        self._buffer = np.empty((self.num_channels, 0), dtype=self.dtype)
        #: Absolute stream position of ``_buffer[:, 0]``.
        self._base = 0
        self.samples_seen = 0
        self.windows_emitted = 0

    def __repr__(self) -> str:
        return (
            f"StreamWindower(window={self.window}, slide={self.slide}, "
            f"channels={self.num_channels}, seen={self.samples_seen})"
        )

    @property
    def pending_samples(self) -> int:
        """Buffered samples not yet part of an emitted window's start."""
        return self._buffer.shape[1]

    def push(self, samples: np.ndarray) -> np.ndarray:
        """Ingest a ``(channels, n)`` chunk; return the newly complete windows.

        Returns a ``(new_windows, channels, window)`` array (possibly empty).
        """
        samples = np.asarray(samples, dtype=self.dtype)
        if samples.ndim == 1:
            samples = samples[None, :]
        if samples.ndim != 2 or samples.shape[0] != self.num_channels:
            raise ValueError(
                f"expected a ({self.num_channels}, n) chunk, got shape {samples.shape}"
            )
        self.samples_seen += samples.shape[1]
        self._buffer = np.concatenate([self._buffer, samples], axis=1)
        # The next unemitted window starts at stream position
        # windows_emitted * slide; with slide > window that can lie beyond
        # the buffered samples, hence the absolute bookkeeping.
        next_start = self.windows_emitted * self.slide
        offset = next_start - self._base
        if offset < self._buffer.shape[1]:
            windows = sliding_windows(self._buffer[:, offset:], self.window, self.slide)
        else:
            windows = np.empty((0, self.num_channels, self.window), dtype=self.dtype)
        count = windows.shape[0]
        if count:
            self.windows_emitted += count
            next_start += count * self.slide
        # Drop every sample before the next window start to keep the buffer
        # bounded (the start itself may still be in the future).
        drop = min(self._buffer.shape[1], next_start - self._base)
        if drop > 0:
            self._buffer = np.ascontiguousarray(self._buffer[:, drop:])
            self._base += drop
        return windows

    def state(self) -> dict:
        """Snapshot of the incremental-windowing state for checkpointing.

        Returns a dict of plain values plus a *copy* of the remainder
        buffer (the samples pushed but not yet consumed by an emitted
        window).  Feeding the snapshot to :meth:`load_state` on a windower
        of identical geometry reproduces the original's future emissions
        bit-for-bit — the crash-safe-session contract of
        :mod:`repro.serve.sessions` rests on this.
        """
        return {
            "window": self.window,
            "slide": self.slide,
            "num_channels": self.num_channels,
            "dtype": self.dtype.str,
            "buffer": self._buffer.copy(),
            "base": self._base,
            "samples_seen": self.samples_seen,
            "windows_emitted": self.windows_emitted,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state` snapshot taken from an identical windower.

        Geometry (window, slide, channel count, dtype) must match exactly —
        a snapshot replayed into a differently shaped windower would emit
        windows the original never would have, so it is rejected with
        ``ValueError`` instead.
        """
        for key in ("window", "slide", "num_channels"):
            if int(state[key]) != getattr(self, key):
                raise ValueError(
                    f"windower state has {key}={state[key]}, "
                    f"this windower has {key}={getattr(self, key)}"
                )
        if np.dtype(state["dtype"]) != self.dtype:
            raise ValueError(
                f"windower state has dtype {state['dtype']}, "
                f"this windower has dtype {self.dtype.str}"
            )
        buffer = np.ascontiguousarray(np.asarray(state["buffer"], dtype=self.dtype))
        if buffer.ndim == 1 and buffer.size == 0:
            # A (C, 0) buffer round-tripped through nested lists loses its
            # channel dimension; normalise it back.
            buffer = buffer.reshape(self.num_channels, 0)
        if buffer.ndim != 2 or buffer.shape[0] != self.num_channels:
            raise ValueError(
                f"windower state buffer has shape {buffer.shape}, expected "
                f"({self.num_channels}, n)"
            )
        self._buffer = buffer
        self._base = int(state["base"])
        self.samples_seen = int(state["samples_seen"])
        self.windows_emitted = int(state["windows_emitted"])

    def reset(self) -> None:
        """Forget all buffered samples (e.g. between recordings)."""
        self._buffer = np.empty((self.num_channels, 0), dtype=self.dtype)
        self._base = 0
        self.samples_seen = 0
        self.windows_emitted = 0
