"""Sliding-window segmentation of continuous sEMG recordings.

The paper segments every recording into 150 ms windows (300 samples at
2 kHz) with a 15 ms slide; each window inherits the label of the gesture
being performed.  These helpers implement that segmentation for arbitrary
window / slide settings so the reduced-scale presets reuse the same code
path.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["sliding_window_count", "sliding_windows", "segment_recording"]


def sliding_window_count(num_samples: int, window: int, slide: int) -> int:
    """Number of complete windows obtainable from ``num_samples`` samples."""
    if window <= 0 or slide <= 0:
        raise ValueError("window and slide must be positive")
    if num_samples < window:
        return 0
    return (num_samples - window) // slide + 1


def sliding_windows(signal: np.ndarray, window: int, slide: int) -> np.ndarray:
    """Cut a ``(channels, samples)`` signal into ``(num_windows, channels, window)``.

    Windows are complete (no padding); a recording shorter than one window
    produces an empty array with the correct trailing dimensions.
    """
    if signal.ndim != 2:
        raise ValueError(f"expected a (channels, samples) array, got shape {signal.shape}")
    channels, samples = signal.shape
    count = sliding_window_count(samples, window, slide)
    if count == 0:
        return np.empty((0, channels, window), dtype=signal.dtype)
    starts = np.arange(count) * slide
    index = starts[:, None] + np.arange(window)[None, :]
    return np.ascontiguousarray(signal[:, index].transpose(1, 0, 2))


def segment_recording(
    signal: np.ndarray,
    label: int,
    window: int,
    slide: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Segment a labelled recording into windows and per-window labels."""
    windows = sliding_windows(signal, window, slide)
    labels = np.full(windows.shape[0], label, dtype=np.int64)
    return windows, labels
