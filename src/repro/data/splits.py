"""Split helpers for the paper's training protocols."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .dataset import ArrayDataset
from .ninapro import NinaProDB6

__all__ = ["SubjectSplit", "subject_split", "stratified_subsample"]


@dataclass
class SubjectSplit:
    """All the data views one subject-specific experiment needs.

    Attributes
    ----------
    pretrain:
        Inter-subject pre-training corpus (all *other* subjects,
        training sessions only).
    train:
        Subject-specific training set (sessions 1-5).
    test:
        Subject-specific multi-day test set (sessions 6-10).
    test_per_session:
        The test set broken down by session, for the Fig. 2 analysis.
    """

    subject: int
    pretrain: ArrayDataset
    train: ArrayDataset
    test: ArrayDataset
    test_per_session: Dict[int, ArrayDataset]


def subject_split(dataset: NinaProDB6, subject: int, include_pretrain: bool = True) -> SubjectSplit:
    """Build the full :class:`SubjectSplit` for ``subject``.

    Set ``include_pretrain=False`` to skip generating the (larger)
    inter-subject corpus when only standard training is required.
    """
    pretrain = (
        dataset.pretraining_dataset(subject)
        if include_pretrain and dataset.config.num_subjects > 1
        else ArrayDataset(
            np.empty((0,) + dataset.input_shape), np.empty((0,), dtype=np.int64)
        )
    )
    return SubjectSplit(
        subject=subject,
        pretrain=pretrain,
        train=dataset.training_dataset(subject),
        test=dataset.testing_dataset(subject),
        test_per_session=dataset.testing_dataset_per_session(subject),
    )


def stratified_subsample(
    dataset: ArrayDataset, fraction: float, rng: np.random.Generator
) -> ArrayDataset:
    """Return a class-stratified random subsample of ``dataset``.

    Used by the reduced-scale experiment presets to cut the pre-training
    corpus while preserving the class balance.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must lie in (0, 1]")
    if fraction == 1.0 or len(dataset) == 0:
        return dataset
    selected = []
    for label in np.unique(dataset.labels):
        indices = np.flatnonzero(dataset.labels == label)
        keep = max(1, int(round(fraction * indices.size)))
        selected.append(rng.choice(indices, size=keep, replace=False))
    order = np.sort(np.concatenate(selected))
    return dataset.subset(order)
