"""In-memory datasets and mini-batch loading."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["ArrayDataset", "DataLoader", "normalize_windows"]


def normalize_windows(windows: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Standardise each window globally (zero mean, unit variance per window).

    The statistics are computed over *all* channels and samples of a window:
    removing the common gain and offset makes the pipeline robust to
    session-dependent electrode impedance while keeping quantisation ranges
    stable, but — crucially — it preserves the *relative* amplitude pattern
    across electrodes, which is the primary cue distinguishing grasps.
    (Per-channel standardisation would erase that pattern.)
    """
    axes = tuple(range(1, windows.ndim))
    mean = windows.mean(axis=axes, keepdims=True)
    std = windows.std(axis=axes, keepdims=True)
    return (windows - mean) / (std + eps)


class ArrayDataset:
    """A dataset of windows and labels held as NumPy arrays.

    Parameters
    ----------
    windows:
        Array of shape ``(num_windows, channels, samples)``.
    labels:
        Integer labels of shape ``(num_windows,)``.
    metadata:
        Optional per-window metadata (subject, session, repetition) as a
        structured array or dict of arrays; carried along for analysis.
    """

    def __init__(
        self,
        windows: np.ndarray,
        labels: np.ndarray,
        metadata: Optional[dict] = None,
    ) -> None:
        windows = np.asarray(windows)
        labels = np.asarray(labels, dtype=np.int64)
        if windows.shape[0] != labels.shape[0]:
            raise ValueError(
                f"windows and labels disagree on length: {windows.shape[0]} vs {labels.shape[0]}"
            )
        self.windows = windows
        self.labels = labels
        self.metadata = metadata or {}

    def __len__(self) -> int:
        return self.windows.shape[0]

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.windows[index], self.labels[index]

    @property
    def num_classes(self) -> int:
        """Number of distinct classes present in the labels."""
        return int(self.labels.max()) + 1 if len(self) else 0

    def class_counts(self) -> np.ndarray:
        """Histogram of labels (useful for checking class balance)."""
        if len(self) == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(self.labels, minlength=self.num_classes)

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""
        metadata = {key: np.asarray(value)[indices] for key, value in self.metadata.items()}
        return ArrayDataset(self.windows[indices], self.labels[indices], metadata)

    @staticmethod
    def concatenate(datasets: list) -> "ArrayDataset":
        """Concatenate several datasets (metadata keys must agree)."""
        datasets = [d for d in datasets if len(d)]
        if not datasets:
            raise ValueError("cannot concatenate zero non-empty datasets")
        windows = np.concatenate([d.windows for d in datasets], axis=0)
        labels = np.concatenate([d.labels for d in datasets], axis=0)
        keys = set(datasets[0].metadata)
        metadata = {}
        for key in keys:
            if all(key in d.metadata for d in datasets):
                metadata[key] = np.concatenate([np.asarray(d.metadata[key]) for d in datasets])
        return ArrayDataset(windows, labels, metadata)


class DataLoader:
    """Mini-batch iterator over an :class:`ArrayDataset`.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Number of windows per batch.
    shuffle:
        Whether to reshuffle the order at the start of every epoch.
    rng:
        Random generator used for shuffling (required when ``shuffle``).
    drop_last:
        Drop the final incomplete batch (keeps batch statistics stable).
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        rng: Optional[np.random.Generator] = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng()

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            batch_indices = order[start : start + self.batch_size]
            if self.drop_last and len(batch_indices) < self.batch_size:
                break
            yield self.dataset.windows[batch_indices], self.dataset.labels[batch_indices]
