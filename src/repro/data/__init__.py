"""``repro.data`` — the sEMG data substrate.

Contains the synthetic surface-EMG signal model, the NinaPro DB6 surrogate
dataset with the paper's subject/session/window geometry, sliding-window
segmentation, mini-batch loading, signal preprocessing (filtering,
rectification, envelopes), training-time augmentation, and a loader for the
real NinaPro ``.mat`` recordings for users who have them.
"""

from .augmentation import (
    CHANNEL_FILL_VALUE,
    Augmenter,
    AugmentationConfig,
    amplitude_scale,
    channel_dropout,
    channel_shift,
    jitter,
    magnitude_warp,
    time_shift,
    time_warp,
)
from .dataset import ArrayDataset, DataLoader, normalize_windows
from .matfile import MatLoaderConfig, MatRecording, NinaProMatLoader, load_mat_recording
from .ninapro import GESTURE_NAMES, NinaProDB6, NinaProDB6Config
from .preprocessing import (
    PreprocessingConfig,
    Preprocessor,
    bandpass_filter,
    envelope,
    moving_average,
    mu_law_compress,
    notch_filter,
    rectify,
    standardize,
)
from .semg import (
    GestureLibrary,
    SemgConfig,
    SemgSynthesizer,
    SessionConditions,
    SubjectModel,
)
from .splits import SubjectSplit, stratified_subsample, subject_split
from .windowing import StreamWindower, segment_recording, sliding_window_count, sliding_windows

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "normalize_windows",
    "GESTURE_NAMES",
    "NinaProDB6",
    "NinaProDB6Config",
    "SemgConfig",
    "SemgSynthesizer",
    "GestureLibrary",
    "SubjectModel",
    "SessionConditions",
    "SubjectSplit",
    "subject_split",
    "stratified_subsample",
    "segment_recording",
    "sliding_windows",
    "sliding_window_count",
    "StreamWindower",
    "PreprocessingConfig",
    "Preprocessor",
    "bandpass_filter",
    "notch_filter",
    "rectify",
    "envelope",
    "moving_average",
    "mu_law_compress",
    "standardize",
    "CHANNEL_FILL_VALUE",
    "AugmentationConfig",
    "Augmenter",
    "jitter",
    "amplitude_scale",
    "channel_dropout",
    "channel_shift",
    "time_shift",
    "time_warp",
    "magnitude_warp",
    "MatRecording",
    "MatLoaderConfig",
    "NinaProMatLoader",
    "load_mat_recording",
]
