"""Floating-point reference executor for deployment graphs.

The float executor replays a traced :class:`~repro.deploy.graph.ComputeGraph`
with plain NumPy (no autograd, evaluation semantics).  It serves three
purposes:

1. **Trace validation** — its output must match the original model's forward
   pass, which proves the tracer captured every operator faithfully (the
   test-suite enforces agreement to float tolerance);
2. **Calibration** — :meth:`FloatGraphExecutor.run_recording` returns every
   intermediate activation, which the int8 lowering pass uses to pick
   activation scales;
3. **Reference for the integer engine** — the integer executor in
   :mod:`repro.deploy.int_engine` is checked against it.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from .graph import ComputeGraph, GraphNode

__all__ = ["FloatGraphExecutor", "conv1d_reference", "gelu_reference", "softmax_reference"]


def conv1d_reference(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: int,
    padding: int,
    dilation: int,
) -> np.ndarray:
    """Direct 1-D convolution over ``(batch, channels, length)`` inputs.

    Implemented as im2col + one batched matmul — the *same* lowering and
    contraction the framework convolution
    (:func:`repro.nn.functional.conv1d`) performs, so the reference
    executor reproduces the training-time forward pass bit for bit (the
    earlier per-tap accumulation loop summed in a different order, which
    cost a few ULPs against the framework), and it mirrors the GEMM
    schedule of the integer engine and the generated C code.
    """
    batch, in_channels, length = x.shape
    out_channels, weight_in, kernel = weight.shape
    if weight_in != in_channels:
        raise ValueError(
            f"weight expects {weight_in} input channels, activation has {in_channels}"
        )
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding)))
        length = x.shape[-1]
    effective = dilation * (kernel - 1) + 1
    out_length = (length - effective) // stride + 1
    if out_length <= 0:
        raise ValueError("convolution produces an empty output")
    starts = np.arange(out_length) * stride
    taps = np.arange(kernel) * dilation
    gather_index = starts[:, None] + taps[None, :]
    # (B, C, L_out, K) -> (B, L_out, C*K): one patch row per output position.
    columns = x[:, :, gather_index].transpose(0, 2, 1, 3)
    columns_flat = columns.reshape(batch, out_length, in_channels * kernel)
    flat_weight = weight.reshape(out_channels, in_channels * kernel)
    output = columns_flat @ flat_weight.T  # (B, L_out, O)
    if bias is not None:
        output = output + bias
    return output.transpose(0, 2, 1)


def gelu_reference(x: np.ndarray) -> np.ndarray:
    """Tanh-approximated GELU (same formula as :func:`repro.nn.functional.gelu`)."""
    coefficient = math.sqrt(2.0 / math.pi)
    inner = coefficient * (x + 0.044715 * x**3)
    return 0.5 * x * (1.0 + np.tanh(inner))


def softmax_reference(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def avgpool1d_reference(x: np.ndarray, kernel_size: int, stride: int) -> np.ndarray:
    """Average pooling over the last axis of ``(batch, channels, length)``."""
    batch, channels, length = x.shape
    out_length = (length - kernel_size) // stride + 1
    output = np.zeros((batch, channels, out_length), dtype=x.dtype)
    for tap in range(kernel_size):
        output += x[:, :, tap : tap + stride * out_length : stride]
    return output / kernel_size


def layernorm_reference(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, eps: float
) -> np.ndarray:
    """Layer normalisation over the last axis with affine parameters."""
    mean = x.mean(axis=-1, keepdims=True)
    variance = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(variance + eps) * weight + bias


class FloatGraphExecutor:
    """Executes a :class:`ComputeGraph` on float32/float64 NumPy arrays."""

    def __init__(self, graph: ComputeGraph) -> None:
        self.graph = graph

    # ------------------------------------------------------------------ #
    # Single-node dispatch
    # ------------------------------------------------------------------ #
    def _run_node(self, node: GraphNode, tensors: Dict[str, np.ndarray]) -> np.ndarray:
        if node.is_fused:
            # Replay the original kernels of a fused node (see
            # repro.deploy.passes) so optimized graphs run bit-identically
            # to their source capture in the float reference too.
            local = dict(tensors)
            value = None
            for sub in node.fusion_chain:
                value = self._run_node(sub, local)
                local[sub.output.name] = value
            return value
        op = node.op
        x = tensors[node.inputs[0]]
        if op == "conv1d":
            return conv1d_reference(
                x,
                node.weights["weight"],
                node.weights.get("bias"),
                stride=int(node.attrs["stride"]),
                padding=int(node.attrs["padding"]),
                dilation=int(node.attrs["dilation"]),
            )
        if op == "linear":
            out = x @ node.weights["weight"].T
            if "bias" in node.weights:
                out = out + node.weights["bias"]
            return out
        if op == "channel_affine":
            scale = node.weights["scale"].reshape(1, -1, 1)
            shift = node.weights["shift"].reshape(1, -1, 1)
            return x * scale + shift
        if op == "layernorm":
            return layernorm_reference(
                x, node.weights["weight"], node.weights["bias"], float(node.attrs["eps"])
            )
        if op == "relu":
            return np.maximum(x, 0.0)
        if op == "gelu":
            return gelu_reference(x)
        if op == "softmax":
            return softmax_reference(x, axis=int(node.attrs.get("axis", -1)))
        if op == "matmul":
            other = tensors[node.inputs[1]]
            if node.attrs.get("transpose_b", False):
                other = np.swapaxes(other, -1, -2)
            return (x @ other) * float(node.attrs.get("scale", 1.0))
        if op == "add":
            return x + tensors[node.inputs[1]]
        if op == "append_token":
            token = node.weights["token"].reshape(1, 1, -1)
            token = np.broadcast_to(token, (x.shape[0], 1, x.shape[2]))
            return np.concatenate([x, token], axis=1)
        if op == "add_positional":
            return x + node.weights["positions"][None, :, :]
        if op == "avgpool1d":
            return avgpool1d_reference(
                x, int(node.attrs["kernel_size"]), int(node.attrs["stride"])
            )
        if op == "flatten":
            return x.reshape(x.shape[0], -1)
        if op == "split_heads":
            heads = int(node.attrs["num_heads"])
            head_dim = int(node.attrs["head_dim"])
            batch, sequence, _ = x.shape
            return x.reshape(batch, sequence, heads, head_dim).transpose(0, 2, 1, 3)
        if op == "merge_heads":
            batch, heads, sequence, head_dim = x.shape
            return x.transpose(0, 2, 1, 3).reshape(batch, sequence, heads * head_dim)
        if op == "transpose":
            axes = tuple(node.attrs["axes"])
            batch_axes = (0,) + tuple(axis + 1 for axis in axes)
            return x.transpose(batch_axes)
        if op == "select_token":
            return x[:, int(node.attrs["index"]), :]
        if op == "mean_tokens":
            return x.mean(axis=1)
        raise NotImplementedError(f"float executor does not implement '{op}'")

    # ------------------------------------------------------------------ #
    # Whole-graph execution
    # ------------------------------------------------------------------ #
    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Run the graph on a ``(batch, channels, samples)`` input batch."""
        return self.run_recording(inputs)[self.graph.output.name]

    def run_recording(self, inputs: np.ndarray) -> Dict[str, np.ndarray]:
        """Run the graph and return *every* intermediate activation.

        The returned mapping is keyed by tensor name and includes the graph
        input; it is what the int8 lowering pass calibrates on.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim == len(self.graph.graph_input.shape):
            inputs = inputs[None, ...]
        expected = self.graph.graph_input.shape
        if tuple(inputs.shape[1:]) != tuple(expected):
            raise ValueError(
                f"graph '{self.graph.name}' expects input shape {expected}, "
                f"got {tuple(inputs.shape[1:])}"
            )
        tensors: Dict[str, np.ndarray] = {self.graph.graph_input.name: inputs}
        for node in self.graph.nodes:
            tensors[node.output.name] = self._run_node(node, tensors)
        return tensors

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Class predictions (argmax over the graph output logits)."""
        return np.argmax(self.run(inputs), axis=-1)
