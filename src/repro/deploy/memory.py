"""Activation memory planning (L2 buffer allocation).

On GAP8 the 512 kB L2 memory holds the weights *and* every live activation
buffer; whether a network fits is decided by the peak of the activation
working set, not by its sum.  Deployment flows therefore run a liveness
analysis over the kernel schedule and pack activation buffers into a shared
arena so that tensors with disjoint lifetimes reuse the same bytes.

This module implements that pass for :class:`ComputeGraph` schedules:

* :func:`live_ranges` — first/last use of every activation tensor;
* :func:`plan_activation_memory` — greedy best-fit packing (largest tensors
  first) producing per-buffer offsets and the arena peak;
* :class:`MemoryPlan` — the result, with helpers used by the deployment
  report and the code generator (which emits the arena offsets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .graph import ComputeGraph

__all__ = ["LiveRange", "BufferAssignment", "MemoryPlan", "live_ranges", "plan_activation_memory"]


@dataclass(frozen=True)
class LiveRange:
    """Lifetime of one activation tensor over the node schedule.

    ``start`` is the index of the producing node (-1 for the graph input)
    and ``end`` the index of the last consuming node; the tensor's buffer
    must exist for every schedule step in ``[start, end]``.
    """

    name: str
    size_bytes: int
    start: int
    end: int

    def overlaps(self, other: "LiveRange") -> bool:
        """Whether two tensors are ever live at the same time."""
        return self.start <= other.end and other.start <= self.end


@dataclass(frozen=True)
class BufferAssignment:
    """Placement of one activation buffer inside the arena."""

    name: str
    offset: int
    size_bytes: int

    @property
    def end_offset(self) -> int:
        return self.offset + self.size_bytes


@dataclass
class MemoryPlan:
    """Result of the activation-memory planning pass."""

    graph_name: str
    assignments: List[BufferAssignment] = field(default_factory=list)
    ranges: Dict[str, LiveRange] = field(default_factory=dict)

    @property
    def peak_bytes(self) -> int:
        """Arena size required to hold every live activation."""
        return max((assignment.end_offset for assignment in self.assignments), default=0)

    @property
    def naive_bytes(self) -> int:
        """Total bytes if every activation got its own buffer (no reuse)."""
        return sum(assignment.size_bytes for assignment in self.assignments)

    @property
    def reuse_factor(self) -> float:
        """How much memory the packing saves versus naive allocation."""
        return self.naive_bytes / self.peak_bytes if self.peak_bytes else 1.0

    def offset_of(self, tensor_name: str) -> int:
        """Arena offset of a named tensor's buffer."""
        for assignment in self.assignments:
            if assignment.name == tensor_name:
                return assignment.offset
        raise KeyError(f"no buffer planned for tensor '{tensor_name}'")

    def fits(self, budget_bytes: int, weight_bytes: int = 0) -> bool:
        """Whether activations plus (optionally) weights fit a memory budget."""
        return self.peak_bytes + weight_bytes <= budget_bytes

    def summary(self) -> str:
        """Human-readable allocation table."""
        lines = [
            f"Activation memory plan for '{self.graph_name}'",
            f"{'tensor':<30}{'offset':>10}{'size':>10}{'live':>14}",
        ]
        for assignment in sorted(self.assignments, key=lambda item: item.offset):
            live = self.ranges[assignment.name]
            lines.append(
                f"{assignment.name:<30}{assignment.offset:>10}{assignment.size_bytes:>10}"
                f"{f'[{live.start},{live.end}]':>14}"
            )
        lines.append(
            f"peak = {self.peak_bytes} B, naive = {self.naive_bytes} B, "
            f"reuse = {self.reuse_factor:.2f}x"
        )
        return "\n".join(lines)


def live_ranges(graph: ComputeGraph, bytes_per_element: int = 1) -> Dict[str, LiveRange]:
    """Compute the live range of every activation tensor in ``graph``.

    Shape-only nodes (transpose, head splitting, ...) are aliases on the
    target, but they are kept as separate buffers here, which makes the plan
    slightly conservative — a safe over-estimate of the real working set.
    """
    specs = graph.tensor_specs()
    produced = {graph.graph_input.name: -1}
    last_use = {graph.graph_input.name: 0}
    for index, node in enumerate(graph.nodes):
        produced[node.output.name] = index
        last_use.setdefault(node.output.name, index)
        for tensor_name in node.inputs:
            last_use[tensor_name] = index
    # The graph output must survive the whole schedule (it is returned).
    last_use[graph.output.name] = len(graph.nodes) - 1
    ranges = {}
    for name, spec in specs.items():
        ranges[name] = LiveRange(
            name=name,
            size_bytes=spec.nbytes(bytes_per_element),
            start=produced[name],
            end=last_use[name],
        )
    return ranges


def plan_activation_memory(graph: ComputeGraph, bytes_per_element: int = 1) -> MemoryPlan:
    """Pack activation buffers into a shared arena (greedy best-fit).

    Tensors are placed in decreasing size order; each is assigned the lowest
    arena offset at which it does not overlap (in address space) with any
    already-placed tensor whose lifetime intersects its own.  This is the
    standard offset-allocation heuristic used by TFLite-Micro and DORY and
    is within a few percent of optimal for feed-forward schedules.
    """
    ranges = live_ranges(graph, bytes_per_element)
    order = sorted(ranges.values(), key=lambda item: item.size_bytes, reverse=True)
    assignments: List[BufferAssignment] = []
    placed: Dict[str, BufferAssignment] = {}

    for candidate in order:
        conflicting = [
            placed[other.name]
            for other in order
            if other.name in placed and candidate.overlaps(ranges[other.name])
        ]
        conflicting.sort(key=lambda assignment: assignment.offset)
        offset = 0
        for assignment in conflicting:
            if offset + candidate.size_bytes <= assignment.offset:
                break
            offset = max(offset, assignment.end_offset)
        chosen = BufferAssignment(candidate.name, offset, candidate.size_bytes)
        placed[candidate.name] = chosen
        assignments.append(chosen)

    return MemoryPlan(graph_name=graph.name, assignments=assignments, ranges=ranges)
