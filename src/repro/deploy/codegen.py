"""C code generation for the GAP8 target.

The final stage of the deployment flow emits self-contained C sources in the
style of the PULP-NN / transformer kernels used by the paper ("A
Microcontroller is All You Need", Burrello et al., COINS 2021):

* ``weights.h`` — every quantised constant as a ``const int8_t`` /
  ``const int32_t`` array in L2, plus the per-kernel requantisation
  multipliers and shifts;
* ``network.h`` — the inference entry point and buffer-size macros;
* ``network.c`` — one kernel invocation per graph node, reading and writing
  offsets of a single activation arena sized by the memory planner;
* ``kernels.h`` — prototypes of the kernel library the calls target.

No cross-compiler is available in this environment, so the generated code
is not built here; the test-suite instead checks its structural properties
(every node emitted, every constant array matching its quantised size,
arena size consistent with the memory plan), which is the same contract an
on-target build would rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .graph import GraphNode
from .lowering import QuantizedGraph
from .memory import MemoryPlan, plan_activation_memory

__all__ = ["GeneratedSource", "CodeGenerator", "generate_c_sources"]

_KERNEL_FOR_OP = {
    "conv1d": "net_conv1d_i8",
    "linear": "net_linear_i8",
    "channel_affine": "net_channel_affine_i8",
    "layernorm": "net_layernorm_i8",
    "relu": "net_relu_i8",
    "gelu": "net_gelu_i8",
    "softmax": "net_softmax_i8",
    "matmul": "net_matmul_i8",
    "add": "net_add_i8",
    "append_token": "net_append_token_i8",
    "add_positional": "net_add_positional_i8",
    "avgpool1d": "net_avgpool1d_i8",
    "flatten": "net_copy_i8",
    "split_heads": "net_copy_i8",
    "merge_heads": "net_copy_i8",
    "transpose": "net_transpose_i8",
    "select_token": "net_copy_i8",
    "mean_tokens": "net_mean_tokens_i8",
}

#: Table-driven variants used when the lowered node carries a LookupTable:
#: the GELU kernel is one gather per element, the softmax kernel gathers the
#: tabulated exp and keeps the integer sum/normalise/requantise tail.
_LUT_KERNEL_FOR_OP = {
    "gelu": "net_gelu_lut_i8",
    "softmax": "net_softmax_lut_i8",
}

#: GEMM-schedule variants used when the lowered node carries a
#: :class:`~repro.deploy.lowering.GemmTileInfo`: conv1d runs as im2col plus
#: one integer matmul, linear/matmul as a single (M, K) x (K, N) GEMM with
#: the requantisation applied once per output tile.  Numerics are identical
#: to the legacy kernels (integer arithmetic is exact; same multiplier and
#: shift macros) — only the loop schedule changes.
_GEMM_KERNEL_FOR_OP = {
    "conv1d": "net_conv1d_im2col_i8",
    "linear": "net_linear_gemm_i8",
    "matmul": "net_matmul_gemm_i8",
}

#: Name fragment appended per absorbed kernel when the compiler's fusion
#: passes (:mod:`repro.deploy.passes`) folded elementwise tails / pooling
#: into a MAC node: ``net_conv1d_im2col_affine_relu_pool_i8`` runs the conv
#: GEMM and applies BN-affine, ReLU and the average pool on the output tile
#: before it leaves L1.  The fused kernels consume the same per-stage
#: multiplier/shift macros as their standalone peers (fusion never collapses
#: requantisation stages — that would double-round), so numerics are pinned.
_FUSED_TAG_FOR_OP = {
    "channel_affine": "affine",
    "relu": "relu",
    "gelu": "gelu",
    "avgpool1d": "pool",
}


@dataclass
class GeneratedSource:
    """One generated source file."""

    filename: str
    content: str

    @property
    def lines(self) -> int:
        return self.content.count("\n") + 1


def _sanitize(name: str) -> str:
    """Turn a graph tensor/node name into a valid C identifier."""
    return name.replace(".", "_").replace("-", "_")


def _format_array(values: np.ndarray, per_line: int = 16) -> str:
    """Render a flat integer array as a C initialiser list."""
    flat = values.reshape(-1).tolist()
    chunks = []
    for start in range(0, len(flat), per_line):
        chunk = ", ".join(str(int(value)) for value in flat[start : start + per_line])
        chunks.append("    " + chunk)
    return ",\n".join(chunks)


class CodeGenerator:
    """Generates the C deployment bundle for an int8-lowered graph.

    Parameters
    ----------
    quantized:
        The int8-lowered graph (with or without lookup tables).
    memory_plan:
        Activation arena plan; computed from the graph when omitted.
    use_lut:
        ``None``/``True`` schedules the table-driven nonlinearity kernels
        (``net_gelu_lut_i8`` / ``net_softmax_lut_i8``) for every node that
        carries a :class:`~repro.deploy.graph.LookupTable` and emits the
        tables into ``weights.h``; ``False`` emits the legacy elementwise
        kernel schedule even when tables are present.
    use_gemm:
        ``None``/``True`` schedules the im2col/GEMM MAC kernels
        (``net_conv1d_im2col_i8`` / ``net_linear_gemm_i8`` /
        ``net_matmul_gemm_i8``) for every node that carries a
        :class:`~repro.deploy.lowering.GemmTileInfo` and emits the tile
        ``_GEMM_M/_K/_N`` macros into ``weights.h``; ``False`` keeps the
        legacy per-op kernel names.  Either way the numerics are pinned:
        both schedules consume the same multiplier/shift macros.
    """

    def __init__(
        self,
        quantized: QuantizedGraph,
        memory_plan: Optional[MemoryPlan] = None,
        use_lut: Optional[bool] = None,
        use_gemm: Optional[bool] = None,
    ) -> None:
        self.quantized = quantized
        self.graph = quantized.graph
        self.use_lut = use_lut is None or bool(use_lut)
        self.use_gemm = use_gemm is None or bool(use_gemm)
        self.memory_plan = (
            memory_plan if memory_plan is not None else plan_activation_memory(self.graph)
        )

    def _kernel_single(self, node: GraphNode) -> str:
        """The kernel implementing one unfused kernel under the active op set."""
        lowered = self.quantized.nodes[node.name]
        if self.use_lut and lowered.luts:
            return _LUT_KERNEL_FOR_OP[node.op]
        if self.use_gemm and lowered.gemm is not None and node.op in _GEMM_KERNEL_FOR_OP:
            return _GEMM_KERNEL_FOR_OP[node.op]
        return _KERNEL_FOR_OP[node.op]

    def _kernel_for(self, node: GraphNode) -> str:
        """The kernel implementing ``node`` under the active op set.

        A fused node names a fused kernel: the base kernel's stem plus one
        tag per absorbed kernel (``_affine`` / ``_relu`` / ``_gelu[_lut]`` /
        ``_pool``), in chain order.
        """
        if not node.is_fused:
            return self._kernel_single(node)
        chain = node.fusion_chain
        base = self._kernel_single(chain[0])
        tags = []
        for sub in chain[1:]:
            tag = _FUSED_TAG_FOR_OP[sub.op]
            if sub.op == "gelu" and self.use_lut and self.quantized.nodes[sub.name].luts:
                tag = "gelu_lut"
            tags.append(tag)
        stem = base[: -len("_i8")] if base.endswith("_i8") else base
        return stem + "_" + "_".join(tags) + "_i8"

    # ------------------------------------------------------------------ #
    # Individual files
    # ------------------------------------------------------------------ #
    def weights_header(self) -> GeneratedSource:
        """``weights.h`` — quantised constants and requantisation factors."""
        lines: List[str] = [
            "/* Auto-generated by repro.deploy.codegen - quantised constants. */",
            "#ifndef NETWORK_WEIGHTS_H",
            "#define NETWORK_WEIGHTS_H",
            "",
            "#include <stdint.h>",
            "",
        ]
        for node_name, lowered in self.quantized.nodes.items():
            identifier = _sanitize(node_name)
            for role, constant in lowered.constants.items():
                ctype = "int8_t" if constant.dtype == "int8" else "int32_t"
                array_name = f"{identifier}_{role}"
                values = np.round(constant.values).astype(np.int64)
                lines.append(
                    f"static const {ctype} {array_name}[{values.size}] = {{"
                )
                lines.append(_format_array(values))
                lines.append("};")
                lines.append(
                    f"#define {array_name.upper()}_SCALE {constant.scale:.10e}f"
                )
                lines.append("")
            if self.use_lut:
                for role, table in lowered.luts.items():
                    ctype = "int8_t" if table.dtype == "int8" else "int32_t"
                    array_name = f"{identifier}_lut_{role}"
                    lines.append(
                        f"static const {ctype} {array_name}[{table.size}] = {{"
                    )
                    lines.append(_format_array(np.asarray(table.values, dtype=np.int64)))
                    lines.append("};")
                    lines.append(
                        f"#define {array_name.upper()}_DOMAIN_MIN {table.domain_min}"
                    )
                    lines.append("")
            for role, (multiplier, shift) in lowered.requantizers.items():
                prefix = f"{identifier}_{role}".upper()
                lines.append(f"#define {prefix}_MULTIPLIER {multiplier}")
                lines.append(f"#define {prefix}_SHIFT {shift}")
            if self.use_gemm and lowered.gemm is not None:
                prefix = identifier.upper()
                lines.append(f"#define {prefix}_GEMM_M {lowered.gemm.m}")
                lines.append(f"#define {prefix}_GEMM_K {lowered.gemm.k}")
                lines.append(f"#define {prefix}_GEMM_N {lowered.gemm.n}")
            lines.append("")
        lines.append("#endif /* NETWORK_WEIGHTS_H */")
        return GeneratedSource("weights.h", "\n".join(lines) + "\n")

    def kernels_header(self) -> GeneratedSource:
        """``kernels.h`` — prototypes of the int8 kernel library."""
        lines = [
            "/* Auto-generated by repro.deploy.codegen - kernel library API. */",
            "#ifndef NETWORK_KERNELS_H",
            "#define NETWORK_KERNELS_H",
            "",
            "#include <stdint.h>",
            "",
            "/* Every kernel reads int8 activations, accumulates in int32 and",
            " * requantises with a fixed-point multiplier/shift pair, matching",
            " * the integer executor in repro.deploy.int_engine.  The _lut_",
            " * variants gather a precomputed table (see weights.h) instead of",
            " * evaluating the I-BERT polynomials per element.  The _gemm_ /",
            " * _im2col_ variants run the same MACs as their per-op peers but",
            " * as one (M, K) x (K, N) integer matmul per node, requantising",
            " * once per output tile (see the _GEMM_M/_K/_N macros).  Fused",
            " * variants (tags _affine/_relu/_gelu[_lut]/_pool appended by the",
            " * compiler's fusion passes) apply the absorbed kernels on the",
            " * output tile in L1 using the same per-stage macros. */",
        ]
        declared = (
            set(_KERNEL_FOR_OP.values())
            | set(_LUT_KERNEL_FOR_OP.values())
            | set(_GEMM_KERNEL_FOR_OP.values())
        )
        # Fused kernels are graph-specific: declare exactly the ones the
        # schedule calls.
        for node in self.graph.nodes:
            if node.is_fused:
                declared.add(self._kernel_for(node))
        for kernel in sorted(declared):
            lines.append(
                f"void {kernel}(const int8_t *input, int8_t *output, const void *params);"
            )
        lines += ["", "#endif /* NETWORK_KERNELS_H */"]
        return GeneratedSource("kernels.h", "\n".join(lines) + "\n")

    def network_header(self) -> GeneratedSource:
        """``network.h`` — public inference API and buffer sizes."""
        arena = self.memory_plan.peak_bytes
        input_spec = self.graph.graph_input
        output_spec = self.graph.output
        lines = [
            "/* Auto-generated by repro.deploy.codegen - inference entry point. */",
            "#ifndef NETWORK_H",
            "#define NETWORK_H",
            "",
            "#include <stdint.h>",
            "",
            f"#define NETWORK_NAME \"{self.graph.name}\"",
            f"#define NETWORK_INPUT_SIZE {input_spec.num_elements}",
            f"#define NETWORK_OUTPUT_SIZE {output_spec.num_elements}",
            f"#define NETWORK_ARENA_BYTES {arena}",
            f"#define NETWORK_WEIGHT_BYTES {self.quantized.total_weight_bytes}",
            f"#define NETWORK_LUT_BYTES "
            f"{self.quantized.total_lut_bytes if self.use_lut else 0}",
            f"#define NETWORK_INPUT_SCALE {self.quantized.input_quantization.scale:.10e}f",
            f"#define NETWORK_OUTPUT_SCALE {self.quantized.output_quantization.scale:.10e}f",
            "",
            "/* Runs one inference: `input` holds NETWORK_INPUT_SIZE int8 values",
            " * quantised with NETWORK_INPUT_SCALE, `arena` is a scratch buffer of",
            " * NETWORK_ARENA_BYTES, and the int8 logits are written to `output`. */",
            "void network_run(const int8_t *input, int8_t *output, int8_t *arena);",
            "",
            "#endif /* NETWORK_H */",
        ]
        return GeneratedSource("network.h", "\n".join(lines) + "\n")

    def network_source(self) -> GeneratedSource:
        """``network.c`` — the kernel schedule over the activation arena."""
        lines = [
            "/* Auto-generated by repro.deploy.codegen - kernel schedule. */",
            "#include \"network.h\"",
            "#include \"kernels.h\"",
            "#include \"weights.h\"",
            "",
            "void network_run(const int8_t *input, int8_t *output, int8_t *arena)",
            "{",
        ]
        input_name = self.graph.graph_input.name
        for node in self.graph.nodes:
            kernel = self._kernel_for(node)
            source = node.inputs[0]
            source_expr = (
                "input"
                if source == input_name
                else f"arena + {self.memory_plan.offset_of(source)}"
            )
            if node.output.name == self.graph.output.name:
                destination_expr = "output"
            else:
                destination_expr = f"arena + {self.memory_plan.offset_of(node.output.name)}"
            described_op = (
                "+".join(sub.op for sub in node.fusion_chain)
                if node.is_fused
                else node.op
            )
            comment = f"/* {node.name}: {described_op} -> {list(node.output.shape)} */"
            lines.append(f"    {comment}")
            lines.append(
                f"    {kernel}((const int8_t *)({source_expr}), "
                f"(int8_t *)({destination_expr}), 0);"
            )
        lines += ["}", ""]
        return GeneratedSource("network.c", "\n".join(lines))

    # ------------------------------------------------------------------ #
    # Bundle
    # ------------------------------------------------------------------ #
    def generate(self) -> Dict[str, GeneratedSource]:
        """Generate the full bundle, keyed by filename."""
        sources = [
            self.weights_header(),
            self.kernels_header(),
            self.network_header(),
            self.network_source(),
        ]
        return {source.filename: source for source in sources}

    def write(self, directory: str) -> List[str]:
        """Write the bundle to ``directory`` and return the written paths."""
        import os

        os.makedirs(directory, exist_ok=True)
        written = []
        for source in self.generate().values():
            path = os.path.join(directory, source.filename)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(source.content)
            written.append(path)
        return written


def generate_c_sources(
    quantized: QuantizedGraph,
    memory_plan: Optional[MemoryPlan] = None,
    use_lut: Optional[bool] = None,
    use_gemm: Optional[bool] = None,
) -> Dict[str, GeneratedSource]:
    """One-call code generation for an int8-lowered graph."""
    return CodeGenerator(quantized, memory_plan, use_lut=use_lut, use_gemm=use_gemm).generate()
