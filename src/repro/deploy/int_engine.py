"""Integer-only execution of int8-lowered graphs (the GAP8 numerics).

This is the bit-level counterpart of what the generated C code runs on the
GAP8 cluster: int8 activations and weights, int32 accumulators, fixed-point
requantisation between kernels, and I-BERT integer approximations for the
transformer non-linearities (softmax, GELU, LayerNorm).

When the lowered graph carries precomputed lookup tables
(:class:`~repro.deploy.graph.LookupTable`, emitted by ``lower_to_int8`` by
default), the GELU and softmax-``exp`` nonlinearities execute as a single
vectorised ``np.take`` instead of replaying the I-BERT polynomials per
element.  Both paths are bit-identical over the full representable input
domain (the tables are built from the elementwise kernels, and the
test-suite pins the equality exhaustively); ``use_lut=False`` forces the
legacy elementwise path for cross-checking.

The MAC-heavy operators (``conv1d``, ``linear``, ``matmul``) execute by
default through a shared batched GEMM primitive (:func:`int_gemm`):
``conv1d`` is lowered to im2col + one integer matmul per layer across the
whole micro-batch, and the fixed-point requantisation is applied once per
output tile with the multiplier/shift pair precomputed at lowering time
(:class:`~repro.deploy.lowering.GemmTileInfo`).  Integer arithmetic is
exact, so the GEMM path is bit-identical to the legacy per-op strided
einsum kernels by construction — and the test-suite pins that equality per
shape; ``use_gemm=False`` keeps the einsum path alive for cross-checking.

The executor is an *emulator*: it exists so the quantised accuracy reported
in Table I, the generated weights and the requantisation constants can all
be validated end-to-end on the host before any code ever reaches the MCU —
which is exactly how MCU deployment flows are qualified in practice.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..quant import ibert
from .graph import GraphNode
from .lowering import (
    ActivationQuantization,
    QuantizedGraph,
    QuantizedNode,
    quantize_multiplier,
)

__all__ = ["IntegerGraphExecutor", "apply_requant", "int_gemm", "requantize"]

_INT8_MIN = -128
_INT8_MAX = 127

_INT64_MAX = np.iinfo(np.int64).max

#: Largest integer magnitude float64 represents exactly (2**53).  Below this
#: bound a float64 GEMM over integer operands is *exact*: every product and
#: every partial sum is an integer with an exact float64 representation, so
#: no rounding can occur at any accumulation order.
_EXACT_FLOAT_GEMM_LIMIT = float(2**53)


def _gemm_accumulate(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Integer matmul with int64 semantics, routed through BLAS when exact.

    NumPy has no vectorised integer matmul (int64 ``@`` falls back to slow
    generic loops), but a float64 GEMM over integer operands is bit-exact
    whenever ``K * max|lhs| * max|rhs|`` stays below 2**53: each product and
    each running partial sum is then an integer that float64 represents
    exactly, so BLAS reassociation cannot round.  int8-grid operands clear
    that bound by ~9 orders of magnitude; anything larger (or empty) falls
    back to the exact-by-definition int64 path.
    """
    k = lhs.shape[-1]
    lhs_peak = float(np.abs(lhs).max()) if lhs.size else 0.0
    rhs_peak = float(np.abs(rhs).max()) if rhs.size else 0.0
    if k * lhs_peak * rhs_peak < _EXACT_FLOAT_GEMM_LIMIT:
        product = lhs.astype(np.float64) @ rhs.astype(np.float64)
        return product.astype(np.int64)
    return lhs.astype(np.int64) @ rhs.astype(np.int64)


def apply_requant(
    values: np.ndarray,
    multiplier: int,
    shift: int,
    qmin: int = _INT8_MIN,
    qmax: int = _INT8_MAX,
) -> np.ndarray:
    """Apply an already-encoded fixed-point requantiser to accumulators.

    This is the per-tile half of :func:`requantize`: the caller supplies the
    ``(multiplier, shift)`` pair (precomputed at lowering time, or memoised
    by the executor), so one encoded requantiser is reused across every
    invocation of the kernel instead of re-running the encoding loops of
    :func:`~repro.deploy.lowering.quantize_multiplier` per call.
    """
    scaled = values.astype(np.int64) * multiplier
    if shift > 0:
        rounding = np.int64(1) << (shift - 1)
        scaled = (scaled + rounding) >> shift
    elif shift < 0:
        left = -shift
        # Left shifts occur only for extreme (>~2) requantisation factors.
        # A saturating value would overflow int64 and wrap sign; clipping
        # to [qmin, qmax] *before* the shift is exact, because the final
        # clip is monotone and qmin <= 0 <= qmax: any value outside the
        # grid before scaling up lands on the same bound after it.
        scaled = np.clip(scaled, qmin, qmax)
        if (int(max(abs(qmin), abs(qmax))) << left) > _INT64_MAX:
            # The shift alone exceeds int64: every non-zero value saturates.
            scaled = np.where(scaled > 0, qmax, np.where(scaled < 0, qmin, 0))
        else:
            scaled = scaled << np.int64(left)
    return np.clip(scaled, qmin, qmax).astype(np.int32)


def requantize(
    values: np.ndarray,
    factor: float,
    qmin: int = _INT8_MIN,
    qmax: int = _INT8_MAX,
) -> np.ndarray:
    """Rescale integer accumulators by ``factor`` using fixed-point arithmetic.

    ``factor`` is encoded as a 31-bit multiplier plus arithmetic shift (see
    :func:`repro.deploy.lowering.quantize_multiplier`), the result is
    rounded, clipped to ``[qmin, qmax]`` and returned as ``int32`` — the same
    sequence of operations the generated C kernels perform.

    A negative ``factor`` (the I-BERT polynomial kernels track the sign in
    the scale) is handled by negating the accumulators first.
    """
    if factor < 0:
        values = -np.asarray(values)
        factor = -factor
    multiplier, shift = quantize_multiplier(factor)
    return apply_requant(np.asarray(values), multiplier, shift, qmin, qmax)


def int_gemm(
    lhs: np.ndarray,
    rhs: np.ndarray,
    bias: Optional[np.ndarray] = None,
    requant: Optional[Tuple[int, int, int, int]] = None,
) -> np.ndarray:
    """Shared integer GEMM primitive: ``lhs @ rhs`` with int64 accumulation.

    ``lhs`` is ``(..., M, K)`` and ``rhs`` ``(K, N)`` (or ``(..., K, N)``
    for stacked batched multiplies); both are upcast to int64 so the whole
    contraction runs as a single integer matmul — this is the kernel the
    im2col'd ``conv1d``, ``linear`` and attention ``matmul`` paths all
    lower onto.  ``bias`` (int64, broadcast over the trailing axis) is
    added to the accumulator, and ``requant`` — a
    ``(multiplier, shift, qmin, qmax)`` tile — applies the fixed-point
    output requantisation once over the full output tile.  Without
    ``requant`` the raw int64 accumulator is returned.

    The contraction itself runs through BLAS whenever that is provably
    exact for the operand ranges (see :func:`_gemm_accumulate`) — int8-grid
    inputs always qualify — which is where the GEMM schedule's speedup
    over the per-op integer einsum kernels comes from.
    """
    accumulator = _gemm_accumulate(lhs, rhs)
    if bias is not None:
        accumulator = accumulator + bias
    if requant is None:
        return accumulator
    multiplier, shift, qmin, qmax = requant
    return apply_requant(accumulator, multiplier, shift, qmin, qmax)


def _im2col(
    q_x: np.ndarray, kernel: int, stride: int, padding: int, dilation: int
) -> np.ndarray:
    """Lower a ``(B, C, L)`` activation to im2col patches ``(B, L_out, C*K)``.

    One fancy-indexed gather builds every ``(output position, tap)`` pair,
    so the convolution becomes a single GEMM against the flattened
    ``(O, C*K)`` weight matrix.  Same index arithmetic as the float
    framework convolution (:func:`repro.nn.functional.conv1d`).
    """
    if padding > 0:
        q_x = np.pad(q_x, ((0, 0), (0, 0), (padding, padding)))
    batch, channels, length = q_x.shape
    effective = dilation * (kernel - 1) + 1
    out_length = (length - effective) // stride + 1
    starts = np.arange(out_length) * stride
    taps = np.arange(kernel) * dilation
    gather_index = starts[:, None] + taps[None, :]
    # (B, C, L_out, K) -> (B, L_out, C, K) -> (B, L_out, C*K)
    columns = q_x[:, :, gather_index].transpose(0, 2, 1, 3)
    return columns.reshape(batch, out_length, channels * kernel)


class IntegerGraphExecutor:
    """Executes a :class:`QuantizedGraph` with integer-only arithmetic.

    Parameters
    ----------
    quantized:
        The int8-lowered graph to replay.
    use_lut:
        ``None`` (default) runs each nonlinearity through its precomputed
        lookup table whenever the lowered node carries one, falling back to
        the elementwise I-BERT kernels otherwise.  ``False`` forces the
        legacy elementwise path even when tables are present (the
        cross-checking baseline); ``True`` behaves like ``None`` — a graph
        lowered with ``use_lut=False`` simply has no tables to use.
    use_gemm:
        ``None``/``True`` (default) executes ``conv1d`` (via im2col),
        ``linear`` and ``matmul`` through the shared :func:`int_gemm`
        primitive — one integer matmul per layer across the whole
        micro-batch, with the requantiser tile precomputed at lowering
        time.  ``False`` keeps the legacy strided-einsum kernels with
        per-call requantiser encoding (the cross-checking baseline).
        Integer arithmetic is exact, so both paths are bit-identical.
    """

    def __init__(
        self,
        quantized: QuantizedGraph,
        use_lut: Optional[bool] = None,
        use_gemm: Optional[bool] = None,
    ) -> None:
        self.quantized = quantized
        self.graph = quantized.graph
        self.use_lut = use_lut is None or bool(use_lut)
        self.use_gemm = use_gemm is None or bool(use_gemm)
        # Requantiser memo: factor -> (multiplier, shift).  The MAC nodes
        # carry their encoded requantiser from lowering (GemmTileInfo); the
        # remaining ops (avgpool, mean, the I-BERT tails) compute factors
        # at runtime, so the encoding loops of ``quantize_multiplier`` are
        # paid once per distinct factor instead of once per invocation.
        self._multiplier_cache: Dict[float, Tuple[int, int]] = {}

    @property
    def uses_luts(self) -> bool:
        """Whether any node will execute through a lookup table."""
        return self.use_lut and self.quantized.uses_luts

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _activation(self, tensor_name: str) -> ActivationQuantization:
        return self.quantized.activations[tensor_name]

    def _encode_multiplier(self, factor: float) -> Tuple[int, int]:
        """Memoised :func:`quantize_multiplier` (positive factors only)."""
        cached = self._multiplier_cache.get(factor)
        if cached is None:
            cached = quantize_multiplier(factor)
            self._multiplier_cache[factor] = cached
        return cached

    def _requant_to(self, values: np.ndarray, in_scale: float, tensor_name: str) -> np.ndarray:
        out = self._activation(tensor_name)
        factor = in_scale / out.scale
        values = np.asarray(values)
        if factor < 0:
            values, factor = -values, -factor
        multiplier, shift = self._encode_multiplier(factor)
        return apply_requant(values, multiplier, shift, out.qmin, out.qmax)

    def _gemm_requant(
        self, lowered: QuantizedNode, out_name: str, factor: float
    ) -> Tuple[int, int, int, int]:
        """The ``(multiplier, shift, qmin, qmax)`` tile of a GEMM node.

        Prefers the requantiser precomputed at lowering time
        (:class:`~repro.deploy.lowering.GemmTileInfo`); the runtime
        ``factor`` fallback encodes the identical float expression, so both
        sources yield the same fixed-point pair.
        """
        out = self._activation(out_name)
        tile = lowered.gemm
        if tile is not None:
            return (tile.multiplier, tile.shift, out.qmin, out.qmax)
        multiplier, shift = self._encode_multiplier(factor / out.scale)
        return (multiplier, shift, out.qmin, out.qmax)

    # ------------------------------------------------------------------ #
    # Single-node dispatch
    # ------------------------------------------------------------------ #
    def _run_node(self, node: GraphNode, tensors: Dict[str, np.ndarray]) -> np.ndarray:
        if node.is_fused:
            # A fused node (see repro.deploy.passes) replays its original
            # kernel chain with the per-stage requantisers intact — the
            # payloads of absorbed nodes stay in ``quantized.nodes`` — so
            # fusion is bitwise-identical by construction.  Intermediates
            # live only in the local scope (on target: registers/L1).
            local = dict(tensors)
            value = None
            for sub in node.fusion_chain:
                value = self._run_node(sub, local)
                local[sub.output.name] = value
            return value
        lowered = self.quantized.nodes[node.name]
        op = node.op
        q_x = tensors[node.inputs[0]]
        in_scale = self._activation(node.inputs[0]).scale
        out_name = node.output.name
        out_scale = self._activation(out_name).scale

        if op == "conv1d":
            weight = lowered.constants["weight"]
            bias = lowered.constants.get("bias")
            if self.use_gemm:
                out_channels, in_channels, kernel = weight.values.shape
                patches = _im2col(
                    q_x,
                    kernel,
                    stride=int(node.attrs["stride"]),
                    padding=int(node.attrs["padding"]),
                    dilation=int(node.attrs["dilation"]),
                )
                batch, out_length, patch_dim = patches.shape
                flat_weight = weight.values.reshape(out_channels, patch_dim)
                quantized = int_gemm(
                    patches.reshape(batch * out_length, patch_dim),
                    flat_weight.T,
                    bias=bias.values if bias is not None else None,
                    requant=self._gemm_requant(
                        lowered, out_name, in_scale * weight.scale
                    ),
                )
                return quantized.reshape(batch, out_length, out_channels).transpose(0, 2, 1)
            accumulator = _int_conv1d(
                q_x,
                weight.values,
                stride=int(node.attrs["stride"]),
                padding=int(node.attrs["padding"]),
                dilation=int(node.attrs["dilation"]),
            )
            if bias is not None:
                accumulator += bias.values.reshape(1, -1, 1)
            return self._requant_to(accumulator, in_scale * weight.scale, out_name)

        if op == "linear":
            weight = lowered.constants["weight"]
            bias = lowered.constants.get("bias")
            if self.use_gemm:
                out_features, in_features = weight.values.shape
                lead = q_x.shape[:-1]
                quantized = int_gemm(
                    q_x.reshape(-1, in_features),
                    weight.values.T,
                    bias=bias.values if bias is not None else None,
                    requant=self._gemm_requant(
                        lowered, out_name, in_scale * weight.scale
                    ),
                )
                return quantized.reshape(lead + (out_features,))
            accumulator = q_x.astype(np.int64) @ weight.values.T.astype(np.int64)
            if bias is not None:
                accumulator += bias.values
            return self._requant_to(accumulator, in_scale * weight.scale, out_name)

        if op == "channel_affine":
            scale_const = lowered.constants["scale"]
            shift_const = lowered.constants["shift"]
            accumulator = q_x.astype(np.int64) * scale_const.values.reshape(1, -1, 1)
            accumulator += shift_const.values.reshape(1, -1, 1)
            return self._requant_to(accumulator, in_scale * scale_const.scale, out_name)

        if op == "matmul":
            q_other = tensors[node.inputs[1]]
            other_scale = self._activation(node.inputs[1]).scale
            if node.attrs.get("transpose_b", False):
                q_other = np.swapaxes(q_other, -1, -2)
            factor = in_scale * other_scale * float(node.attrs.get("scale", 1.0))
            if self.use_gemm:
                # Fold the leading (batch, heads) axes into one stacked GEMM
                # so the whole micro-batch contracts in a single matmul.
                lead = q_x.shape[:-2]
                quantized = int_gemm(
                    q_x.reshape((-1,) + q_x.shape[-2:]),
                    q_other.reshape((-1,) + q_other.shape[-2:]),
                    requant=self._gemm_requant(lowered, out_name, factor),
                )
                return quantized.reshape(lead + quantized.shape[-2:])
            accumulator = q_x.astype(np.int64) @ q_other.astype(np.int64)
            return self._requant_to(accumulator, factor, out_name)

        if op == "add":
            q_other = tensors[node.inputs[1]]
            other_scale = self._activation(node.inputs[1]).scale
            lhs = self._requant_to(q_x.astype(np.int64), in_scale, out_name)
            rhs = self._requant_to(q_other.astype(np.int64), other_scale, out_name)
            out = self._activation(out_name)
            return np.clip(lhs + rhs, out.qmin, out.qmax).astype(np.int32)

        if op == "append_token":
            token = lowered.constants["token"].values.reshape(1, 1, -1)
            rescaled = self._requant_to(q_x.astype(np.int64), in_scale, out_name)
            token = np.broadcast_to(token, (rescaled.shape[0], 1, rescaled.shape[2]))
            return np.concatenate([rescaled, token.astype(np.int32)], axis=1)

        if op == "add_positional":
            positions = lowered.constants["positions"].values[None, :, :]
            rescaled = self._requant_to(q_x.astype(np.int64), in_scale, out_name)
            out = self._activation(out_name)
            return np.clip(rescaled + positions, out.qmin, out.qmax).astype(np.int32)

        if op == "relu":
            return self._requant_to(np.maximum(q_x, 0).astype(np.int64), in_scale, out_name)

        if op == "gelu":
            table = lowered.luts.get("gelu") if self.use_lut else None
            if table is not None:
                # The table already fuses the polynomial and the output
                # requantisation: one gather per element.
                return table.take(q_x).astype(np.int32)
            q_out, gelu_scale = ibert.integer_gelu(q_x.astype(np.int64), in_scale)
            return self._requant_to(q_out, gelu_scale, out_name)

        if op == "softmax":
            axis = int(node.attrs.get("axis", -1))
            table = lowered.luts.get("exp") if self.use_lut else None
            if table is not None:
                q = q_x.astype(np.int64)
                shifted = q - q.max(axis=axis, keepdims=True)
                q_exp = table.take(shifted)
                total = np.maximum(q_exp.sum(axis=axis, keepdims=True), 1)
                factor = np.int64(1) << ibert.SOFTMAX_OUTPUT_BITS
                q_out = (q_exp * factor) // total
                return self._requant_to(q_out, 1.0 / float(factor), out_name)
            q_out, softmax_scale = ibert.integer_softmax(
                q_x.astype(np.int64), in_scale, axis=axis
            )
            return self._requant_to(q_out, softmax_scale, out_name)

        if op == "layernorm":
            weight = lowered.constants["weight"].values
            bias = lowered.constants["bias"].values
            q_out, ln_scale = ibert.integer_layernorm(q_x.astype(np.int64), in_scale, weight, bias)
            return self._requant_to(q_out, ln_scale, out_name)

        if op == "avgpool1d":
            kernel = int(node.attrs["kernel_size"])
            stride = int(node.attrs["stride"])
            # One strided gather over all taps: (B, C, out_length, kernel).
            windows = np.lib.stride_tricks.sliding_window_view(q_x, kernel, axis=-1)
            accumulator = windows[:, :, ::stride, :].astype(np.int64).sum(axis=-1)
            return self._requant_to(accumulator, in_scale / kernel, out_name)

        if op == "mean_tokens":
            accumulator = q_x.astype(np.int64).sum(axis=1)
            return self._requant_to(accumulator, in_scale / q_x.shape[1], out_name)

        if op == "flatten":
            return q_x.reshape(q_x.shape[0], -1)
        if op == "split_heads":
            heads = int(node.attrs["num_heads"])
            head_dim = int(node.attrs["head_dim"])
            batch, sequence, _ = q_x.shape
            return q_x.reshape(batch, sequence, heads, head_dim).transpose(0, 2, 1, 3)
        if op == "merge_heads":
            batch, heads, sequence, head_dim = q_x.shape
            return q_x.transpose(0, 2, 1, 3).reshape(batch, sequence, heads * head_dim)
        if op == "transpose":
            axes = tuple(node.attrs["axes"])
            return q_x.transpose((0,) + tuple(axis + 1 for axis in axes))
        if op == "select_token":
            return q_x[:, int(node.attrs["index"]), :]
        raise NotImplementedError(f"integer executor does not implement '{op}'")

    # ------------------------------------------------------------------ #
    # Whole-graph execution
    # ------------------------------------------------------------------ #
    def run_integer(self, inputs: np.ndarray) -> np.ndarray:
        """Run the graph; returns the *integer* logits (int8 grid)."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim == len(self.graph.graph_input.shape):
            inputs = inputs[None, ...]
        input_quant = self.quantized.input_quantization
        tensors: Dict[str, np.ndarray] = {
            self.graph.graph_input.name: input_quant.quantize(inputs)
        }
        for node in self.graph.nodes:
            tensors[node.output.name] = self._run_node(node, tensors)
        return tensors[self.graph.output.name]

    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Run the graph and return dequantised (float) logits."""
        integer_logits = self.run_integer(inputs)
        return self.quantized.output_quantization.dequantize(integer_logits)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Class predictions of the integer-only inference path."""
        return np.argmax(self.run_integer(inputs), axis=-1)

    def agreement_with_float(self, inputs: np.ndarray) -> float:
        """Fraction of inputs where int8 and float inference agree on the class."""
        from .engine import FloatGraphExecutor

        float_predictions = FloatGraphExecutor(self.graph).predict(inputs)
        integer_predictions = self.predict(inputs)
        return float(np.mean(float_predictions == integer_predictions))


def _int_conv1d(
    q_x: np.ndarray,
    q_weight: np.ndarray,
    stride: int,
    padding: int,
    dilation: int,
) -> np.ndarray:
    """Integer 1-D convolution with int64 accumulation.

    Vectorised over the kernel dimension: a single strided view gathers
    every ``(output position, tap)`` pair and one integer ``einsum``
    contracts channels and taps at once.  Integer arithmetic is exact, so
    the result is identical to the per-tap accumulation loop it replaced
    (the test-suite pins this equality).
    """
    q_x = q_x.astype(np.int64)
    q_weight = q_weight.astype(np.int64)
    kernel = q_weight.shape[-1]
    if padding > 0:
        q_x = np.pad(q_x, ((0, 0), (0, 0), (padding, padding)))
    effective = dilation * (kernel - 1) + 1
    # (B, C, out_length, kernel): output positions stride the signal, taps
    # sample each window every `dilation` samples.
    windows = np.lib.stride_tricks.sliding_window_view(q_x, effective, axis=-1)
    windows = windows[:, :, ::stride, ::dilation]
    return np.einsum("bclk,ock->bol", windows, q_weight)
