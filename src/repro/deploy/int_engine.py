"""Integer-only execution of int8-lowered graphs (the GAP8 numerics).

This is the bit-level counterpart of what the generated C code runs on the
GAP8 cluster: int8 activations and weights, int32 accumulators, fixed-point
requantisation between kernels, and I-BERT integer approximations for the
transformer non-linearities (softmax, GELU, LayerNorm).

When the lowered graph carries precomputed lookup tables
(:class:`~repro.deploy.graph.LookupTable`, emitted by ``lower_to_int8`` by
default), the GELU and softmax-``exp`` nonlinearities execute as a single
vectorised ``np.take`` instead of replaying the I-BERT polynomials per
element.  Both paths are bit-identical over the full representable input
domain (the tables are built from the elementwise kernels, and the
test-suite pins the equality exhaustively); ``use_lut=False`` forces the
legacy elementwise path for cross-checking.

The executor is an *emulator*: it exists so the quantised accuracy reported
in Table I, the generated weights and the requantisation constants can all
be validated end-to-end on the host before any code ever reaches the MCU —
which is exactly how MCU deployment flows are qualified in practice.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..quant import ibert
from .graph import GraphNode
from .lowering import ActivationQuantization, QuantizedGraph, quantize_multiplier

__all__ = ["IntegerGraphExecutor", "requantize"]

_INT8_MIN = -128
_INT8_MAX = 127


def requantize(
    values: np.ndarray,
    factor: float,
    qmin: int = _INT8_MIN,
    qmax: int = _INT8_MAX,
) -> np.ndarray:
    """Rescale integer accumulators by ``factor`` using fixed-point arithmetic.

    ``factor`` is encoded as a 31-bit multiplier plus arithmetic shift (see
    :func:`repro.deploy.lowering.quantize_multiplier`), the result is
    rounded, clipped to ``[qmin, qmax]`` and returned as ``int32`` — the same
    sequence of operations the generated C kernels perform.

    A negative ``factor`` (the I-BERT polynomial kernels track the sign in
    the scale) is handled by negating the accumulators first.
    """
    if factor < 0:
        values = -np.asarray(values)
        factor = -factor
    multiplier, shift = quantize_multiplier(factor)
    scaled = values.astype(np.int64) * multiplier
    if shift > 0:
        rounding = np.int64(1) << (shift - 1)
        scaled = (scaled + rounding) >> shift
    elif shift < 0:
        scaled = scaled << (-shift)
    return np.clip(scaled, qmin, qmax).astype(np.int32)


class IntegerGraphExecutor:
    """Executes a :class:`QuantizedGraph` with integer-only arithmetic.

    Parameters
    ----------
    quantized:
        The int8-lowered graph to replay.
    use_lut:
        ``None`` (default) runs each nonlinearity through its precomputed
        lookup table whenever the lowered node carries one, falling back to
        the elementwise I-BERT kernels otherwise.  ``False`` forces the
        legacy elementwise path even when tables are present (the
        cross-checking baseline); ``True`` behaves like ``None`` — a graph
        lowered with ``use_lut=False`` simply has no tables to use.
    """

    def __init__(self, quantized: QuantizedGraph, use_lut: Optional[bool] = None) -> None:
        self.quantized = quantized
        self.graph = quantized.graph
        self.use_lut = use_lut is None or bool(use_lut)

    @property
    def uses_luts(self) -> bool:
        """Whether any node will execute through a lookup table."""
        return self.use_lut and self.quantized.uses_luts

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _activation(self, tensor_name: str) -> ActivationQuantization:
        return self.quantized.activations[tensor_name]

    def _requant_to(self, values: np.ndarray, in_scale: float, tensor_name: str) -> np.ndarray:
        out = self._activation(tensor_name)
        return requantize(values, in_scale / out.scale, out.qmin, out.qmax)

    # ------------------------------------------------------------------ #
    # Single-node dispatch
    # ------------------------------------------------------------------ #
    def _run_node(self, node: GraphNode, tensors: Dict[str, np.ndarray]) -> np.ndarray:
        lowered = self.quantized.nodes[node.name]
        op = node.op
        q_x = tensors[node.inputs[0]]
        in_scale = self._activation(node.inputs[0]).scale
        out_name = node.output.name
        out_scale = self._activation(out_name).scale

        if op == "conv1d":
            weight = lowered.constants["weight"]
            accumulator = _int_conv1d(
                q_x,
                weight.values,
                stride=int(node.attrs["stride"]),
                padding=int(node.attrs["padding"]),
                dilation=int(node.attrs["dilation"]),
            )
            if "bias" in lowered.constants:
                accumulator += lowered.constants["bias"].values.reshape(1, -1, 1)
            return self._requant_to(accumulator, in_scale * weight.scale, out_name)

        if op == "linear":
            weight = lowered.constants["weight"]
            accumulator = q_x.astype(np.int64) @ weight.values.T.astype(np.int64)
            if "bias" in lowered.constants:
                accumulator += lowered.constants["bias"].values
            return self._requant_to(accumulator, in_scale * weight.scale, out_name)

        if op == "channel_affine":
            scale_const = lowered.constants["scale"]
            shift_const = lowered.constants["shift"]
            accumulator = q_x.astype(np.int64) * scale_const.values.reshape(1, -1, 1)
            accumulator += shift_const.values.reshape(1, -1, 1)
            return self._requant_to(accumulator, in_scale * scale_const.scale, out_name)

        if op == "matmul":
            q_other = tensors[node.inputs[1]]
            other_scale = self._activation(node.inputs[1]).scale
            if node.attrs.get("transpose_b", False):
                q_other = np.swapaxes(q_other, -1, -2)
            accumulator = q_x.astype(np.int64) @ q_other.astype(np.int64)
            factor = in_scale * other_scale * float(node.attrs.get("scale", 1.0))
            return self._requant_to(accumulator, factor, out_name)

        if op == "add":
            q_other = tensors[node.inputs[1]]
            other_scale = self._activation(node.inputs[1]).scale
            lhs = self._requant_to(q_x.astype(np.int64), in_scale, out_name)
            rhs = self._requant_to(q_other.astype(np.int64), other_scale, out_name)
            out = self._activation(out_name)
            return np.clip(lhs + rhs, out.qmin, out.qmax).astype(np.int32)

        if op == "append_token":
            token = lowered.constants["token"].values.reshape(1, 1, -1)
            rescaled = self._requant_to(q_x.astype(np.int64), in_scale, out_name)
            token = np.broadcast_to(token, (rescaled.shape[0], 1, rescaled.shape[2]))
            return np.concatenate([rescaled, token.astype(np.int32)], axis=1)

        if op == "add_positional":
            positions = lowered.constants["positions"].values[None, :, :]
            rescaled = self._requant_to(q_x.astype(np.int64), in_scale, out_name)
            out = self._activation(out_name)
            return np.clip(rescaled + positions, out.qmin, out.qmax).astype(np.int32)

        if op == "relu":
            return self._requant_to(np.maximum(q_x, 0).astype(np.int64), in_scale, out_name)

        if op == "gelu":
            table = lowered.luts.get("gelu") if self.use_lut else None
            if table is not None:
                # The table already fuses the polynomial and the output
                # requantisation: one gather per element.
                return table.take(q_x).astype(np.int32)
            q_out, gelu_scale = ibert.integer_gelu(q_x.astype(np.int64), in_scale)
            return self._requant_to(q_out, gelu_scale, out_name)

        if op == "softmax":
            axis = int(node.attrs.get("axis", -1))
            table = lowered.luts.get("exp") if self.use_lut else None
            if table is not None:
                q = q_x.astype(np.int64)
                shifted = q - q.max(axis=axis, keepdims=True)
                q_exp = table.take(shifted)
                total = np.maximum(q_exp.sum(axis=axis, keepdims=True), 1)
                factor = np.int64(1) << ibert.SOFTMAX_OUTPUT_BITS
                q_out = (q_exp * factor) // total
                return self._requant_to(q_out, 1.0 / float(factor), out_name)
            q_out, softmax_scale = ibert.integer_softmax(
                q_x.astype(np.int64), in_scale, axis=axis
            )
            return self._requant_to(q_out, softmax_scale, out_name)

        if op == "layernorm":
            weight = lowered.constants["weight"].values
            bias = lowered.constants["bias"].values
            q_out, ln_scale = ibert.integer_layernorm(q_x.astype(np.int64), in_scale, weight, bias)
            return self._requant_to(q_out, ln_scale, out_name)

        if op == "avgpool1d":
            kernel = int(node.attrs["kernel_size"])
            stride = int(node.attrs["stride"])
            # One strided gather over all taps: (B, C, out_length, kernel).
            windows = np.lib.stride_tricks.sliding_window_view(q_x, kernel, axis=-1)
            accumulator = windows[:, :, ::stride, :].astype(np.int64).sum(axis=-1)
            return self._requant_to(accumulator, in_scale / kernel, out_name)

        if op == "mean_tokens":
            accumulator = q_x.astype(np.int64).sum(axis=1)
            return self._requant_to(accumulator, in_scale / q_x.shape[1], out_name)

        if op == "flatten":
            return q_x.reshape(q_x.shape[0], -1)
        if op == "split_heads":
            heads = int(node.attrs["num_heads"])
            head_dim = int(node.attrs["head_dim"])
            batch, sequence, _ = q_x.shape
            return q_x.reshape(batch, sequence, heads, head_dim).transpose(0, 2, 1, 3)
        if op == "merge_heads":
            batch, heads, sequence, head_dim = q_x.shape
            return q_x.transpose(0, 2, 1, 3).reshape(batch, sequence, heads * head_dim)
        if op == "transpose":
            axes = tuple(node.attrs["axes"])
            return q_x.transpose((0,) + tuple(axis + 1 for axis in axes))
        if op == "select_token":
            return q_x[:, int(node.attrs["index"]), :]
        raise NotImplementedError(f"integer executor does not implement '{op}'")

    # ------------------------------------------------------------------ #
    # Whole-graph execution
    # ------------------------------------------------------------------ #
    def run_integer(self, inputs: np.ndarray) -> np.ndarray:
        """Run the graph; returns the *integer* logits (int8 grid)."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim == len(self.graph.graph_input.shape):
            inputs = inputs[None, ...]
        input_quant = self.quantized.input_quantization
        tensors: Dict[str, np.ndarray] = {
            self.graph.graph_input.name: input_quant.quantize(inputs)
        }
        for node in self.graph.nodes:
            tensors[node.output.name] = self._run_node(node, tensors)
        return tensors[self.graph.output.name]

    def run(self, inputs: np.ndarray) -> np.ndarray:
        """Run the graph and return dequantised (float) logits."""
        integer_logits = self.run_integer(inputs)
        return self.quantized.output_quantization.dequantize(integer_logits)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Class predictions of the integer-only inference path."""
        return np.argmax(self.run_integer(inputs), axis=-1)

    def agreement_with_float(self, inputs: np.ndarray) -> float:
        """Fraction of inputs where int8 and float inference agree on the class."""
        from .engine import FloatGraphExecutor

        float_predictions = FloatGraphExecutor(self.graph).predict(inputs)
        integer_predictions = self.predict(inputs)
        return float(np.mean(float_predictions == integer_predictions))


def _int_conv1d(
    q_x: np.ndarray,
    q_weight: np.ndarray,
    stride: int,
    padding: int,
    dilation: int,
) -> np.ndarray:
    """Integer 1-D convolution with int64 accumulation.

    Vectorised over the kernel dimension: a single strided view gathers
    every ``(output position, tap)`` pair and one integer ``einsum``
    contracts channels and taps at once.  Integer arithmetic is exact, so
    the result is identical to the per-tap accumulation loop it replaced
    (the test-suite pins this equality).
    """
    q_x = q_x.astype(np.int64)
    q_weight = q_weight.astype(np.int64)
    kernel = q_weight.shape[-1]
    if padding > 0:
        q_x = np.pad(q_x, ((0, 0), (0, 0), (padding, padding)))
    effective = dilation * (kernel - 1) + 1
    # (B, C, out_length, kernel): output positions stride the signal, taps
    # sample each window every `dilation` samples.
    windows = np.lib.stride_tricks.sliding_window_view(q_x, effective, axis=-1)
    windows = windows[:, :, ::stride, ::dilation]
    return np.einsum("bclk,ock->bol", windows, q_weight)
