"""``repro.deploy`` — the GAP8 deployment toolchain.

The paper's Table I is produced by an MCU deployment flow: the trained model
is quantised to int8, lowered onto the integer transformer kernels of
Burrello et al. (COINS 2021), tiled through GAP8's 64 kB L1 scratchpad and
compiled into C.  This package reproduces that flow on the host:

* :mod:`repro.deploy.graph` / :mod:`repro.deploy.tracers` — a flat inference
  graph IR and tracers for Bioformer and TEMPONet;
* :mod:`repro.deploy.engine` — a float reference executor (trace validation
  and calibration);
* :mod:`repro.deploy.lowering` — the int8 lowering data model (activation /
  constant / node / graph dataclasses, fixed-point requantisation encoding)
  and the stable :func:`~repro.deploy.lowering.lower_to_int8` entry point;
* :mod:`repro.deploy.passes` — the deploy compiler: a
  :class:`~repro.deploy.passes.PassManager` running calibration, weight
  quantisation, GEMM tile planning, LUT substitution and the opt-in
  optimization passes (requant folding, conv→pool fusion, dead-node
  elimination) as validated, bitwise-pinned graph passes;
* :mod:`repro.deploy.int_engine` — integer-only inference (int8/int32 with
  I-BERT non-linearities), i.e. the on-target numerics emulated bit-level;
* :mod:`repro.deploy.memory` — activation arena planning (L2);
* :mod:`repro.deploy.tiling` — L1 tile-size selection and DMA accounting;
* :mod:`repro.deploy.codegen` — C source generation (weights, kernel
  schedule, inference API);
* :mod:`repro.deploy.report` — the end-to-end pipeline producing a
  deployment report comparable to one row of the paper's Table I.
"""

from .codegen import CodeGenerator, GeneratedSource, generate_c_sources
from .engine import FloatGraphExecutor
from .graph import LUT_OPERATORS, ComputeGraph, GraphNode, LookupTable, TensorSpec
from .int_engine import IntegerGraphExecutor, requantize
from .lowering import (
    ActivationQuantization,
    QuantizedConstant,
    QuantizedGraph,
    QuantizedNode,
    build_gelu_lut,
    build_softmax_exp_lut,
    lower_to_int8,
    quantize_multiplier,
)
from .memory import BufferAssignment, LiveRange, MemoryPlan, live_ranges, plan_activation_memory
from .passes import (
    CalibrateActivationsPass,
    DeadNodeEliminationPass,
    FoldRequantPass,
    FuseConvPoolPass,
    GraphPass,
    LoweringConfig,
    LutSubstitutionPass,
    PassManager,
    PassPipelineError,
    PassRecord,
    PlanGemmTilesPass,
    QuantizeWeightsPass,
    build_pass_pipeline,
    compile_graph,
)
from .report import GraphDeploymentReport, deploy_graph, graph_to_profile
from .tiling import LayerTiling, TilingConfig, TilingPlan, plan_tiling
from .tracers import trace_bioformer, trace_model, trace_temponet

__all__ = [
    "TensorSpec",
    "GraphNode",
    "ComputeGraph",
    "LookupTable",
    "LUT_OPERATORS",
    "build_gelu_lut",
    "build_softmax_exp_lut",
    "trace_bioformer",
    "trace_temponet",
    "trace_model",
    "FloatGraphExecutor",
    "IntegerGraphExecutor",
    "requantize",
    "ActivationQuantization",
    "QuantizedConstant",
    "QuantizedNode",
    "QuantizedGraph",
    "quantize_multiplier",
    "lower_to_int8",
    "LoweringConfig",
    "GraphPass",
    "PassRecord",
    "PassPipelineError",
    "PassManager",
    "CalibrateActivationsPass",
    "QuantizeWeightsPass",
    "PlanGemmTilesPass",
    "LutSubstitutionPass",
    "FoldRequantPass",
    "FuseConvPoolPass",
    "DeadNodeEliminationPass",
    "build_pass_pipeline",
    "compile_graph",
    "LiveRange",
    "BufferAssignment",
    "MemoryPlan",
    "live_ranges",
    "plan_activation_memory",
    "TilingConfig",
    "LayerTiling",
    "TilingPlan",
    "plan_tiling",
    "CodeGenerator",
    "GeneratedSource",
    "generate_c_sources",
    "graph_to_profile",
    "GraphDeploymentReport",
    "deploy_graph",
]
