"""L1 tiling planner for the GAP8 cluster scratchpad.

GAP8 kernels cannot read L2 directly at full speed: the 8-core cluster works
out of a 64 kB L1 scratchpad, and a DMA engine moves tiles of the input,
weight and output tensors between L2 and L1 while the cores compute on the
previous tile (double buffering).  Choosing tile shapes that (i) fit the
scratchpad and (ii) keep the DMA traffic low is the job of the deployment
flow — this module reproduces that pass, in the spirit of DORY (Burrello et
al., IEEE TC 2021), for the kernels used by Bioformer and TEMPONet.

For every MAC kernel of a :class:`ComputeGraph` the planner searches the
tile-shape space, keeps the largest tile that fits the double-buffered L1
budget, and reports the resulting tile count, per-tile occupancy, total DMA
traffic and whether the kernel is compute- or DMA-bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .graph import ComputeGraph, GraphNode

__all__ = ["TilingConfig", "LayerTiling", "TilingPlan", "plan_tiling"]


@dataclass(frozen=True)
class TilingConfig:
    """Memory/DMA parameters of the target used by the tiling search."""

    #: Usable L1 scratchpad in bytes (GAP8: 64 kB minus the kernel stacks).
    l1_bytes: int = 56 * 1024
    #: Tiles are double-buffered, so each logical tile may only use half L1.
    double_buffering: bool = True
    #: Sustained DMA bandwidth between L2 and L1, in bytes per cluster cycle.
    dma_bytes_per_cycle: float = 4.0
    #: Peak int8 MAC throughput of the cluster, in MACs per cycle (used only
    #: to classify kernels as compute- or DMA-bound).
    peak_macs_per_cycle: float = 16.0

    @property
    def tile_budget(self) -> int:
        """L1 bytes available to one tile."""
        return self.l1_bytes // 2 if self.double_buffering else self.l1_bytes


@dataclass
class LayerTiling:
    """Tiling decision for one kernel."""

    name: str
    op: str
    macs: int
    tile: Dict[str, int]
    num_tiles: int
    tile_bytes: int
    dma_bytes: int
    single_tile: bool

    def compute_cycles(self, config: TilingConfig) -> float:
        """Ideal compute time of the kernel (cycles)."""
        return self.macs / config.peak_macs_per_cycle

    def dma_cycles(self, config: TilingConfig) -> float:
        """Ideal DMA transfer time of the kernel (cycles)."""
        return self.dma_bytes / config.dma_bytes_per_cycle

    def bottleneck(self, config: TilingConfig) -> str:
        """``"compute"`` or ``"dma"`` depending on which phase dominates."""
        return "compute" if self.compute_cycles(config) >= self.dma_cycles(config) else "dma"


@dataclass
class TilingPlan:
    """Tiling decisions for every MAC kernel of a graph."""

    graph_name: str
    config: TilingConfig
    layers: List[LayerTiling] = field(default_factory=list)

    @property
    def total_dma_bytes(self) -> int:
        """Total L2<->L1 traffic per inference."""
        return sum(layer.dma_bytes for layer in self.layers)

    @property
    def total_tiles(self) -> int:
        """Total number of tile executions per inference."""
        return sum(layer.num_tiles for layer in self.layers)

    @property
    def all_fit_single_tile(self) -> bool:
        """Whether every kernel fits L1 without tiling (typical for Bioformers)."""
        return all(layer.single_tile for layer in self.layers)

    def dma_bound_layers(self) -> List[LayerTiling]:
        """Kernels whose DMA time exceeds their compute time."""
        return [layer for layer in self.layers if layer.bottleneck(self.config) == "dma"]

    def summary(self) -> str:
        """Human-readable tiling table."""
        lines = [
            f"L1 tiling plan for '{self.graph_name}' "
            f"(budget {self.config.tile_budget} B per tile)",
            f"{'kernel':<34}{'op':<10}{'tiles':>7}{'tile B':>9}{'DMA B':>11}{'bound':>9}",
        ]
        for layer in self.layers:
            lines.append(
                f"{layer.name:<34}{layer.op:<10}{layer.num_tiles:>7}{layer.tile_bytes:>9}"
                f"{layer.dma_bytes:>11}{layer.bottleneck(self.config):>9}"
            )
        lines.append(
            f"total: {self.total_tiles} tiles, {self.total_dma_bytes} B of DMA traffic"
        )
        return "\n".join(lines)


def _ceil_div(numerator: int, denominator: int) -> int:
    return -(-numerator // max(denominator, 1))


def _candidate_sizes(full: int) -> List[int]:
    """Descending candidate tile sizes for one dimension."""
    sizes = {full}
    value = full
    while value > 1:
        value = _ceil_div(value, 2)
        sizes.add(value)
    sizes.update({1, 2, 4, 8, 16, 32})
    return sorted((size for size in sizes if 1 <= size <= full), reverse=True)


def _tile_linear(node: GraphNode, budget: int) -> Tuple[Dict[str, int], int, int]:
    """Tile a linear kernel over (rows, output features)."""
    out_features, in_features = node.weights["weight"].shape
    rows = max(node.output.num_elements // out_features, 1)
    has_bias = "bias" in node.weights

    def tile_bytes(tile_rows: int, tile_out: int) -> int:
        inputs = tile_rows * in_features
        weights = tile_out * in_features + (4 * tile_out if has_bias else 0)
        outputs = tile_rows * tile_out
        return inputs + weights + outputs

    best: Optional[Tuple[int, int]] = None
    for tile_out in _candidate_sizes(out_features):
        for tile_rows in _candidate_sizes(rows):
            if tile_bytes(tile_rows, tile_out) <= budget:
                if best is None or tile_rows * tile_out > best[0] * best[1]:
                    best = (tile_rows, tile_out)
                break
    if best is None:
        best = (1, 1)
    tile_rows, tile_out = best
    num_tiles = _ceil_div(rows, tile_rows) * _ceil_div(out_features, tile_out)
    tile = {"rows": tile_rows, "out_features": tile_out}
    return tile, num_tiles, tile_bytes(tile_rows, tile_out)


def _tile_conv1d(node: GraphNode, budget: int) -> Tuple[Dict[str, int], int, int]:
    """Tile a 1-D convolution over (output channels, output length)."""
    out_channels, in_channels, kernel = node.weights["weight"].shape
    out_length = node.output.shape[-1]
    stride = int(node.attrs["stride"])
    dilation = int(node.attrs["dilation"])
    has_bias = "bias" in node.weights
    receptive = dilation * (kernel - 1) + 1

    def tile_bytes(tile_channels: int, tile_length: int) -> int:
        input_span = (tile_length - 1) * stride + receptive
        inputs = in_channels * input_span
        weights = tile_channels * in_channels * kernel + (4 * tile_channels if has_bias else 0)
        outputs = tile_channels * tile_length
        return inputs + weights + outputs

    best: Optional[Tuple[int, int]] = None
    for tile_channels in _candidate_sizes(out_channels):
        for tile_length in _candidate_sizes(out_length):
            if tile_bytes(tile_channels, tile_length) <= budget:
                if best is None or tile_channels * tile_length > best[0] * best[1]:
                    best = (tile_channels, tile_length)
                break
    if best is None:
        best = (1, 1)
    tile_channels, tile_length = best
    num_tiles = _ceil_div(out_channels, tile_channels) * _ceil_div(out_length, tile_length)
    tile = {"out_channels": tile_channels, "out_length": tile_length}
    return tile, num_tiles, tile_bytes(tile_channels, tile_length)


def _tile_matmul(node: GraphNode, budget: int) -> Tuple[Dict[str, int], int, int]:
    """Tile an attention matmul over (heads, rows)."""
    heads, rows, cols = node.output.shape
    inner = int(node.attrs["inner_dim"])

    def tile_bytes(tile_heads: int, tile_rows: int) -> int:
        lhs = tile_heads * tile_rows * inner
        rhs = tile_heads * inner * cols
        outputs = tile_heads * tile_rows * cols
        return lhs + rhs + outputs

    best: Optional[Tuple[int, int]] = None
    for tile_heads in _candidate_sizes(heads):
        for tile_rows in _candidate_sizes(rows):
            if tile_bytes(tile_heads, tile_rows) <= budget:
                if best is None or tile_heads * tile_rows > best[0] * best[1]:
                    best = (tile_heads, tile_rows)
                break
    if best is None:
        best = (1, 1)
    tile_heads, tile_rows = best
    num_tiles = _ceil_div(heads, tile_heads) * _ceil_div(rows, tile_rows)
    tile = {"heads": tile_heads, "rows": tile_rows}
    return tile, num_tiles, tile_bytes(tile_heads, tile_rows)


def _dma_bytes(node: GraphNode, num_tiles: int, single_weight_load: bool) -> int:
    """Approximate L2<->L1 traffic of one kernel.

    Activations move exactly once in and once out; weights move once if a
    single weight tile covers the kernel, otherwise once per tile (the
    pessimistic DORY assumption).
    """
    output_bytes = node.output.num_elements
    # Approximate the input read volume with the output volume per consumed
    # tensor (inputs ~ outputs for the dominant GEMM-shaped kernels); exact
    # per-tensor sizes are tracked separately by the memory planner.
    input_bytes = node.output.num_elements * max(len(node.inputs), 1)
    weight_bytes = node.weight_elements
    if single_weight_load:
        return input_bytes + weight_bytes + output_bytes
    return input_bytes + weight_bytes * num_tiles + output_bytes


def plan_tiling(graph: ComputeGraph, config: Optional[TilingConfig] = None) -> TilingPlan:
    """Plan L1 tiling for every MAC kernel of ``graph``."""
    config = config if config is not None else TilingConfig()
    plan = TilingPlan(graph_name=graph.name, config=config)
    budget = config.tile_budget
    for node in graph.nodes:
        if node.op == "linear":
            tile, num_tiles, tile_bytes = _tile_linear(node, budget)
        elif node.op == "conv1d":
            tile, num_tiles, tile_bytes = _tile_conv1d(node, budget)
        elif node.op == "matmul":
            tile, num_tiles, tile_bytes = _tile_matmul(node, budget)
        else:
            continue
        single_tile = num_tiles == 1
        plan.layers.append(
            LayerTiling(
                name=node.name,
                op=node.op,
                macs=node.macs,
                tile=tile,
                num_tiles=num_tiles,
                tile_bytes=tile_bytes,
                dma_bytes=_dma_bytes(node, num_tiles, single_tile),
                single_tile=single_tile,
            )
        )
    return plan
