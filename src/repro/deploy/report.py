"""End-to-end graph-level deployment pipeline and report.

This module glues the whole :mod:`repro.deploy` flow together, the way a
user would drive it before flashing a device:

1. trace the trained model into a :class:`ComputeGraph`;
2. lower it to int8 with a calibration batch;
3. plan the activation arena (L2) and the L1 tiling;
4. estimate latency / energy / battery life on the GAP8 cost model;
5. optionally measure the integer-only accuracy on a held-out set;
6. generate the C deployment bundle.

It complements :mod:`repro.hw.deploy`, which produces the same Table-I style
numbers analytically from the architecture configuration alone: the
graph-level pipeline works on the *actual trained weights* and verifies the
integer numerics end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Union

import numpy as np

from ..hw.battery import BatteryConfig, DutyCycleReport, battery_life_hours
from ..hw.gap8 import GAP8Config, GAP8Model, LatencyBreakdown
from ..hw.profiler import LayerProfile, ModelProfile
from ..models.bioformer import Bioformer
from ..models.temponet import TEMPONet
from ..utils.tables import format_table
from .codegen import CodeGenerator, GeneratedSource
from .graph import ComputeGraph
from .int_engine import IntegerGraphExecutor
from .lowering import QuantizedGraph, lower_to_int8
from .memory import MemoryPlan, plan_activation_memory
from .tiling import TilingConfig, TilingPlan, plan_tiling
from .tracers import trace_model

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from .passes import LoweringConfig

__all__ = ["graph_to_profile", "GraphDeploymentReport", "deploy_graph"]

#: Mapping from graph operators to the kernel categories of the GAP8 model.
_KIND_FOR_OP = {
    "conv1d": "conv",
    "linear": "linear",
    "matmul": "attention_matmul",
    "softmax": "softmax",
    "layernorm": "norm",
    "channel_affine": "norm",
    "relu": "activation",
    "gelu": "activation",
    "avgpool1d": "pool",
    "mean_tokens": "pool",
    "add": "activation",
    "append_token": "activation",
    "add_positional": "activation",
}


def graph_to_profile(graph: ComputeGraph) -> ModelProfile:
    """Convert a traced graph into a :class:`ModelProfile` for the GAP8 model.

    Unlike :func:`repro.hw.profiler.profile_model`, which reasons from the
    architecture configuration, this accounts the *traced* kernels — so any
    structural change made to the model after construction is reflected in
    the deployment estimate.
    """
    profile = ModelProfile(name=graph.name, input_shape=graph.graph_input.shape)
    for node in graph.nodes:
        if node.is_shape_only:
            continue
        kind = _KIND_FOR_OP.get(node.op, "activation")
        parallel_units = 0
        if node.op == "matmul":
            parallel_units = int(node.output.shape[0])
        profile.layers.append(
            LayerProfile(
                name=node.name,
                kind=kind,
                macs=node.macs,
                params=node.weight_elements,
                elementwise_ops=node.elementwise_ops,
                parallel_units=parallel_units,
            )
        )
    return profile


@dataclass
class GraphDeploymentReport:
    """Everything produced by the graph-level deployment pipeline."""

    graph: ComputeGraph
    quantized: QuantizedGraph
    memory_plan: MemoryPlan
    tiling_plan: TilingPlan
    latency: LatencyBreakdown
    gap8: GAP8Config
    sources: Dict[str, GeneratedSource] = field(default_factory=dict)
    int8_accuracy: Optional[float] = None
    float_agreement: Optional[float] = None
    duty_cycle: Optional[DutyCycleReport] = None

    # ------------------------------------------------------------------ #
    # Headline numbers (the paper's Table I columns)
    # ------------------------------------------------------------------ #
    @property
    def model_name(self) -> str:
        return self.graph.name

    @property
    def weight_kilobytes(self) -> float:
        """Int8 constant storage in kB."""
        return self.quantized.weight_kilobytes

    @property
    def lut_kilobytes(self) -> float:
        """Nonlinearity lookup-table storage in kB (0 without ``use_lut``)."""
        return self.quantized.total_lut_bytes / 1024.0

    @property
    def activation_kilobytes(self) -> float:
        """Peak activation arena in kB."""
        return self.memory_plan.peak_bytes / 1024.0

    @property
    def total_l2_kilobytes(self) -> float:
        """Weights + LUTs + peak activations (what must fit the 512 kB L2).

        The lookup tables ship in ``weights.h`` alongside the constants, so
        they count against L2 exactly like weights do.
        """
        return self.weight_kilobytes + self.lut_kilobytes + self.activation_kilobytes

    @property
    def fits_l2(self) -> bool:
        """Whether the deployment fits GAP8's L2 memory."""
        return self.total_l2_kilobytes * 1024.0 <= self.gap8.l2_bytes

    @property
    def mmacs(self) -> float:
        """Million MACs per inference (from the traced graph)."""
        return self.graph.total_macs / 1e6

    @property
    def latency_ms(self) -> float:
        return self.latency.latency_ms

    @property
    def energy_mj(self) -> float:
        return self.latency.energy_mj

    def render(self) -> str:
        """Human-readable deployment report."""
        rows = []
        if self.quantized.manifest:
            rows.append(
                (
                    "compiler passes",
                    " -> ".join(record.name for record in self.quantized.manifest),
                )
            )
        source = self.quantized.source_graph
        if source is not None and len(self.graph) != len(source):
            rows.append(
                (
                    "graph nodes",
                    f"{len(self.graph)} (fused from {len(source)})",
                )
            )
        else:
            rows.append(("graph nodes", f"{len(self.graph)}"))
        rows += [
            ("weights (int8)", f"{self.weight_kilobytes:.1f} kB"),
            ("nonlinearity LUTs", f"{self.lut_kilobytes:.1f} kB"),
            ("peak activations", f"{self.activation_kilobytes:.1f} kB"),
            ("total L2", f"{self.total_l2_kilobytes:.1f} kB"),
            ("fits 512 kB L2", "yes" if self.fits_l2 else "NO"),
            ("MMAC / inference", f"{self.mmacs:.2f}"),
            ("latency", f"{self.latency_ms:.2f} ms"),
            ("energy", f"{self.energy_mj:.3f} mJ"),
            ("L1 tiling", "single tile" if self.tiling_plan.all_fit_single_tile else
             f"{self.tiling_plan.total_tiles} tiles"),
            ("DMA traffic", f"{self.tiling_plan.total_dma_bytes / 1024.0:.1f} kB"),
        ]
        if self.int8_accuracy is not None:
            rows.append(("int8 accuracy", f"{100.0 * self.int8_accuracy:.2f}%"))
        if self.float_agreement is not None:
            rows.append(("int8/fp32 agreement", f"{100.0 * self.float_agreement:.2f}%"))
        if self.duty_cycle is not None:
            rows.append(("battery life", f"{self.duty_cycle.battery_life_hours:.0f} h"))
        if self.sources:
            total_lines = sum(source.lines for source in self.sources.values())
            rows.append(("generated C", f"{len(self.sources)} files, {total_lines} lines"))
        return format_table(
            ("quantity", "value"), rows, title=f"Deployment report: {self.model_name}"
        )


def deploy_graph(
    model: Union[Bioformer, TEMPONet],
    calibration_inputs: np.ndarray,
    evaluation_inputs: Optional[np.ndarray] = None,
    evaluation_labels: Optional[np.ndarray] = None,
    gap8: Optional[GAP8Config] = None,
    tiling: Optional[TilingConfig] = None,
    battery: Optional[BatteryConfig] = None,
    inference_period_s: Optional[float] = 15e-3,
    weight_bits: int = 8,
    activation_bits: int = 8,
    use_lut: bool = True,
    optimize: bool = False,
    config: Optional["LoweringConfig"] = None,
    generate_code: bool = True,
) -> GraphDeploymentReport:
    """Run the full graph-level deployment pipeline for a trained model.

    Parameters
    ----------
    model:
        Trained Bioformer or TEMPONet (evaluation-mode weights are traced).
    calibration_inputs:
        ``(batch, channels, samples)`` batch used to calibrate activation
        scales (a few hundred windows of the training sessions in practice).
    evaluation_inputs, evaluation_labels:
        Optional held-out windows/labels; when given, the integer-only
        accuracy and the int8-vs-fp32 prediction agreement are measured.
    gap8, tiling, battery:
        Target descriptions (paper defaults when omitted).
    inference_period_s:
        Period of the always-on loop for the battery projection (15 ms in
        the paper); ``None`` skips the projection.
    weight_bits, activation_bits:
        Quantisation precision (8/8 in the paper).
    use_lut:
        Lower the I-BERT GELU/softmax nonlinearities into lookup tables
        (default; bit-identical to the elementwise kernels, and what the
        int8 serving path runs).  ``False`` keeps the legacy elementwise
        op set in the lowered graph and the generated C schedule.
    optimize:
        Run the compiler's optimization passes (requant folding, conv→pool
        fusion, dead-node elimination; see :mod:`repro.deploy.passes`) on
        the lowered graph.  Logits stay bitwise-identical; the kernel
        schedule, the set of activation buffers and the generated sources
        shrink (the greedy offset packing may round the arena differently).
    config:
        A full :class:`~repro.deploy.passes.LoweringConfig`; overrides the
        individual lowering kwargs when given.
    generate_code:
        Whether to run the C code generator and attach the sources.
    """
    model.eval()
    gap8 = gap8 if gap8 is not None else GAP8Config()
    graph = trace_model(model)
    quantized = lower_to_int8(
        graph,
        calibration_inputs,
        weight_bits=weight_bits,
        activation_bits=activation_bits,
        use_lut=use_lut,
        optimize=optimize,
        config=config,
    )
    # Downstream planning runs on the *executable* graph: identical to the
    # trace under the default pipeline, fused/smaller when optimizing.
    compiled = quantized.graph
    memory_plan = plan_activation_memory(compiled)
    tiling_plan = plan_tiling(compiled, tiling)
    latency = GAP8Model(gap8).latency(graph_to_profile(compiled))

    int8_accuracy = None
    float_agreement = None
    if evaluation_inputs is not None:
        executor = IntegerGraphExecutor(quantized)
        predictions = executor.predict(evaluation_inputs)
        float_agreement = executor.agreement_with_float(evaluation_inputs)
        if evaluation_labels is not None:
            int8_accuracy = float(np.mean(predictions == np.asarray(evaluation_labels)))

    duty_cycle = None
    if inference_period_s is not None:
        duty_cycle = battery_life_hours(
            latency.latency_s,
            inference_period_s,
            gap8,
            battery if battery is not None else BatteryConfig(),
        )

    sources: Dict[str, GeneratedSource] = {}
    if generate_code:
        sources = CodeGenerator(quantized, memory_plan).generate()

    return GraphDeploymentReport(
        graph=compiled,
        quantized=quantized,
        memory_plan=memory_plan,
        tiling_plan=tiling_plan,
        latency=latency,
        gap8=gap8,
        sources=sources,
        int8_accuracy=int8_accuracy,
        float_agreement=float_agreement,
        duty_cycle=duty_cycle,
    )
