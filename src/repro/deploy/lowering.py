"""Lowering: turn a float :class:`ComputeGraph` into an int8 deployment graph.

The paper deploys int8 models on GAP8 with the integer-only transformer
kernels of Burrello et al. (COINS 2021), which follow the usual MCU
convention:

* **weights** — per-tensor symmetric int8 (``w ≈ q_w · s_w``);
* **activations** — per-tensor symmetric int8, with scales calibrated on a
  batch of representative inputs;
* **accumulation** — int32; biases are stored as int32 at the accumulator
  scale ``s_x · s_w``;
* **requantisation** — the float factor ``s_x · s_w / s_y`` between the
  accumulator and the next activation is encoded as a fixed-point multiplier
  plus arithmetic shift, so inference needs no floating point at all.

:func:`lower_to_int8` performs that conversion: it runs the float executor
on a calibration batch to observe every activation range, quantises the
constants of each node, and emits a :class:`QuantizedGraph` that the integer
executor (:mod:`repro.deploy.int_engine`) and the code generator
(:mod:`repro.deploy.codegen`) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..quant import ibert
from ..quant.quantizers import QuantizationSpec, compute_scale_zero_point, quantize
from .engine import FloatGraphExecutor
from .graph import LUT_OPERATORS, ComputeGraph, GraphNode, LookupTable

__all__ = [
    "ActivationQuantization",
    "GemmTileInfo",
    "QuantizedConstant",
    "QuantizedNode",
    "QuantizedGraph",
    "quantize_multiplier",
    "build_gelu_lut",
    "build_softmax_exp_lut",
    "lower_to_int8",
]


def quantize_multiplier(value: float, bits: int = 31) -> Tuple[int, int]:
    """Encode a positive float as ``multiplier / 2**shift`` (fixed point).

    This is the canonical requantisation encoding used by integer inference
    runtimes (gemmlowp, CMSIS-NN, PULP-NN): the returned ``multiplier`` fits
    in ``bits`` bits and ``value ≈ multiplier * 2**-shift``.
    """
    if value <= 0.0:
        raise ValueError("requantisation factor must be positive")
    shift = 0
    scaled = value
    limit = float(2 ** (bits - 1))
    while scaled < limit / 2:
        scaled *= 2.0
        shift += 1
    while scaled >= limit:
        scaled /= 2.0
        shift -= 1
    return int(round(scaled)), shift


@dataclass(frozen=True)
class ActivationQuantization:
    """Symmetric int8 quantisation parameters of one activation tensor."""

    name: str
    scale: float
    bits: int = 8

    @property
    def qmin(self) -> int:
        return -(2 ** (self.bits - 1))

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Quantise a float array to this tensor's integer grid."""
        q = np.round(np.asarray(values, dtype=np.float64) / self.scale)
        return np.clip(q, self.qmin, self.qmax).astype(np.int32)

    def dequantize(self, values: np.ndarray) -> np.ndarray:
        """Reconstruct float values from the integer grid."""
        return np.asarray(values, dtype=np.float64) * self.scale


@dataclass
class QuantizedConstant:
    """An int8/int32 constant plus the scale it was quantised with."""

    values: np.ndarray
    scale: float
    dtype: str

    @property
    def nbytes(self) -> int:
        """Storage footprint of the constant on the target."""
        per_element = {"int8": 1, "int32": 4}[self.dtype]
        return int(self.values.size * per_element)


@dataclass(frozen=True)
class GemmTileInfo:
    """Integer-GEMM lowering contract of one MAC node.

    ``conv1d`` (after im2col), ``linear`` and ``matmul`` all execute as one
    ``(M, K) @ (K, N)`` integer matmul per sample — ``M`` output rows per
    sample (the batch axis multiplies ``M``), ``K`` contracted inputs and
    ``N`` output features — followed by one fixed-point requantisation of
    the whole output tile.  The ``(multiplier, shift)`` pair is encoded
    here, at lowering time, so the executor and the generated kernels never
    re-derive it per invocation.
    """

    m: int
    k: int
    n: int
    multiplier: int
    shift: int

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the per-sample GEMM tile."""
        return self.m * self.k * self.n


@dataclass
class QuantizedNode:
    """A graph node plus its integer constants and requantisation factors."""

    node: GraphNode
    constants: Dict[str, QuantizedConstant] = field(default_factory=dict)
    #: Requantisation multiplier/shift pairs keyed by role (usually "output").
    requantizers: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: Integer-GEMM tile metadata; populated for the MAC operators
    #: (``conv1d``, ``linear``, ``matmul``) so the batched GEMM path and the
    #: code generator share one lowering-time requantisation contract.
    gemm: Optional[GemmTileInfo] = None
    #: Precomputed lookup tables keyed by role (``"gelu"``, ``"exp"``); only
    #: populated for :data:`~repro.deploy.graph.LUT_OPERATORS` nodes when the
    #: graph was lowered with ``use_lut=True``.
    luts: Dict[str, LookupTable] = field(default_factory=dict)

    @property
    def weight_bytes(self) -> int:
        """Total constant bytes of this node (excluding lookup tables)."""
        return sum(constant.nbytes for constant in self.constants.values())

    @property
    def lut_bytes(self) -> int:
        """Total lookup-table bytes of this node on the target."""
        return sum(table.nbytes for table in self.luts.values())


@dataclass
class QuantizedGraph:
    """An int8-lowered inference graph ready for execution / code generation."""

    graph: ComputeGraph
    activations: Dict[str, ActivationQuantization]
    nodes: Dict[str, QuantizedNode]
    weight_spec: QuantizationSpec

    @property
    def name(self) -> str:
        return self.graph.name

    @property
    def input_quantization(self) -> ActivationQuantization:
        """Quantisation of the graph input tensor."""
        return self.activations[self.graph.graph_input.name]

    @property
    def output_quantization(self) -> ActivationQuantization:
        """Quantisation of the graph output tensor (the logits)."""
        return self.activations[self.graph.output.name]

    @property
    def total_weight_bytes(self) -> int:
        """Total constant storage of the lowered graph."""
        return sum(node.weight_bytes for node in self.nodes.values())

    @property
    def total_lut_bytes(self) -> int:
        """Total lookup-table storage of the lowered graph."""
        return sum(node.lut_bytes for node in self.nodes.values())

    @property
    def uses_luts(self) -> bool:
        """Whether any node carries a precomputed lookup table."""
        return any(node.luts for node in self.nodes.values())

    @property
    def weight_kilobytes(self) -> float:
        """Constant storage in kB (comparable to the paper's Memory column)."""
        return self.total_weight_bytes / 1024.0

    def activation_for(self, tensor_name: str) -> ActivationQuantization:
        """Quantisation parameters of a named activation tensor."""
        return self.activations[tensor_name]


def _symmetric_scale(values: np.ndarray, bits: int = 8, percentile: float = 100.0) -> float:
    """Symmetric per-tensor scale covering the given percentile of |values|."""
    magnitudes = np.abs(np.asarray(values, dtype=np.float64)).reshape(-1)
    if magnitudes.size == 0:
        return 1.0
    if percentile >= 100.0:
        bound = float(magnitudes.max())
    else:
        bound = float(np.percentile(magnitudes, percentile))
    bound = max(bound, 1e-8)
    return bound / float(2 ** (bits - 1) - 1)


def _quantize_weight(values: np.ndarray, spec: QuantizationSpec) -> QuantizedConstant:
    scale, zero_point = compute_scale_zero_point(values.min(), values.max(), spec)
    integer = quantize(values, scale, zero_point, spec).astype(np.int32)
    return QuantizedConstant(values=integer, scale=float(scale), dtype="int8")


# --------------------------------------------------------------------- #
# Lookup-table construction (I-BERT nonlinearities over bounded domains)
# --------------------------------------------------------------------- #
def build_gelu_lut(
    in_act: ActivationQuantization, out_act: ActivationQuantization
) -> LookupTable:
    """Tabulate the fused integer GELU + requantisation kernel.

    GELU consumes the requantised int8 grid directly, so the whole node —
    I-BERT's sign-decomposed polynomial followed by the fixed-point
    requantisation to the output scale — is a pure function of one int8
    value.  The table is built by evaluating exactly that legacy elementwise
    chain over every representable input, which makes LUT execution
    bit-identical over the full domain by construction.
    """
    from .int_engine import requantize  # local import: int_engine imports us

    domain = np.arange(in_act.qmin, in_act.qmax + 1, dtype=np.int64)
    q_out, gelu_scale = ibert.integer_gelu(domain, in_act.scale)
    values = requantize(q_out, gelu_scale / out_act.scale, out_act.qmin, out_act.qmax)
    return LookupTable(
        op="gelu",
        domain_min=in_act.qmin,
        domain_max=in_act.qmax,
        values=values.astype(np.int32),
        dtype="int8",
        config=(float(in_act.scale), float(out_act.scale), 0),
    )


def build_softmax_exp_lut(in_act: ActivationQuantization) -> LookupTable:
    """Tabulate the integer ``exp`` of the softmax numerator.

    The I-BERT softmax first subtracts the row maximum, so the polynomial
    ``exp`` only ever sees values in ``[qmin - qmax, 0]`` — one table entry
    per representable shifted input.  The row-wise sum, the fixed-point
    normalisation to ``2**-SOFTMAX_OUTPUT_BITS`` and the output
    requantisation stay exact integer arithmetic in the executor.
    """
    domain = np.arange(in_act.qmin - in_act.qmax, 1, dtype=np.int64)
    values, _ = ibert.integer_exp(domain, in_act.scale)
    return LookupTable(
        op="exp",
        domain_min=int(domain[0]),
        domain_max=0,
        values=values.astype(np.int64),
        dtype="int32",
        config=(float(in_act.scale), 0, ibert.SOFTMAX_OUTPUT_BITS),
    )


def lower_to_int8(
    graph: ComputeGraph,
    calibration_inputs: np.ndarray,
    weight_bits: int = 8,
    activation_bits: int = 8,
    calibration_percentile: float = 99.9,
    use_lut: bool = True,
) -> QuantizedGraph:
    """Quantise a traced graph to int8 using a calibration batch.

    Parameters
    ----------
    graph:
        The float graph produced by one of the tracers.
    calibration_inputs:
        ``(batch, channels, samples)`` array of representative inputs used to
        pick the activation scales.
    weight_bits, activation_bits:
        Integer precision (8 in the paper; other widths are supported for
        ablation studies).
    calibration_percentile:
        Percentile of ``|activation|`` covered by the activation scale;
        clipping a tiny tail of outliers (99.9 by default) is standard
        practice and measurably improves post-training accuracy.
    use_lut:
        Tabulate the I-BERT GELU and softmax-``exp`` nonlinearities into
        per-configuration lookup tables (:class:`~repro.deploy.graph.LookupTable`)
        so the integer executor and the generated kernels run them as a
        single gather.  The tables are built from the legacy elementwise
        kernels over the full input domain, so results are bit-identical
        either way; pass ``False`` to keep the lowered graph on the
        elementwise path (the cross-checking baseline).

    Returns
    -------
    A :class:`QuantizedGraph` bundling the original graph, the per-tensor
    activation scales, the integer constants, the requantisation factors and
    (by default) the nonlinearity lookup tables.
    """
    executor = FloatGraphExecutor(graph)
    recorded = executor.run_recording(calibration_inputs)

    activations: Dict[str, ActivationQuantization] = {}
    for tensor_name, values in recorded.items():
        activations[tensor_name] = ActivationQuantization(
            name=tensor_name,
            scale=_symmetric_scale(values, bits=activation_bits, percentile=calibration_percentile),
            bits=activation_bits,
        )
    # Softmax outputs are probabilities in [0, 1]; pin their scale so the
    # attention weighting keeps maximum resolution regardless of calibration.
    for node in graph.nodes:
        if node.op == "softmax":
            activations[node.output.name] = ActivationQuantization(
                name=node.output.name,
                scale=1.0 / float(2 ** (activation_bits - 1) - 1),
                bits=activation_bits,
            )

    weight_spec = QuantizationSpec(bits=weight_bits, symmetric=True, signed=True)
    quantized_nodes: Dict[str, QuantizedNode] = {}
    for node in graph.nodes:
        lowered = QuantizedNode(node=node)
        input_scale = activations[node.inputs[0]].scale
        output_scale = activations[node.output.name].scale

        if node.op in ("conv1d", "linear"):
            weight = _quantize_weight(node.weights["weight"], weight_spec)
            lowered.constants["weight"] = weight
            if "bias" in node.weights:
                bias_scale = input_scale * weight.scale
                bias = np.round(node.weights["bias"] / bias_scale).astype(np.int64)
                lowered.constants["bias"] = QuantizedConstant(
                    values=bias, scale=bias_scale, dtype="int32"
                )
            lowered.requantizers["output"] = quantize_multiplier(
                input_scale * weight.scale / output_scale
            )
            multiplier, shift = lowered.requantizers["output"]
            if node.op == "conv1d":
                out_channels, in_channels, kernel = node.weights["weight"].shape
                lowered.gemm = GemmTileInfo(
                    m=int(node.output.shape[-1]),
                    k=int(in_channels * kernel),
                    n=int(out_channels),
                    multiplier=multiplier,
                    shift=shift,
                )
            else:
                out_features, in_features = node.weights["weight"].shape
                lowered.gemm = GemmTileInfo(
                    m=int(node.output.num_elements // out_features),
                    k=int(in_features),
                    n=int(out_features),
                    multiplier=multiplier,
                    shift=shift,
                )
        elif node.op == "matmul":
            other_scale = activations[node.inputs[1]].scale
            factor = input_scale * other_scale * float(node.attrs.get("scale", 1.0))
            lowered.requantizers["output"] = quantize_multiplier(factor / output_scale)
            multiplier, shift = lowered.requantizers["output"]
            lowered.gemm = GemmTileInfo(
                m=int(node.output.shape[-2]),
                k=int(node.attrs["inner_dim"]),
                n=int(node.output.shape[-1]),
                multiplier=multiplier,
                shift=shift,
            )
        elif node.op == "channel_affine":
            scale_const = node.weights["scale"]
            shift_const = node.weights["shift"]
            scale_q = _quantize_weight(scale_const, weight_spec)
            lowered.constants["scale"] = scale_q
            shift_scale = input_scale * scale_q.scale
            lowered.constants["shift"] = QuantizedConstant(
                values=np.round(shift_const / shift_scale).astype(np.int64),
                scale=shift_scale,
                dtype="int32",
            )
            lowered.requantizers["output"] = quantize_multiplier(shift_scale / output_scale)
        elif node.op in ("append_token", "add_positional"):
            key = "token" if node.op == "append_token" else "positions"
            constant = node.weights[key]
            lowered.constants[key] = QuantizedConstant(
                values=np.round(constant / output_scale).astype(np.int32),
                scale=output_scale,
                dtype="int8",
            )
            lowered.requantizers["input"] = quantize_multiplier(input_scale / output_scale)
        elif node.op == "add":
            other_scale = activations[node.inputs[1]].scale
            lowered.requantizers["lhs"] = quantize_multiplier(input_scale / output_scale)
            lowered.requantizers["rhs"] = quantize_multiplier(other_scale / output_scale)
        elif node.op in ("layernorm", "gelu", "softmax", "relu", "avgpool1d", "mean_tokens"):
            lowered.requantizers["output"] = quantize_multiplier(
                max(input_scale / output_scale, 1e-30)
            )
            if use_lut and node.op in LUT_OPERATORS:
                in_act = activations[node.inputs[0]]
                out_act = activations[node.output.name]
                if node.op == "gelu":
                    lowered.luts["gelu"] = build_gelu_lut(in_act, out_act)
                else:
                    lowered.luts["exp"] = build_softmax_exp_lut(in_act)
            if node.op == "layernorm":
                # LayerNorm keeps its affine parameters in float; they are a
                # negligible 2*C values folded into the requantisation step.
                lowered.constants["weight"] = QuantizedConstant(
                    values=node.weights["weight"].copy(), scale=1.0, dtype="int32"
                )
                lowered.constants["bias"] = QuantizedConstant(
                    values=node.weights["bias"].copy(), scale=1.0, dtype="int32"
                )
        quantized_nodes[node.name] = lowered

    return QuantizedGraph(
        graph=graph,
        activations=activations,
        nodes=quantized_nodes,
        weight_spec=weight_spec,
    )
