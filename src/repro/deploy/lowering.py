"""Lowering: turn a float :class:`ComputeGraph` into an int8 deployment graph.

The paper deploys int8 models on GAP8 with the integer-only transformer
kernels of Burrello et al. (COINS 2021), which follow the usual MCU
convention:

* **weights** — per-tensor symmetric int8 (``w ≈ q_w · s_w``);
* **activations** — per-tensor symmetric int8, with scales calibrated on a
  batch of representative inputs;
* **accumulation** — int32; biases are stored as int32 at the accumulator
  scale ``s_x · s_w``;
* **requantisation** — the float factor ``s_x · s_w / s_y`` between the
  accumulator and the next activation is encoded as a fixed-point multiplier
  plus arithmetic shift, so inference needs no floating point at all.

:func:`lower_to_int8` performs that conversion.  Since the pass-pipeline
refactor it is a thin entry point over the deploy compiler in
:mod:`repro.deploy.passes`: calibration, weight quantisation, GEMM tile
planning and LUT substitution each run as one :class:`~repro.deploy.passes.GraphPass`
under a :class:`~repro.deploy.passes.PassManager`, and the resulting
:class:`QuantizedGraph` is consumed by the integer executor
(:mod:`repro.deploy.int_engine`) and the code generator
(:mod:`repro.deploy.codegen`).  This module keeps the lowering *data model*
(activation/constant/node/graph dataclasses, the fixed-point multiplier
encoding, the LUT builders) that both the passes and the consumers share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from ..quant import ibert
from ..quant.quantizers import QuantizationSpec, compute_scale_zero_point, quantize
from .graph import ComputeGraph, GraphNode, LookupTable

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .passes import LoweringConfig, PassRecord

__all__ = [
    "ActivationQuantization",
    "GemmTileInfo",
    "QuantizedConstant",
    "QuantizedNode",
    "QuantizedGraph",
    "quantize_multiplier",
    "build_gelu_lut",
    "build_softmax_exp_lut",
    "lower_to_int8",
]


def quantize_multiplier(value: float, bits: int = 31) -> Tuple[int, int]:
    """Encode a positive float as ``multiplier / 2**shift`` (fixed point).

    This is the canonical requantisation encoding used by integer inference
    runtimes (gemmlowp, CMSIS-NN, PULP-NN): the returned ``multiplier`` fits
    in ``bits`` bits and ``value ≈ multiplier * 2**-shift``.
    """
    if value <= 0.0:
        raise ValueError("requantisation factor must be positive")
    shift = 0
    scaled = value
    limit = float(2 ** (bits - 1))
    while scaled < limit / 2:
        scaled *= 2.0
        shift += 1
    while scaled >= limit:
        scaled /= 2.0
        shift -= 1
    return int(round(scaled)), shift


@dataclass(frozen=True)
class ActivationQuantization:
    """Symmetric int8 quantisation parameters of one activation tensor."""

    name: str
    scale: float
    bits: int = 8

    @property
    def qmin(self) -> int:
        return -(2 ** (self.bits - 1))

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Quantise a float array to this tensor's integer grid."""
        q = np.round(np.asarray(values, dtype=np.float64) / self.scale)
        return np.clip(q, self.qmin, self.qmax).astype(np.int32)

    def dequantize(self, values: np.ndarray) -> np.ndarray:
        """Reconstruct float values from the integer grid."""
        return np.asarray(values, dtype=np.float64) * self.scale


@dataclass
class QuantizedConstant:
    """An int8/int32 constant plus the scale it was quantised with."""

    values: np.ndarray
    scale: float
    dtype: str

    @property
    def nbytes(self) -> int:
        """Storage footprint of the constant on the target."""
        per_element = {"int8": 1, "int32": 4}[self.dtype]
        return int(self.values.size * per_element)


@dataclass(frozen=True)
class GemmTileInfo:
    """Integer-GEMM lowering contract of one MAC node.

    ``conv1d`` (after im2col), ``linear`` and ``matmul`` all execute as one
    ``(M, K) @ (K, N)`` integer matmul per sample — ``M`` output rows per
    sample (the batch axis multiplies ``M``), ``K`` contracted inputs and
    ``N`` output features — followed by one fixed-point requantisation of
    the whole output tile.  The ``(multiplier, shift)`` pair is encoded
    here, at lowering time, so the executor and the generated kernels never
    re-derive it per invocation.
    """

    m: int
    k: int
    n: int
    multiplier: int
    shift: int

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the per-sample GEMM tile."""
        return self.m * self.k * self.n


@dataclass
class QuantizedNode:
    """A graph node plus its integer constants and requantisation factors."""

    node: GraphNode
    constants: Dict[str, QuantizedConstant] = field(default_factory=dict)
    #: Requantisation multiplier/shift pairs keyed by role (usually "output").
    requantizers: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: Integer-GEMM tile metadata; populated for the MAC operators
    #: (``conv1d``, ``linear``, ``matmul``) so the batched GEMM path and the
    #: code generator share one lowering-time requantisation contract.
    gemm: Optional[GemmTileInfo] = None
    #: Precomputed lookup tables keyed by role (``"gelu"``, ``"exp"``); only
    #: populated for :data:`~repro.deploy.graph.LUT_OPERATORS` nodes when the
    #: graph was lowered with ``use_lut=True``.
    luts: Dict[str, LookupTable] = field(default_factory=dict)
    #: Names of the nodes this node absorbed, in execution order, when an
    #: optimization pass fused them into it (empty for ordinary nodes).  The
    #: absorbed nodes' payloads stay in :attr:`QuantizedGraph.nodes` so the
    #: executors and the code generator keep addressing them by name.
    fused: Tuple[str, ...] = ()

    @property
    def weight_bytes(self) -> int:
        """Total constant bytes of this node (excluding lookup tables)."""
        return sum(constant.nbytes for constant in self.constants.values())

    @property
    def lut_bytes(self) -> int:
        """Total lookup-table bytes of this node on the target."""
        return sum(table.nbytes for table in self.luts.values())


@dataclass
class QuantizedGraph:
    """An int8-lowered inference graph ready for execution / code generation.

    ``graph`` is the executable graph — identical to ``source_graph`` under
    the default pipeline, structurally smaller (fused / dead-node-eliminated)
    when the optimization passes ran.  ``nodes`` keeps one payload per
    *original* node, including nodes absorbed by fusion, so every consumer
    keeps addressing constants, requantisers and tables by name.
    """

    graph: ComputeGraph
    activations: Dict[str, ActivationQuantization]
    nodes: Dict[str, QuantizedNode]
    weight_spec: QuantizationSpec
    #: Per-pass execution records of the compiler pipeline that produced the
    #: graph (:class:`~repro.deploy.passes.PassRecord` entries), shown by the
    #: deployment report.  Empty for hand-built graphs.
    manifest: Tuple["PassRecord", ...] = ()
    #: The traced graph the compiler started from (before any fusion).
    source_graph: Optional[ComputeGraph] = None
    #: The resolved :class:`~repro.deploy.passes.LoweringConfig`.
    config: Optional["LoweringConfig"] = None

    @property
    def name(self) -> str:
        return self.graph.name

    @property
    def input_quantization(self) -> ActivationQuantization:
        """Quantisation of the graph input tensor."""
        return self.activations[self.graph.graph_input.name]

    @property
    def output_quantization(self) -> ActivationQuantization:
        """Quantisation of the graph output tensor (the logits)."""
        return self.activations[self.graph.output.name]

    @property
    def total_weight_bytes(self) -> int:
        """Total constant storage of the lowered graph."""
        return sum(node.weight_bytes for node in self.nodes.values())

    @property
    def total_lut_bytes(self) -> int:
        """Total lookup-table storage of the lowered graph."""
        return sum(node.lut_bytes for node in self.nodes.values())

    @property
    def uses_luts(self) -> bool:
        """Whether any node carries a precomputed lookup table."""
        return any(node.luts for node in self.nodes.values())

    @property
    def weight_kilobytes(self) -> float:
        """Constant storage in kB (comparable to the paper's Memory column)."""
        return self.total_weight_bytes / 1024.0

    def activation_for(self, tensor_name: str) -> ActivationQuantization:
        """Quantisation parameters of a named activation tensor."""
        return self.activations[tensor_name]


def _symmetric_scale(values: np.ndarray, bits: int = 8, percentile: float = 100.0) -> float:
    """Symmetric per-tensor scale covering the given percentile of |values|."""
    magnitudes = np.abs(np.asarray(values, dtype=np.float64)).reshape(-1)
    if magnitudes.size == 0:
        return 1.0
    if percentile >= 100.0:
        bound = float(magnitudes.max())
    else:
        bound = float(np.percentile(magnitudes, percentile))
    bound = max(bound, 1e-8)
    return bound / float(2 ** (bits - 1) - 1)


def _quantize_weight(values: np.ndarray, spec: QuantizationSpec) -> QuantizedConstant:
    scale, zero_point = compute_scale_zero_point(values.min(), values.max(), spec)
    integer = quantize(values, scale, zero_point, spec).astype(np.int32)
    return QuantizedConstant(values=integer, scale=float(scale), dtype="int8")


# --------------------------------------------------------------------- #
# Lookup-table construction (I-BERT nonlinearities over bounded domains)
# --------------------------------------------------------------------- #
def build_gelu_lut(
    in_act: ActivationQuantization, out_act: ActivationQuantization
) -> LookupTable:
    """Tabulate the fused integer GELU + requantisation kernel.

    GELU consumes the requantised int8 grid directly, so the whole node —
    I-BERT's sign-decomposed polynomial followed by the fixed-point
    requantisation to the output scale — is a pure function of one int8
    value.  The table is built by evaluating exactly that legacy elementwise
    chain over every representable input, which makes LUT execution
    bit-identical over the full domain by construction.
    """
    from .int_engine import requantize  # local import: int_engine imports us

    domain = np.arange(in_act.qmin, in_act.qmax + 1, dtype=np.int64)
    q_out, gelu_scale = ibert.integer_gelu(domain, in_act.scale)
    values = requantize(q_out, gelu_scale / out_act.scale, out_act.qmin, out_act.qmax)
    return LookupTable(
        op="gelu",
        domain_min=in_act.qmin,
        domain_max=in_act.qmax,
        values=values.astype(np.int32),
        dtype="int8",
        config=(float(in_act.scale), float(out_act.scale), 0),
    )


def build_softmax_exp_lut(in_act: ActivationQuantization) -> LookupTable:
    """Tabulate the integer ``exp`` of the softmax numerator.

    The I-BERT softmax first subtracts the row maximum, so the polynomial
    ``exp`` only ever sees values in ``[qmin - qmax, 0]`` — one table entry
    per representable shifted input.  The row-wise sum, the fixed-point
    normalisation to ``2**-SOFTMAX_OUTPUT_BITS`` and the output
    requantisation stay exact integer arithmetic in the executor.
    """
    domain = np.arange(in_act.qmin - in_act.qmax, 1, dtype=np.int64)
    values, _ = ibert.integer_exp(domain, in_act.scale)
    return LookupTable(
        op="exp",
        domain_min=int(domain[0]),
        domain_max=0,
        values=values.astype(np.int64),
        dtype="int32",
        config=(float(in_act.scale), 0, ibert.SOFTMAX_OUTPUT_BITS),
    )


def lower_to_int8(
    graph: ComputeGraph,
    calibration_inputs: np.ndarray,
    weight_bits: Optional[int] = None,
    activation_bits: Optional[int] = None,
    calibration_percentile: Optional[float] = None,
    use_lut: Optional[bool] = None,
    config: Optional["LoweringConfig"] = None,
    optimize: bool = False,
) -> QuantizedGraph:
    """Quantise a traced graph to int8 using a calibration batch.

    This is the stable entry point of the deploy compiler: it resolves the
    configuration and runs the pass pipeline of
    :func:`repro.deploy.passes.compile_graph` (calibrate-activations →
    quantize-weights → plan-gemm-tiles → lut-substitution, plus the
    optimization passes when enabled).

    Parameters
    ----------
    graph:
        The float graph produced by one of the tracers.
    calibration_inputs:
        ``(batch, channels, samples)`` array of representative inputs used to
        pick the activation scales.
    weight_bits, activation_bits, calibration_percentile, use_lut:
        Deprecated aliases for the matching :class:`~repro.deploy.passes.LoweringConfig`
        fields, kept so existing callers (and ``BackendCache`` keys built
        from ``lower_kwargs``) keep working.  ``None`` means "use the config
        (or its default)"; an explicit value overrides ``config``.
    config:
        A :class:`~repro.deploy.passes.LoweringConfig` selecting precision,
        the LUT op set and the optimization passes.  Defaults to
        ``LoweringConfig()``, which reproduces the pre-pipeline lowering
        bit for bit (same graph topology, same constants and requantisers).
    optimize:
        Shorthand for enabling all optimization passes
        (requant folding, conv→pool fusion, dead-node elimination) on top of
        ``config`` — equivalent to ``LoweringConfig.optimized()``.  The
        optimized graph produces bitwise-identical logits; only the node
        schedule shrinks.

    Returns
    -------
    A :class:`QuantizedGraph` bundling the executable graph, the per-tensor
    activation scales, the integer constants, the requantisation factors,
    (by default) the nonlinearity lookup tables, and the pass manifest.
    """
    from .passes import LoweringConfig, compile_graph

    resolved = LoweringConfig.resolve(
        config=config,
        optimize=optimize,
        weight_bits=weight_bits,
        activation_bits=activation_bits,
        calibration_percentile=calibration_percentile,
        use_lut=use_lut,
    )
    return compile_graph(graph, calibration_inputs, resolved)
