"""Tracers: convert trained models into deployment :class:`ComputeGraph` s.

A tracer walks the module tree of a trained model (in evaluation mode, so
dropout disappears and batch-norm uses its running statistics) and emits the
equivalent flat sequence of primitive kernels with static shapes and frozen
weights.  The resulting graph is what the quantiser, the tiler, the memory
planner and the code generator operate on.

Two tracers are provided, one per architecture family of the paper:

* :func:`trace_bioformer` — patch embedding, class token, positional
  embedding, ``depth`` pre-norm MHSA/FFN blocks, final norm and head;
* :func:`trace_temponet` — three TCN blocks (dilated convs + strided conv +
  pooling, with batch-norm folded into per-channel affines) and the fully
  connected classifier.

:func:`trace_model` dispatches on the model type.
"""

from __future__ import annotations

import math
from typing import List, Union

import numpy as np

from ..models.bioformer import Bioformer
from ..models.temponet import TEMPONet
from .graph import ComputeGraph, GraphNode, TensorSpec

__all__ = ["trace_bioformer", "trace_temponet", "trace_model"]


def _conv_weights(conv) -> dict:
    weights = {"weight": conv.weight.data.copy()}
    if conv.bias is not None:
        weights["bias"] = conv.bias.data.copy()
    return weights


def _linear_weights(linear) -> dict:
    weights = {"weight": linear.weight.data.copy()}
    if linear.bias is not None:
        weights["bias"] = linear.bias.data.copy()
    return weights


def _folded_batchnorm(bn) -> dict:
    """Fold an evaluation-mode BatchNorm1d into a per-channel affine."""
    gamma = bn.weight.data
    beta = bn.bias.data
    mean = np.asarray(bn.running_mean)
    var = np.asarray(bn.running_var)
    scale = gamma / np.sqrt(var + bn.eps)
    shift = beta - mean * scale
    return {"scale": scale.copy(), "shift": shift.copy()}


def trace_bioformer(model: Bioformer, name: str = "") -> ComputeGraph:
    """Trace a (trained) Bioformer into a deployment graph.

    The trace mirrors :meth:`Bioformer.forward` in evaluation mode; the
    float graph executor reproduces the model output bit-for-bit up to
    floating-point associativity (checked by the test-suite).
    """
    cfg = model.config
    graph_name = name or cfg.describe()
    tokens = cfg.num_tokens
    sequence = cfg.sequence_length
    dim = cfg.embed_dim
    heads = model.blocks[0].attention.num_heads
    head_dim = model.blocks[0].attention.head_dim
    total_dim = heads * head_dim

    graph_input = TensorSpec("input", (cfg.num_channels, cfg.window_samples))
    nodes: List[GraphNode] = []

    nodes.append(
        GraphNode(
            name="patch_embedding",
            op="conv1d",
            inputs=["input"],
            output=TensorSpec("patches", (dim, tokens)),
            attrs={"stride": cfg.patch_size, "padding": 0, "dilation": 1},
            weights=_conv_weights(model.patch_embedding),
        )
    )
    nodes.append(
        GraphNode(
            name="to_tokens",
            op="transpose",
            inputs=["patches"],
            output=TensorSpec("tokens", (tokens, dim)),
            attrs={"axes": (1, 0)},
        )
    )
    current = "tokens"
    if cfg.pooling == "class_token":
        nodes.append(
            GraphNode(
                name="append_class_token",
                op="append_token",
                inputs=[current],
                output=TensorSpec("tokens_cls", (sequence, dim)),
                weights={"token": model.class_token.data.reshape(1, dim).copy()},
            )
        )
        current = "tokens_cls"
    if cfg.use_positional_embedding:
        nodes.append(
            GraphNode(
                name="positional_embedding",
                op="add_positional",
                inputs=[current],
                output=TensorSpec("embedded", (sequence, dim)),
                weights={
                    "positions": model.positional_embedding.data.reshape(sequence, dim).copy()
                },
            )
        )
        current = "embedded"

    for index, block in enumerate(model.blocks):
        prefix = f"block{index}"
        attention = block.attention
        residual_in = current

        nodes.append(
            GraphNode(
                name=f"{prefix}.attention_norm",
                op="layernorm",
                inputs=[current],
                output=TensorSpec(f"{prefix}.normed1", (sequence, dim)),
                attrs={"eps": block.attention_norm.eps},
                weights={
                    "weight": block.attention_norm.weight.data.copy(),
                    "bias": block.attention_norm.bias.data.copy(),
                },
            )
        )
        normed = f"{prefix}.normed1"
        for role, projection in (
            ("query", attention.query_projection),
            ("key", attention.key_projection),
            ("value", attention.value_projection),
        ):
            nodes.append(
                GraphNode(
                    name=f"{prefix}.attention.{role}",
                    op="linear",
                    inputs=[normed],
                    output=TensorSpec(f"{prefix}.{role}", (sequence, total_dim)),
                    weights=_linear_weights(projection),
                )
            )
            nodes.append(
                GraphNode(
                    name=f"{prefix}.attention.{role}_heads",
                    op="split_heads",
                    inputs=[f"{prefix}.{role}"],
                    output=TensorSpec(f"{prefix}.{role}_h", (heads, sequence, head_dim)),
                    attrs={"num_heads": heads, "head_dim": head_dim},
                )
            )
        nodes.append(
            GraphNode(
                name=f"{prefix}.attention.scores",
                op="matmul",
                inputs=[f"{prefix}.query_h", f"{prefix}.key_h"],
                output=TensorSpec(f"{prefix}.scores", (heads, sequence, sequence)),
                attrs={
                    "transpose_b": True,
                    "scale": 1.0 / math.sqrt(head_dim),
                    "inner_dim": head_dim,
                },
            )
        )
        nodes.append(
            GraphNode(
                name=f"{prefix}.attention.softmax",
                op="softmax",
                inputs=[f"{prefix}.scores"],
                output=TensorSpec(f"{prefix}.probs", (heads, sequence, sequence)),
                attrs={"axis": -1},
            )
        )
        nodes.append(
            GraphNode(
                name=f"{prefix}.attention.context",
                op="matmul",
                inputs=[f"{prefix}.probs", f"{prefix}.value_h"],
                output=TensorSpec(f"{prefix}.context", (heads, sequence, head_dim)),
                attrs={"transpose_b": False, "scale": 1.0, "inner_dim": sequence},
            )
        )
        nodes.append(
            GraphNode(
                name=f"{prefix}.attention.merge",
                op="merge_heads",
                inputs=[f"{prefix}.context"],
                output=TensorSpec(f"{prefix}.merged", (sequence, total_dim)),
                attrs={"num_heads": heads, "head_dim": head_dim},
            )
        )
        nodes.append(
            GraphNode(
                name=f"{prefix}.attention.out",
                op="linear",
                inputs=[f"{prefix}.merged"],
                output=TensorSpec(f"{prefix}.attn_out", (sequence, dim)),
                weights=_linear_weights(attention.output_projection),
            )
        )
        nodes.append(
            GraphNode(
                name=f"{prefix}.attention_residual",
                op="add",
                inputs=[residual_in, f"{prefix}.attn_out"],
                output=TensorSpec(f"{prefix}.res1", (sequence, dim)),
            )
        )
        current = f"{prefix}.res1"

        nodes.append(
            GraphNode(
                name=f"{prefix}.ffn_norm",
                op="layernorm",
                inputs=[current],
                output=TensorSpec(f"{prefix}.normed2", (sequence, dim)),
                attrs={"eps": block.feedforward_norm.eps},
                weights={
                    "weight": block.feedforward_norm.weight.data.copy(),
                    "bias": block.feedforward_norm.bias.data.copy(),
                },
            )
        )
        nodes.append(
            GraphNode(
                name=f"{prefix}.ffn.expand",
                op="linear",
                inputs=[f"{prefix}.normed2"],
                output=TensorSpec(f"{prefix}.hidden", (sequence, block.feedforward.hidden_dim)),
                weights=_linear_weights(block.feedforward.expand),
            )
        )
        nodes.append(
            GraphNode(
                name=f"{prefix}.ffn.gelu",
                op="gelu",
                inputs=[f"{prefix}.hidden"],
                output=TensorSpec(
                    f"{prefix}.hidden_act", (sequence, block.feedforward.hidden_dim)
                ),
            )
        )
        nodes.append(
            GraphNode(
                name=f"{prefix}.ffn.contract",
                op="linear",
                inputs=[f"{prefix}.hidden_act"],
                output=TensorSpec(f"{prefix}.ffn_out", (sequence, dim)),
                weights=_linear_weights(block.feedforward.contract),
            )
        )
        nodes.append(
            GraphNode(
                name=f"{prefix}.ffn_residual",
                op="add",
                inputs=[current, f"{prefix}.ffn_out"],
                output=TensorSpec(f"{prefix}.res2", (sequence, dim)),
            )
        )
        current = f"{prefix}.res2"

    nodes.append(
        GraphNode(
            name="final_norm",
            op="layernorm",
            inputs=[current],
            output=TensorSpec("final_normed", (sequence, dim)),
            attrs={"eps": model.final_norm.eps},
            weights={
                "weight": model.final_norm.weight.data.copy(),
                "bias": model.final_norm.bias.data.copy(),
            },
        )
    )
    if cfg.pooling == "class_token":
        nodes.append(
            GraphNode(
                name="class_token_output",
                op="select_token",
                inputs=["final_normed"],
                output=TensorSpec("pooled", (dim,)),
                attrs={"index": -1},
            )
        )
    else:
        nodes.append(
            GraphNode(
                name="mean_pooling",
                op="mean_tokens",
                inputs=["final_normed"],
                output=TensorSpec("pooled", (dim,)),
            )
        )
    nodes.append(
        GraphNode(
            name="head",
            op="linear",
            inputs=["pooled"],
            output=TensorSpec("logits", (cfg.num_classes,)),
            weights=_linear_weights(model.head),
        )
    )
    return ComputeGraph(graph_name, graph_input, nodes)


def trace_temponet(model: TEMPONet, name: str = "TEMPONet") -> ComputeGraph:
    """Trace a (trained) TEMPONet into a deployment graph.

    Evaluation-mode batch normalisation is folded into per-channel affine
    nodes (``channel_affine``), exactly as an MCU deployment flow folds BN
    into the preceding convolution's requantisation step.
    """
    cfg = model.config
    graph_input = TensorSpec("input", (cfg.num_channels, cfg.window_samples))
    nodes: List[GraphNode] = []
    current = "input"
    length = cfg.window_samples

    for index, block in enumerate(model.blocks):
        prefix = f"block{index}"
        stages = (
            ("conv1", block.conv1, block.bn1),
            ("conv2", block.conv2, block.bn2),
            ("strided_conv", block.strided_conv, block.bn3),
        )
        for stage_name, conv, bn in stages:
            length = conv.output_length(length)
            channels = conv.out_channels
            conv_out = f"{prefix}.{stage_name}"
            nodes.append(
                GraphNode(
                    name=conv_out,
                    op="conv1d",
                    inputs=[current],
                    output=TensorSpec(conv_out + ".out", (channels, length)),
                    attrs={
                        "stride": conv.stride,
                        "padding": conv.padding,
                        "dilation": conv.dilation,
                    },
                    weights=_conv_weights(conv),
                )
            )
            nodes.append(
                GraphNode(
                    name=f"{conv_out}.bn",
                    op="channel_affine",
                    inputs=[conv_out + ".out"],
                    output=TensorSpec(conv_out + ".bn", (channels, length)),
                    weights=_folded_batchnorm(bn),
                )
            )
            nodes.append(
                GraphNode(
                    name=f"{conv_out}.relu",
                    op="relu",
                    inputs=[conv_out + ".bn"],
                    output=TensorSpec(conv_out + ".act", (channels, length)),
                )
            )
            current = conv_out + ".act"
        pooled_length = (length - block.pool.kernel_size) // block.pool.stride + 1
        nodes.append(
            GraphNode(
                name=f"{prefix}.pool",
                op="avgpool1d",
                inputs=[current],
                output=TensorSpec(f"{prefix}.pooled", (channels, pooled_length)),
                attrs={"kernel_size": block.pool.kernel_size, "stride": block.pool.stride},
            )
        )
        current = f"{prefix}.pooled"
        length = pooled_length

    nodes.append(
        GraphNode(
            name="flatten",
            op="flatten",
            inputs=[current],
            output=TensorSpec("flattened", (model.flatten_features,)),
        )
    )
    current = "flattened"
    classifier_linears = [
        module for module in model.classifier if type(module).__name__ == "Linear"
    ]
    for index, linear in enumerate(classifier_linears):
        out_name = f"fc{index + 1}"
        nodes.append(
            GraphNode(
                name=out_name,
                op="linear",
                inputs=[current],
                output=TensorSpec(out_name + ".out", (linear.out_features,)),
                weights=_linear_weights(linear),
            )
        )
        current = out_name + ".out"
        if index < len(classifier_linears) - 1:
            nodes.append(
                GraphNode(
                    name=f"{out_name}.relu",
                    op="relu",
                    inputs=[current],
                    output=TensorSpec(out_name + ".act", (linear.out_features,)),
                )
            )
            current = out_name + ".act"
    nodes[-1].output = TensorSpec("logits", nodes[-1].output.shape)
    return ComputeGraph(name, graph_input, nodes)


def trace_model(model: Union[Bioformer, TEMPONet], name: str = "") -> ComputeGraph:
    """Trace either supported architecture (dispatch helper)."""
    if isinstance(model, Bioformer):
        return trace_bioformer(model, name=name)
    if isinstance(model, TEMPONet):
        return trace_temponet(model, name=name or "TEMPONet")
    raise TypeError(f"cannot trace object of type {type(model).__name__}")
