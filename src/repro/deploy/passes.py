"""The deploy compiler: capture → passes → codegen.

This module turns the former monolithic ``lower_to_int8`` into a proper
pass pipeline over the deploy graph IR, in the style of torch.fx-like
tracer/transform stacks: a tracer (:mod:`repro.deploy.tracers`) captures a
:class:`~repro.deploy.graph.ComputeGraph`, an ordered list of
:class:`GraphPass` objects transforms/annotates it under a
:class:`PassManager`, and the resulting
:class:`~repro.deploy.lowering.QuantizedGraph` feeds every consumer — the
integer executor, the C code generator and the deployment report.

Pipeline contract
-----------------
* Every pass is **pure**: it receives a :class:`LoweringState` and returns a
  new one, never mutating its input graph (the manager snapshots and checks).
* The manager re-runs :meth:`ComputeGraph.validate` after every pass, so a
  buggy pass fails at its own boundary instead of corrupting consumers.
* Every pass is **bitwise-safe**: the lowered graph must produce logits
  bit-identical to the unoptimized path.  The base pipeline reproduces the
  pre-refactor lowering exactly; the optimization passes (requant folding,
  conv→pool fusion, dead-node elimination) only restructure the *schedule* —
  a fused node carries its constituent kernels in ``attrs["fused_chain"]``
  and the executors replay them with the exact original per-stage arithmetic
  (chaining two fixed-point requantisers into one multiplier would
  double-round and is **not** bitwise-exact, so fusion deliberately keeps
  the per-stage pairs).
* The manager records a :class:`PassRecord` per pass (node counts and wall
  time); the manifest ships on the :class:`QuantizedGraph` and is shown by
  the deployment report.

The default configuration runs only the base lowering passes and is pinned
bitwise against the pre-pipeline lowering by the existing GEMM/LUT test
suites; ``LoweringConfig.optimized()`` (or ``lower_to_int8(optimize=True)``)
adds the fusion passes.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..quant.quantizers import QuantizationSpec
from .engine import FloatGraphExecutor
from .graph import LUT_OPERATORS, MAC_OPERATORS, ComputeGraph, GraphNode
from .lowering import (
    ActivationQuantization,
    GemmTileInfo,
    QuantizedConstant,
    QuantizedGraph,
    QuantizedNode,
    _quantize_weight,
    _symmetric_scale,
    build_gelu_lut,
    build_softmax_exp_lut,
    quantize_multiplier,
)

__all__ = [
    "LoweringConfig",
    "LoweringState",
    "GraphPass",
    "PassRecord",
    "PassPipelineError",
    "PassManager",
    "CalibrateActivationsPass",
    "QuantizeWeightsPass",
    "PlanGemmTilesPass",
    "LutSubstitutionPass",
    "FoldRequantPass",
    "FuseConvPoolPass",
    "DeadNodeEliminationPass",
    "FOLDABLE_OPERATORS",
    "build_pass_pipeline",
    "compile_graph",
]

#: Elementwise tails the requant-folding pass may absorb into a preceding
#: MAC node.  Each is a single-input kernel whose integer lowering consumes
#: the producer's requantised int8 output directly, so replaying it inside
#: the fused node is the identical arithmetic.
FOLDABLE_OPERATORS: Tuple[str, ...] = ("channel_affine", "relu", "gelu")


# --------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LoweringConfig:
    """Resolved configuration of the deploy compiler.

    Replaces the boolean-soup keyword arguments that ``lower_to_int8`` had
    accumulated (``use_lut=...``, and whatever the next flag would have
    been); the old kwargs survive as deprecated aliases resolved by
    :meth:`resolve`, so existing callers and ``BackendCache`` keys keep
    working unchanged.
    """

    #: Integer precision (8/8 in the paper; other widths for ablations).
    weight_bits: int = 8
    activation_bits: int = 8
    #: Percentile of ``|activation|`` covered by the activation scale.
    calibration_percentile: float = 99.9
    #: Tabulate the I-BERT GELU / softmax-``exp`` nonlinearities
    #: (:class:`LutSubstitutionPass`); bit-identical either way.
    use_lut: bool = True
    #: Fold sole-consumer elementwise tails (channel_affine / relu / gelu)
    #: into the preceding MAC node (:class:`FoldRequantPass`).
    fold_requant: bool = False
    #: Fuse a sole-consumer ``avgpool1d`` into the preceding (possibly
    #: already fused) conv node (:class:`FuseConvPoolPass`).
    fuse_pool: bool = False
    #: Drop nodes whose outputs nothing consumes
    #: (:class:`DeadNodeEliminationPass`).
    eliminate_dead_nodes: bool = False

    @classmethod
    def optimized(cls, **overrides) -> "LoweringConfig":
        """The default config with every optimization pass enabled."""
        settings = dict(fold_requant=True, fuse_pool=True, eliminate_dead_nodes=True)
        settings.update(overrides)
        return cls(**settings)

    @property
    def optimizes(self) -> bool:
        """Whether any graph-restructuring pass is enabled."""
        return self.fold_requant or self.fuse_pool or self.eliminate_dead_nodes

    @classmethod
    def resolve(
        cls,
        config: Optional["LoweringConfig"] = None,
        optimize: bool = False,
        **overrides,
    ) -> "LoweringConfig":
        """Merge a base config, the ``optimize`` shorthand and legacy kwargs.

        ``overrides`` are the deprecated ``lower_to_int8`` keyword aliases
        (``weight_bits=...``, ``use_lut=...``, ...); ``None`` entries mean
        "keep the config value", anything else wins over ``config``.
        Unknown keys raise ``TypeError`` exactly like a bad kwarg would.
        """
        base = config if config is not None else cls()
        if optimize:
            base = replace(
                base, fold_requant=True, fuse_pool=True, eliminate_dead_nodes=True
            )
        effective = {
            key: value for key, value in overrides.items() if value is not None
        }
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(effective) - known)
        if unknown:
            raise TypeError(f"unknown lowering option(s): {', '.join(unknown)}")
        return replace(base, **effective) if effective else base


@dataclass
class LoweringState:
    """Everything a pass may read or (functionally) rewrite.

    The state threads the graph plus the lowering annotations through the
    pipeline; a pass returns ``dataclasses.replace(state, ...)`` with the
    fields it changed.  ``source_graph`` always names the traced input graph
    so consumers can diff the optimized schedule against the capture.
    """

    graph: ComputeGraph
    config: LoweringConfig
    calibration: np.ndarray
    source_graph: ComputeGraph
    activations: Dict[str, ActivationQuantization] = field(default_factory=dict)
    nodes: Dict[str, QuantizedNode] = field(default_factory=dict)
    weight_spec: Optional[QuantizationSpec] = None


# --------------------------------------------------------------------- #
# Pass protocol and manager
# --------------------------------------------------------------------- #
class GraphPass:
    """One transformation/annotation step of the deploy compiler.

    Subclasses set :attr:`name` and implement :meth:`run`.  A pass must be
    pure — build new containers, never mutate ``state.graph`` or the dicts
    it shares — and must keep execution bitwise-identical (see the module
    docstring for why requant chains cannot be collapsed numerically).
    """

    name: str = "graph-pass"

    def run(self, state: LoweringState) -> LoweringState:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name='{self.name}')"


@dataclass(frozen=True)
class PassRecord:
    """Execution record of one pass (the manifest entry)."""

    name: str
    nodes_before: int
    nodes_after: int
    wall_ms: float

    @property
    def removed_nodes(self) -> int:
        return self.nodes_before - self.nodes_after


class PassPipelineError(RuntimeError):
    """A pass produced an invalid graph or violated the purity contract."""


class PassManager:
    """Runs an ordered pass list, validating the graph after every pass.

    The manager enforces the pipeline contract mechanically: the input
    graph's node list is snapshotted before each pass and compared after
    (purity), the returned graph is re-validated (SSA/uniqueness), and a
    :class:`PassRecord` is appended to :attr:`manifest` per pass.  Failures
    are wrapped in :class:`PassPipelineError` naming the offending pass.
    """

    def __init__(self, passes: Sequence[GraphPass], validate: bool = True) -> None:
        self.passes: List[GraphPass] = list(passes)
        self.validate = validate
        self.manifest: List[PassRecord] = []

    def run(self, state: LoweringState) -> LoweringState:
        self.manifest = []
        for graph_pass in self.passes:
            nodes_before = len(state.graph)
            snapshot = [(node.name, node.output.name) for node in state.graph.nodes]
            start = time.perf_counter()
            try:
                new_state = graph_pass.run(state)
            except PassPipelineError:
                raise
            except Exception as error:
                raise PassPipelineError(
                    f"pass '{graph_pass.name}' failed: {error}"
                ) from error
            wall_ms = (time.perf_counter() - start) * 1e3
            if new_state is None or not isinstance(new_state, LoweringState):
                raise PassPipelineError(
                    f"pass '{graph_pass.name}' returned {type(new_state).__name__}, "
                    "expected a LoweringState"
                )
            if self.validate:
                after = [(node.name, node.output.name) for node in state.graph.nodes]
                if after != snapshot:
                    raise PassPipelineError(
                        f"pass '{graph_pass.name}' mutated its input graph in "
                        "place; passes must return a new graph"
                    )
                try:
                    new_state.graph.validate()
                except ValueError as error:
                    raise PassPipelineError(
                        f"pass '{graph_pass.name}' produced an invalid graph: {error}"
                    ) from error
            self.manifest.append(
                PassRecord(
                    name=graph_pass.name,
                    nodes_before=nodes_before,
                    nodes_after=len(new_state.graph),
                    wall_ms=wall_ms,
                )
            )
            state = new_state
        return state


# --------------------------------------------------------------------- #
# Base lowering passes (bitwise-pinned against the pre-pipeline lowering)
# --------------------------------------------------------------------- #
class CalibrateActivationsPass(GraphPass):
    """Run the float executor on the calibration batch and pick scales."""

    name = "calibrate-activations"

    def run(self, state: LoweringState) -> LoweringState:
        config = state.config
        executor = FloatGraphExecutor(state.graph)
        recorded = executor.run_recording(state.calibration)

        activations: Dict[str, ActivationQuantization] = {}
        for tensor_name, values in recorded.items():
            activations[tensor_name] = ActivationQuantization(
                name=tensor_name,
                scale=_symmetric_scale(
                    values,
                    bits=config.activation_bits,
                    percentile=config.calibration_percentile,
                ),
                bits=config.activation_bits,
            )
        # Softmax outputs are probabilities in [0, 1]; pin their scale so the
        # attention weighting keeps maximum resolution regardless of
        # calibration.
        for node in state.graph.nodes:
            if node.op == "softmax":
                activations[node.output.name] = ActivationQuantization(
                    name=node.output.name,
                    scale=1.0 / float(2 ** (config.activation_bits - 1) - 1),
                    bits=config.activation_bits,
                )
        return replace(state, activations=activations)


class QuantizeWeightsPass(GraphPass):
    """Quantise every node's constants and encode its requantisers."""

    name = "quantize-weights"

    def run(self, state: LoweringState) -> LoweringState:
        config = state.config
        activations = state.activations
        weight_spec = QuantizationSpec(
            bits=config.weight_bits, symmetric=True, signed=True
        )
        quantized_nodes: Dict[str, QuantizedNode] = {}
        for node in state.graph.nodes:
            lowered = QuantizedNode(node=node)
            input_scale = activations[node.inputs[0]].scale
            output_scale = activations[node.output.name].scale

            if node.op in ("conv1d", "linear"):
                weight = _quantize_weight(node.weights["weight"], weight_spec)
                lowered.constants["weight"] = weight
                if "bias" in node.weights:
                    bias_scale = input_scale * weight.scale
                    bias = np.round(node.weights["bias"] / bias_scale).astype(np.int64)
                    lowered.constants["bias"] = QuantizedConstant(
                        values=bias, scale=bias_scale, dtype="int32"
                    )
                lowered.requantizers["output"] = quantize_multiplier(
                    input_scale * weight.scale / output_scale
                )
            elif node.op == "matmul":
                other_scale = activations[node.inputs[1]].scale
                factor = input_scale * other_scale * float(node.attrs.get("scale", 1.0))
                lowered.requantizers["output"] = quantize_multiplier(
                    factor / output_scale
                )
            elif node.op == "channel_affine":
                scale_const = node.weights["scale"]
                shift_const = node.weights["shift"]
                scale_q = _quantize_weight(scale_const, weight_spec)
                lowered.constants["scale"] = scale_q
                shift_scale = input_scale * scale_q.scale
                lowered.constants["shift"] = QuantizedConstant(
                    values=np.round(shift_const / shift_scale).astype(np.int64),
                    scale=shift_scale,
                    dtype="int32",
                )
                lowered.requantizers["output"] = quantize_multiplier(
                    shift_scale / output_scale
                )
            elif node.op in ("append_token", "add_positional"):
                key = "token" if node.op == "append_token" else "positions"
                constant = node.weights[key]
                lowered.constants[key] = QuantizedConstant(
                    values=np.round(constant / output_scale).astype(np.int32),
                    scale=output_scale,
                    dtype="int8",
                )
                lowered.requantizers["input"] = quantize_multiplier(
                    input_scale / output_scale
                )
            elif node.op == "add":
                other_scale = activations[node.inputs[1]].scale
                lowered.requantizers["lhs"] = quantize_multiplier(
                    input_scale / output_scale
                )
                lowered.requantizers["rhs"] = quantize_multiplier(
                    other_scale / output_scale
                )
            elif node.op in (
                "layernorm",
                "gelu",
                "softmax",
                "relu",
                "avgpool1d",
                "mean_tokens",
            ):
                lowered.requantizers["output"] = quantize_multiplier(
                    max(input_scale / output_scale, 1e-30)
                )
                if node.op == "layernorm":
                    # LayerNorm keeps its affine parameters in float; they
                    # are a negligible 2*C values folded into the
                    # requantisation step.
                    lowered.constants["weight"] = QuantizedConstant(
                        values=node.weights["weight"].copy(), scale=1.0, dtype="int32"
                    )
                    lowered.constants["bias"] = QuantizedConstant(
                        values=node.weights["bias"].copy(), scale=1.0, dtype="int32"
                    )
            quantized_nodes[node.name] = lowered
        return replace(state, nodes=quantized_nodes, weight_spec=weight_spec)


class PlanGemmTilesPass(GraphPass):
    """Attach :class:`GemmTileInfo` to every MAC node.

    The tile reuses the ``requantizers["output"]`` pair encoded by
    :class:`QuantizeWeightsPass`, so the GEMM path and the per-op path share
    one lowering-time requantisation contract.
    """

    name = "plan-gemm-tiles"

    def run(self, state: LoweringState) -> LoweringState:
        nodes = dict(state.nodes)
        for node in state.graph.nodes:
            if node.op not in MAC_OPERATORS:
                continue
            lowered = nodes[node.name]
            multiplier, shift = lowered.requantizers["output"]
            if node.op == "conv1d":
                out_channels, in_channels, kernel = node.weights["weight"].shape
                tile = GemmTileInfo(
                    m=int(node.output.shape[-1]),
                    k=int(in_channels * kernel),
                    n=int(out_channels),
                    multiplier=multiplier,
                    shift=shift,
                )
            elif node.op == "linear":
                out_features, in_features = node.weights["weight"].shape
                tile = GemmTileInfo(
                    m=int(node.output.num_elements // out_features),
                    k=int(in_features),
                    n=int(out_features),
                    multiplier=multiplier,
                    shift=shift,
                )
            else:  # matmul
                tile = GemmTileInfo(
                    m=int(node.output.shape[-2]),
                    k=int(node.attrs["inner_dim"]),
                    n=int(node.output.shape[-1]),
                    multiplier=multiplier,
                    shift=shift,
                )
            nodes[node.name] = replace(lowered, gemm=tile)
        return replace(state, nodes=nodes)


class LutSubstitutionPass(GraphPass):
    """Tabulate the GELU / softmax-``exp`` nonlinearities into lookup tables.

    Replaces the former ``use_lut`` branch inside the monolithic lowering:
    the pass only runs when :attr:`LoweringConfig.use_lut` is set (the
    pipeline builder simply omits it otherwise), and the tables are built by
    evaluating the legacy elementwise kernels over the full input domain —
    bit-identical by construction.
    """

    name = "lut-substitution"

    def run(self, state: LoweringState) -> LoweringState:
        nodes = dict(state.nodes)
        for node in state.graph.nodes:
            if node.op not in LUT_OPERATORS:
                continue
            in_act = state.activations[node.inputs[0]]
            out_act = state.activations[node.output.name]
            lowered = nodes[node.name]
            luts = dict(lowered.luts)
            if node.op == "gelu":
                luts["gelu"] = build_gelu_lut(in_act, out_act)
            else:
                luts["exp"] = build_softmax_exp_lut(in_act)
            nodes[node.name] = replace(lowered, luts=luts)
        return replace(state, nodes=nodes)


# --------------------------------------------------------------------- #
# Optimization passes (opt-in; schedule-only, bitwise-identical logits)
# --------------------------------------------------------------------- #
def _fuse_nodes(base: GraphNode, tail: GraphNode) -> GraphNode:
    """Fuse ``tail`` into ``base``, preserving the original kernels.

    The fused node keeps the base name/op/inputs, takes the tail's output
    spec, and records the full original kernel chain in
    ``attrs["fused_chain"]`` — the executors replay that chain with the
    per-stage requantisers intact (collapsing two fixed-point stages into
    one multiplier would double-round, which is not bitwise-safe).  Tail
    constants are merged under ``"<tail-name>::<role>"`` keys so the graph's
    weight accounting still sees every constant exactly once.
    """
    chain = base.fusion_chain + (tail,)
    attrs = dict(chain[0].attrs)
    attrs["fused_chain"] = chain
    weights = dict(chain[0].weights)
    for sub in chain[1:]:
        for role, values in sub.weights.items():
            weights[f"{sub.name}::{role}"] = values
    return GraphNode(
        name=chain[0].name,
        op=chain[0].op,
        inputs=list(chain[0].inputs),
        output=tail.output,
        attrs=attrs,
        weights=weights,
    )


def _forward_fuse(
    state: LoweringState,
    base_test,
    tail_test,
) -> LoweringState:
    """Shared forward-scan fusion: absorb qualifying immediate successors.

    A tail qualifies only when it is the node *immediately following* the
    growing fused region in schedule order, consumes exactly the region's
    output, and that output has no other consumer and is not the graph
    output — so reusing the base's position keeps SSA order valid trivially.
    """
    graph = state.graph
    consumer_count = Counter(
        tensor for node in graph.nodes for tensor in node.inputs
    )
    new_nodes: List[GraphNode] = []
    payloads = dict(state.nodes)
    fused_any = False
    index = 0
    while index < len(graph.nodes):
        node = graph.nodes[index]
        cursor = index + 1
        if base_test(node):
            fused = node
            while cursor < len(graph.nodes):
                tail = graph.nodes[cursor]
                produced = fused.output.name
                if (
                    tail.inputs != [produced]
                    or consumer_count[produced] != 1
                    or not tail_test(tail)
                ):
                    break
                fused = _fuse_nodes(fused, tail)
                cursor += 1
            if cursor > index + 1:
                fused_any = True
                base_payload = payloads.get(fused.name)
                if base_payload is not None:
                    payloads[fused.name] = replace(
                        base_payload,
                        fused=tuple(sub.name for sub in fused.fusion_chain[1:]),
                    )
            new_nodes.append(fused)
        else:
            new_nodes.append(node)
        index = cursor
    if not fused_any:
        return state
    new_graph = ComputeGraph(graph.name, graph.graph_input, new_nodes)
    return replace(state, graph=new_graph, nodes=payloads)


class FoldRequantPass(GraphPass):
    """Fold sole-consumer elementwise tails into the preceding MAC node.

    ``conv1d → channel_affine → relu`` (TEMPONet's conv/BN/ReLU stages) and
    ``linear → gelu`` (Bioformer's FFN expand) become one fused node each:
    one kernel launch, no intermediate tensor in the arena, per-stage
    requantisation arithmetic unchanged.
    """

    name = "fold-requant"

    def run(self, state: LoweringState) -> LoweringState:
        return _forward_fuse(
            state,
            base_test=lambda node: node.op in MAC_OPERATORS,
            tail_test=lambda tail: tail.op in FOLDABLE_OPERATORS,
        )


class FuseConvPoolPass(GraphPass):
    """Fuse a sole-consumer ``avgpool1d`` into the preceding conv node.

    Runs after :class:`FoldRequantPass`, so the base is typically an already
    fused ``conv1d(+affine+relu)`` region — the pool then accumulates
    directly from the fused kernel's output registers.
    """

    name = "fuse-conv-pool"

    def run(self, state: LoweringState) -> LoweringState:
        return _forward_fuse(
            state,
            base_test=lambda node: node.op == "conv1d",
            tail_test=lambda tail: tail.op == "avgpool1d",
        )


class DeadNodeEliminationPass(GraphPass):
    """Drop nodes whose outputs reach neither the graph output nor any use.

    A reverse liveness sweep from the graph output; tracers never emit dead
    nodes today, but passes (or hand-built graphs) can, and the pipeline
    should leave no unreachable kernels in the schedule or the weight
    binary.  Payloads of removed nodes are dropped too, so the generated
    ``weights.h`` and the byte accounting shrink with the graph.
    """

    name = "dead-node-elimination"

    def run(self, state: LoweringState) -> LoweringState:
        graph = state.graph
        live = {graph.output.name}
        kept_reversed: List[GraphNode] = []
        for node in reversed(graph.nodes):
            if node.output.name in live:
                kept_reversed.append(node)
                live.update(node.inputs)
        if len(kept_reversed) == len(graph.nodes):
            return state
        kept = list(reversed(kept_reversed))
        removed = {node.name for node in graph.nodes} - {node.name for node in kept}
        payloads = {
            name: payload
            for name, payload in state.nodes.items()
            if name not in removed
        }
        new_graph = ComputeGraph(graph.name, graph.graph_input, kept)
        return replace(state, graph=new_graph, nodes=payloads)


# --------------------------------------------------------------------- #
# Pipeline assembly
# --------------------------------------------------------------------- #
def build_pass_pipeline(config: LoweringConfig) -> List[GraphPass]:
    """The pass list for a config: base lowering plus enabled optimizations."""
    passes: List[GraphPass] = [
        CalibrateActivationsPass(),
        QuantizeWeightsPass(),
        PlanGemmTilesPass(),
    ]
    if config.use_lut:
        passes.append(LutSubstitutionPass())
    if config.fold_requant:
        passes.append(FoldRequantPass())
    if config.fuse_pool:
        passes.append(FuseConvPoolPass())
    if config.eliminate_dead_nodes:
        passes.append(DeadNodeEliminationPass())
    return passes


def compile_graph(
    graph: ComputeGraph,
    calibration_inputs: np.ndarray,
    config: Optional[LoweringConfig] = None,
    extra_passes: Optional[Sequence[GraphPass]] = None,
) -> QuantizedGraph:
    """Run the deploy compiler: traced graph in, lowered graph out.

    ``extra_passes`` appends custom :class:`GraphPass` objects after the
    config-selected pipeline (they run under the same manager, so they are
    validated and recorded in the manifest like the built-in passes).
    """
    config = config if config is not None else LoweringConfig()
    calibration = np.asarray(calibration_inputs, dtype=np.float64)
    state = LoweringState(
        graph=graph,
        config=config,
        calibration=calibration,
        source_graph=graph,
    )
    manager = PassManager(build_pass_pipeline(config) + list(extra_passes or []))
    state = manager.run(state)
    assert state.weight_spec is not None  # set by QuantizeWeightsPass
    return QuantizedGraph(
        graph=state.graph,
        activations=state.activations,
        nodes=state.nodes,
        weight_spec=state.weight_spec,
        manifest=tuple(manager.manifest),
        source_graph=state.source_graph,
        config=config,
    )
