"""Inference graph intermediate representation (IR) for deployment.

Deployment toolchains for MCU targets (DORY, the transformer kernels of
Burrello et al. used by the paper, TVM micro, ...) do not work on the
training framework's module tree: they work on a flat, explicit *graph* of
primitive kernels with static shapes, because every downstream stage —
quantisation, memory allocation, L1 tiling, code generation, latency
estimation — needs to reason about one kernel at a time.

This module defines that IR:

* :class:`TensorSpec` — name, static shape (without the batch axis) and
  element type of an activation tensor;
* :class:`GraphNode` — one primitive kernel (operator name, input/output
  tensors, attributes and constant weights);
* :class:`ComputeGraph` — an ordered single-input/single-output sequence of
  nodes with validation, traversal and size-accounting helpers.

The graphs are produced by the tracers in :mod:`repro.deploy.tracers` and
consumed by every other module of :mod:`repro.deploy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "OPERATORS",
    "LUT_OPERATORS",
    "LookupTable",
    "TensorSpec",
    "GraphNode",
    "ComputeGraph",
]


#: Primitive operators understood by the executors, the tiler and the code
#: generator.  Shape-only operators (transpose / reshape / head splitting)
#: carry no arithmetic and are free on the target (they are folded into the
#: addressing of the surrounding kernels).
OPERATORS: Tuple[str, ...] = (
    "conv1d",
    "linear",
    "channel_affine",
    "layernorm",
    "relu",
    "gelu",
    "softmax",
    "matmul",
    "add",
    "append_token",
    "add_positional",
    "avgpool1d",
    "flatten",
    "split_heads",
    "merge_heads",
    "transpose",
    "select_token",
    "mean_tokens",
)

#: Operators that perform multiply-accumulate work (everything else is either
#: elementwise or a pure data-movement/shape operator).
MAC_OPERATORS: Tuple[str, ...] = ("conv1d", "linear", "matmul")

#: Operators that only rearrange data and cost nothing on the target.
SHAPE_OPERATORS: Tuple[str, ...] = (
    "flatten",
    "split_heads",
    "merge_heads",
    "transpose",
    "select_token",
)

#: Non-linearities whose int8 lowering admits a precomputed lookup table.
#: GELU is purely elementwise over the bounded int8 input grid, and the
#: expensive part of the I-BERT softmax (the integer ``exp`` polynomial) is
#: elementwise over the max-shifted grid — so for a fixed requantisation
#: configuration each can be tabulated once at lowering time and executed as
#: a single gather on the target.
LUT_OPERATORS: Tuple[str, ...] = ("gelu", "softmax")


@dataclass(frozen=True, eq=False)
class LookupTable:
    """A precomputed integer kernel over a bounded integer input domain.

    The table maps every representable input value ``q`` in
    ``[domain_min, domain_max]`` to ``values[q - domain_min]``.  Tables are
    built at lowering time (:func:`repro.deploy.lowering.lower_to_int8`) by
    evaluating the legacy elementwise integer kernel over the full domain,
    so executing a table is bit-identical to the arithmetic it replaces *by
    construction* — the exhaustive-domain tests pin this independently.

    Attributes
    ----------
    op:
        The elementwise computation the table implements (``"gelu"`` for the
        fused GELU + requantisation, ``"exp"`` for the softmax numerator).
    domain_min, domain_max:
        Inclusive bounds of the representable input grid.
    values:
        Integer output for every domain value, ``domain_max - domain_min + 1``
        entries.
    dtype:
        Storage class of the entries on the target (``"int8"`` / ``"int32"``).
    config:
        Diagnostic identity of the requantisation configuration the table
        was built for (``(scale, zero_point, ...)``-style tuples) — shown
        when inspecting a lowered graph, so two tables can be told apart by
        the configuration that produced them.
    """

    op: str
    domain_min: int
    domain_max: int
    values: np.ndarray
    dtype: str = "int32"
    config: Tuple = ()

    def __post_init__(self) -> None:
        expected = self.domain_max - self.domain_min + 1
        if self.values.shape != (expected,):
            raise ValueError(
                f"LUT for '{self.op}' needs {expected} entries for domain "
                f"[{self.domain_min}, {self.domain_max}], got {self.values.shape}"
            )

    @property
    def size(self) -> int:
        """Number of table entries."""
        return int(self.values.size)

    @property
    def nbytes(self) -> int:
        """Storage footprint of the table on the target."""
        per_element = {"int8": 1, "int32": 4}[self.dtype]
        return self.size * per_element

    def take(self, q: np.ndarray) -> np.ndarray:
        """Gather table outputs for integer inputs ``q`` (one vectorised take).

        Inputs outside the domain raise instead of silently gathering from
        the wrong end of the table (``np.take`` would accept a negative
        index Python-style): every in-graph producer clips to the
        activation grid, so an out-of-domain value is a lowering bug, not
        a value to guess at.
        """
        indices = np.asarray(q) - self.domain_min
        if indices.size and (indices.min() < 0 or indices.max() >= self.size):
            raise ValueError(
                f"input outside the [{self.domain_min}, {self.domain_max}] "
                f"domain of the '{self.op}' lookup table"
            )
        return np.take(self.values, indices)

    def __repr__(self) -> str:
        return (
            f"LookupTable(op='{self.op}', domain=[{self.domain_min}, "
            f"{self.domain_max}], entries={self.size}, dtype='{self.dtype}')"
        )


@dataclass(frozen=True)
class TensorSpec:
    """Static description of one activation tensor.

    The shape excludes the batch axis: deployment on GAP8 always runs with
    batch 1, and the executors broadcast over whatever batch the caller
    provides.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str = "float32"

    @property
    def num_elements(self) -> int:
        """Number of scalar elements (per batch item)."""
        return int(np.prod(self.shape)) if self.shape else 1

    def nbytes(self, bytes_per_element: int = 1) -> int:
        """Storage size for a given element width (1 byte for int8)."""
        return self.num_elements * bytes_per_element

    def __str__(self) -> str:
        return f"{self.name}{list(self.shape)}"


@dataclass
class GraphNode:
    """One primitive kernel of the inference graph.

    Attributes
    ----------
    name:
        Unique node name (e.g. ``"block0.attention.query"``).
    op:
        Operator name; must be one of :data:`OPERATORS`.
    inputs:
        Names of the activation tensors consumed by the node.
    output:
        Spec of the single tensor produced by the node.
    attrs:
        Static operator attributes (stride, padding, axis, ...).
    weights:
        Constant arrays owned by the node (weight, bias, batch-norm scale,
        class token, ...), keyed by role name.
    """

    name: str
    op: str
    inputs: List[str]
    output: TensorSpec
    attrs: Dict[str, object] = field(default_factory=dict)
    weights: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise ValueError(f"unknown operator '{self.op}' in node '{self.name}'")
        if not self.inputs:
            raise ValueError(f"node '{self.name}' has no inputs")

    # ------------------------------------------------------------------ #
    # Fusion
    # ------------------------------------------------------------------ #
    @property
    def is_fused(self) -> bool:
        """Whether this node is a fusion of several original kernels."""
        return bool(self.attrs.get("fused_chain"))

    @property
    def fusion_chain(self) -> Tuple["GraphNode", ...]:
        """The original kernels this node executes, in order.

        A fused node (produced by the optimization passes in
        :mod:`repro.deploy.passes`) carries its constituent kernels in
        ``attrs["fused_chain"]``; an ordinary node is its own chain of one.
        The executors replay the chain element-wise, which is what makes
        fusion bitwise-exact by construction.
        """
        chain = self.attrs.get("fused_chain")
        return tuple(chain) if chain else (self,)

    # ------------------------------------------------------------------ #
    # Size accounting
    # ------------------------------------------------------------------ #
    @property
    def weight_elements(self) -> int:
        """Total number of constant scalars owned by the node."""
        return int(sum(array.size for array in self.weights.values()))

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations performed by the node (batch 1)."""
        if self.is_fused:
            # Each constituent kernel keeps its original output spec, so the
            # chain sum is exactly the unfused accounting.
            return sum(sub.macs for sub in self.fusion_chain)
        if self.op == "conv1d":
            out_channels, in_channels, kernel = self.weights["weight"].shape
            out_length = self.output.shape[-1]
            return out_length * out_channels * in_channels * kernel
        if self.op == "linear":
            out_features, in_features = self.weights["weight"].shape
            rows = self.output.num_elements // out_features
            return rows * in_features * out_features
        if self.op == "matmul":
            # (heads, S, K) x (heads, K, T) -> (heads, S, T)
            heads, rows, cols = self.output.shape
            inner = int(self.attrs["inner_dim"])
            return heads * rows * cols * inner
        return 0

    @property
    def elementwise_ops(self) -> int:
        """Non-MAC elementwise operations performed by the node (batch 1)."""
        if self.is_fused:
            return sum(sub.elementwise_ops for sub in self.fusion_chain)
        size = self.output.num_elements
        if self.op in ("relu", "add", "append_token", "add_positional", "channel_affine"):
            return size
        if self.op in ("gelu", "softmax"):
            return 4 * size
        if self.op == "layernorm":
            return 4 * size
        if self.op in ("avgpool1d", "mean_tokens"):
            return 2 * size
        return 0

    @property
    def is_shape_only(self) -> bool:
        """Whether the node only rearranges data (free on the target)."""
        return self.op in SHAPE_OPERATORS

    def __repr__(self) -> str:
        return f"GraphNode({self.name}: {self.op} {self.inputs} -> {self.output})"


class ComputeGraph:
    """Ordered inference graph with a single input and a single output.

    The node order is execution order; every node may consume the graph
    input or the output of any *earlier* node (single static assignment).
    """

    def __init__(self, name: str, graph_input: TensorSpec, nodes: Sequence[GraphNode]) -> None:
        self.name = name
        self.graph_input = graph_input
        self.nodes: List[GraphNode] = list(nodes)
        self.validate()

    # ------------------------------------------------------------------ #
    # Validation / lookup
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check SSA form: unique names, inputs defined before use.

        Enforced invariants (the pass pipeline re-validates after every
        transformation pass, so a buggy pass fails here, loudly, instead of
        corrupting downstream consumers):

        * at least one node;
        * node names are unique (payload dicts key on them);
        * every consumed tensor is the graph input or the output of an
          *earlier* node — no dangling inputs, no forward references;
        * every output tensor name is defined exactly once.
        """
        if not self.nodes:
            raise ValueError("a ComputeGraph needs at least one node")
        defined = {self.graph_input.name}
        node_names = set()
        for node in self.nodes:
            if node.name in node_names:
                raise ValueError(f"node name '{node.name}' is used twice")
            node_names.add(node.name)
            for tensor_name in node.inputs:
                if tensor_name not in defined:
                    raise ValueError(
                        f"node '{node.name}' consumes undefined tensor '{tensor_name}'"
                    )
            if node.output.name in defined:
                raise ValueError(f"tensor '{node.output.name}' is defined twice")
            defined.add(node.output.name)

    @property
    def output(self) -> TensorSpec:
        """Spec of the graph output (the last node's output)."""
        return self.nodes[-1].output

    def tensor_specs(self) -> Dict[str, TensorSpec]:
        """All activation tensors of the graph, keyed by name."""
        specs = {self.graph_input.name: self.graph_input}
        for node in self.nodes:
            specs[node.output.name] = node.output
        return specs

    def node(self, name: str) -> GraphNode:
        """Return the node called ``name``."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named '{name}' in graph '{self.name}'")

    def consumers(self, tensor_name: str) -> List[GraphNode]:
        """Nodes that read ``tensor_name``."""
        return [node for node in self.nodes if tensor_name in node.inputs]

    def __iter__(self) -> Iterator[GraphNode]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------ #
    # Aggregate accounting
    # ------------------------------------------------------------------ #
    @property
    def total_macs(self) -> int:
        """Total multiply-accumulate operations per inference (batch 1)."""
        return sum(node.macs for node in self.nodes)

    @property
    def total_weight_elements(self) -> int:
        """Total constant scalars stored by the graph."""
        return sum(node.weight_elements for node in self.nodes)

    def weight_bytes(self, bits_per_weight: int = 8) -> int:
        """Constant storage for a given weight bit-width."""
        return int(self.total_weight_elements * bits_per_weight / 8)

    def largest_activation(self) -> TensorSpec:
        """The largest activation tensor (sizing the working buffers)."""
        return max(self.tensor_specs().values(), key=lambda spec: spec.num_elements)

    def summary(self) -> str:
        """Human-readable per-node table (op, output shape, MACs, weights)."""
        lines = [
            f"ComputeGraph '{self.name}'  input={self.graph_input}",
            f"{'node':<34}{'op':<16}{'output':<22}{'MACs':>12}{'weights':>10}",
        ]
        for node in self.nodes:
            lines.append(
                f"{node.name:<34}{node.op:<16}{str(list(node.output.shape)):<22}"
                f"{node.macs:>12}{node.weight_elements:>10}"
            )
        lines.append(
            f"{'total':<72}{self.total_macs:>12}{self.total_weight_elements:>10}"
        )
        return "\n".join(lines)
