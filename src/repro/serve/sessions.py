"""Fleet-scale session lifecycle: ownership, quotas, checkpoints, reaping.

The paper's deployment target is a continuously worn prosthesis
controller: a :class:`~repro.serve.stream.StreamSession` must survive
hours of raw sEMG, electrode dropout and client hiccups without losing
its majority-vote state.  A raw ``StreamSession`` is a single hand-held
object with no lifecycle; this module adds the fleet layer above it:

* :class:`SessionManager` — owns every live session opened through an
  :class:`~repro.serve.server.InferenceServer` (or a bare classifier),
  with create/attach/detach/close by session id, idle-TTL reaping by a
  janitor thread (injectable clock), and graceful :meth:`~SessionManager.drain`
  that stops admission and settles in-flight chunks before server close;
* **per-tenant robustness** — per-tenant session-count and samples/sec
  (token bucket) quotas raising typed
  :class:`~repro.serve.faults.QuotaExceeded`, LOW-tenant-first eviction
  under memory pressure raising
  :class:`~repro.serve.faults.SessionEvicted`, and frozen
  :class:`TenantStats` / :class:`SessionManagerStats` snapshots surfaced
  through ``server.health().sessions``;
* :class:`SessionCheckpoint` — a versioned, JSON-serializable snapshot of
  a session's windower remainder, voter history and counters.  The
  restore contract is **bitwise**: a session restored from a mid-stream
  checkpoint emits decisions identical to the uninterrupted session for
  the same tail of signal (the test-suite pins this for every registry
  config, float and int8 backends alike);
* **degraded-signal handling** — per-chunk detection of dead (flatlined)
  or non-finite electrodes, masked to zero in the style of
  :func:`repro.data.augmentation.channel_dropout` so one bad electrode
  cannot poison the majority vote; the affected decisions are flagged
  ``degraded`` (mirroring :class:`~repro.serve.faults.DegradedLogits`).

Lock ordering is strict — a session's lock is always taken *before* the
manager's, never after — so a push settling in-flight work can never
deadlock against the janitor or a drain.

An evicted session's state is never lost: the manager captures a final
checkpoint at eviction time and keeps it in a bounded tombstone map, so
``manager.checkpoint(session_id)`` and :meth:`SessionManager.restore`
work after reaping, pressure eviction and drain alike.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..data.augmentation import CHANNEL_FILL_VALUE
from .faults import Overloaded, QuotaExceeded, SessionEvicted
from .pool import Priority
from .stream import StreamDecision, StreamSession

__all__ = [
    "SESSION_CHECKPOINT_VERSION",
    "ManagedSession",
    "SessionCheckpoint",
    "SessionManager",
    "SessionManagerStats",
    "TenantStats",
    "restore_stream_session",
]

#: Format version written into every checkpoint.  Bump it when the
#: snapshot schema changes shape; readers reject versions they do not
#: understand instead of mis-restoring silently.
SESSION_CHECKPOINT_VERSION = 1


# --------------------------------------------------------------------- #
# Crash-safe state
# --------------------------------------------------------------------- #
@dataclass(frozen=True, eq=False)
class SessionCheckpoint:
    """Versioned snapshot of one stream session's restorable state.

    Captures exactly what the future of the stream depends on: the
    windower's remainder buffer and absolute counters, the voter's label
    window, and the windows-classified count (so a restored session's
    decision indices continue the original stream's numbering).  The
    recorded *decisions* are deliberately not part of the snapshot — they
    are outputs, not state, and the restored session regenerates them.

    ``eq=False`` because the ndarray ``buffer`` field has no useful
    ``==``; compare checkpoints through :meth:`to_payload` instead.
    """

    version: int
    window: int
    slide: int
    num_channels: int
    smoothing: int
    buffer: np.ndarray
    buffer_dtype: str
    base: int
    samples_seen: int
    windows_emitted: int
    voter_recent: Tuple[int, ...]
    windows_classified: int
    session_id: Optional[str] = None
    tenant: Optional[str] = None

    @classmethod
    def capture(
        cls,
        session: StreamSession,
        *,
        session_id: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> "SessionCheckpoint":
        """Snapshot ``session`` (the buffer is copied, never aliased)."""
        wstate = session.windower.state()
        return cls(
            version=SESSION_CHECKPOINT_VERSION,
            window=wstate["window"],
            slide=wstate["slide"],
            num_channels=wstate["num_channels"],
            smoothing=session.voter.history,
            buffer=wstate["buffer"],
            buffer_dtype=wstate["dtype"],
            base=wstate["base"],
            samples_seen=wstate["samples_seen"],
            windows_emitted=wstate["windows_emitted"],
            voter_recent=session.voter.recent,
            windows_classified=session.windows_classified,
            session_id=session_id,
            tenant=tenant,
        )

    def restore_into(self, session: StreamSession) -> StreamSession:
        """Load this snapshot into ``session`` (same geometry required).

        After restoring, pushing the post-checkpoint tail of the signal
        produces decisions bitwise-identical to the uninterrupted run:
        same ``window_index``, same labels, same smoothed labels.
        Geometry or version mismatches raise ``ValueError``.
        """
        if self.version != SESSION_CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported session checkpoint version {self.version} "
                f"(this build reads version {SESSION_CHECKPOINT_VERSION})"
            )
        session.windower.load_state(
            {
                "window": self.window,
                "slide": self.slide,
                "num_channels": self.num_channels,
                "dtype": self.buffer_dtype,
                "buffer": self.buffer,
                "base": self.base,
                "samples_seen": self.samples_seen,
                "windows_emitted": self.windows_emitted,
            }
        )
        session.voter.load_state(
            {"history": self.smoothing, "recent": list(self.voter_recent)}
        )
        session.decisions.clear()
        session._decisions_base = self.windows_classified
        return session

    # -- serialization -------------------------------------------------- #
    def to_payload(self) -> dict:
        """JSON-friendly dict (float64 samples round-trip exactly)."""
        return {
            "version": self.version,
            "window": self.window,
            "slide": self.slide,
            "num_channels": self.num_channels,
            "smoothing": self.smoothing,
            "buffer": np.asarray(self.buffer).tolist(),
            "buffer_dtype": self.buffer_dtype,
            "base": self.base,
            "samples_seen": self.samples_seen,
            "windows_emitted": self.windows_emitted,
            "voter_recent": [int(label) for label in self.voter_recent],
            "windows_classified": self.windows_classified,
            "session_id": self.session_id,
            "tenant": self.tenant,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SessionCheckpoint":
        """Rebuild a checkpoint from :meth:`to_payload` output.

        Unknown format versions are rejected with ``ValueError`` — a
        newer writer's snapshot must not be half-read by an older
        reader.
        """
        version = int(payload["version"])
        if version != SESSION_CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported session checkpoint version {version} "
                f"(this build reads version {SESSION_CHECKPOINT_VERSION})"
            )
        num_channels = int(payload["num_channels"])
        buffer = np.asarray(payload["buffer"], dtype=np.dtype(payload["buffer_dtype"]))
        if buffer.ndim == 1 and buffer.size == 0:
            # An empty (C, 0) buffer loses its channel dimension through
            # nested-list serialization; normalise it back.
            buffer = buffer.reshape(num_channels, 0)
        return cls(
            version=version,
            window=int(payload["window"]),
            slide=int(payload["slide"]),
            num_channels=num_channels,
            smoothing=int(payload["smoothing"]),
            buffer=buffer,
            buffer_dtype=str(payload["buffer_dtype"]),
            base=int(payload["base"]),
            samples_seen=int(payload["samples_seen"]),
            windows_emitted=int(payload["windows_emitted"]),
            voter_recent=tuple(int(label) for label in payload["voter_recent"]),
            windows_classified=int(payload["windows_classified"]),
            session_id=payload.get("session_id"),
            tenant=payload.get("tenant"),
        )

    def to_json(self) -> str:
        """The payload as a JSON string (the durable on-disk form)."""
        return json.dumps(self.to_payload())

    @classmethod
    def from_json(cls, text: str) -> "SessionCheckpoint":
        """Inverse of :meth:`to_json`."""
        return cls.from_payload(json.loads(text))

    def __repr__(self) -> str:
        return (
            f"SessionCheckpoint(v{self.version}, session_id={self.session_id!r}, "
            f"windows_classified={self.windows_classified}, "
            f"samples_seen={self.samples_seen})"
        )


def restore_stream_session(
    checkpoint: SessionCheckpoint,
    classify: Callable[[np.ndarray], np.ndarray],
    *,
    preprocessor: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> StreamSession:
    """Build a fresh :class:`StreamSession` continuing ``checkpoint``.

    The serverless restore path: the caller supplies the classifier (and
    preprocessor — neither is serializable, so checkpoints never carry
    them) and gets back a session whose future decisions are bitwise
    those of the uninterrupted original.
    """
    session = StreamSession(
        classify,
        window=checkpoint.window,
        slide=checkpoint.slide,
        num_channels=checkpoint.num_channels,
        preprocessor=preprocessor,
        smoothing=checkpoint.smoothing,
    )
    checkpoint.restore_into(session)
    return session


# --------------------------------------------------------------------- #
# Stats snapshots
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class TenantStats:
    """Immutable per-tenant view of the manager's counters."""

    tenant: str
    priority: int
    sessions_open: int = 0
    sessions_created: int = 0
    sessions_evicted: int = 0
    windows: int = 0
    samples: int = 0
    degraded_windows: int = 0
    quota_rejections: int = 0


@dataclass(frozen=True)
class SessionManagerStats:
    """Immutable fleet-wide view of a :class:`SessionManager`.

    ``sessions_evicted`` counts every involuntary removal (idle reaping +
    pressure eviction + drain); ``reaped_idle`` / ``evicted_pressure``
    break out the first two causes.  ``sessions_closed`` counts graceful
    owner-initiated closes only.
    """

    sessions_open: int
    sessions_created: int = 0
    sessions_closed: int = 0
    sessions_evicted: int = 0
    reaped_idle: int = 0
    evicted_pressure: int = 0
    draining: bool = False
    tenants: Mapping[str, TenantStats] = field(default_factory=dict)


class _Tenant:
    """Mutable per-tenant bookkeeping (guarded by the manager's lock)."""

    __slots__ = (
        "name",
        "priority",
        "max_sessions",
        "samples_per_s",
        "burst_s",
        "tokens",
        "last_refill",
        "sessions_open",
        "sessions_created",
        "sessions_evicted",
        "windows",
        "samples",
        "degraded_windows",
        "quota_rejections",
    )

    def __init__(
        self,
        name: str,
        priority: int,
        max_sessions: Optional[int],
        samples_per_s: Optional[float],
        burst_s: float,
        now: float,
    ) -> None:
        self.name = name
        self.priority = int(priority)
        self.max_sessions = max_sessions
        self.samples_per_s = samples_per_s
        self.burst_s = float(burst_s)
        # The token bucket starts full: a tenant's first chunk after a
        # quiet period is admitted up to the burst budget.
        self.tokens = float(samples_per_s) * self.burst_s if samples_per_s else 0.0
        self.last_refill = now
        self.sessions_open = 0
        self.sessions_created = 0
        self.sessions_evicted = 0
        self.windows = 0
        self.samples = 0
        self.degraded_windows = 0
        self.quota_rejections = 0

    def snapshot(self) -> TenantStats:
        return TenantStats(
            tenant=self.name,
            priority=self.priority,
            sessions_open=self.sessions_open,
            sessions_created=self.sessions_created,
            sessions_evicted=self.sessions_evicted,
            windows=self.windows,
            samples=self.samples,
            degraded_windows=self.degraded_windows,
            quota_rejections=self.quota_rejections,
        )


# --------------------------------------------------------------------- #
# Managed session
# --------------------------------------------------------------------- #
class ManagedSession:
    """A :class:`StreamSession` owned by a :class:`SessionManager`.

    Adds, on top of the raw session: liveness (operations on an evicted
    or closed session raise :class:`~repro.serve.faults.SessionEvicted`
    immediately — they never hang), per-tenant samples/sec quota charging,
    degraded-electrode masking, activity tracking for idle reaping, and
    per-session counters.

    All public methods are thread-safe; ``push`` holds the session's lock
    for the whole chunk, which is what lets eviction and drain *settle*
    in-flight work instead of racing it.
    """

    def __init__(
        self,
        manager: "SessionManager",
        session_id: str,
        tenant: str,
        inner: StreamSession,
        *,
        clock: Callable[[], float],
    ) -> None:
        self._manager = manager
        self.session_id = session_id
        self.tenant = tenant
        self._inner = inner
        self._clock = clock
        self._lock = threading.RLock()
        self.last_active = clock()
        self._state = "active"
        self._evict_reason = ""
        self.windows = 0
        self.samples = 0
        self.degraded_windows = 0

    # -- introspection -------------------------------------------------- #
    @property
    def state(self) -> str:
        """``"active"``, ``"evicted"`` or ``"closed"``."""
        with self._lock:
            return self._state

    @property
    def decisions(self) -> List[StreamDecision]:
        """Decisions recorded since creation (or since restore)."""
        return self._inner.decisions

    @property
    def windower(self):
        """The underlying stream's windower (the evaluation harness reads
        its window/slide geometry to compute per-window ground truth)."""
        return self._inner.windower

    @property
    def current_label(self) -> Optional[int]:
        """The latest smoothed decision (``None`` before the first window)."""
        return self._inner.current_label

    @property
    def samples_seen(self) -> int:
        """Raw samples the underlying stream has ingested."""
        return self._inner.samples_seen

    @property
    def windows_classified(self) -> int:
        """Windows classified over the whole stream (restore-aware)."""
        return self._inner.windows_classified

    def labels(self, smoothed: bool = True) -> np.ndarray:
        """All recorded per-window decisions as an int array."""
        return self._inner.labels(smoothed=smoothed)

    def _ensure_live(self) -> None:
        if self._state == "active":
            return
        reason = self._evict_reason or "closed"
        raise SessionEvicted(
            f"session '{self.session_id}' no longer exists ({reason}); "
            f"restore it from its checkpoint",
            session_id=self.session_id,
            reason=reason,
        )

    # -- streaming ------------------------------------------------------ #
    def push(self, samples: np.ndarray) -> List[StreamDecision]:
        """Ingest a ``(channels, n)`` chunk through the managed pipeline.

        Order of gates: liveness → shape/dtype validation (delegated to
        the raw session so the errors are canonical, and charged to no
        quota) → per-tenant samples/sec quota → degraded-electrode
        detection and masking → windowing/classification/voting.

        Channels that are non-finite anywhere in the chunk, or exactly
        flatlined across a chunk of at least the manager's
        ``dead_channel_min_samples``, are masked to zero (the
        :func:`~repro.data.augmentation.channel_dropout` convention) and
        the chunk's decisions come back flagged ``degraded=True`` —
        mirroring :class:`~repro.serve.faults.DegradedLogits` — instead
        of poisoning the majority vote or being rejected outright.
        """
        with self._lock:
            self._ensure_live()
            chunk = np.asarray(samples)
            expected = self._inner.windower.num_channels
            channels = 1 if chunk.ndim == 1 else (chunk.shape[0] if chunk.ndim == 2 else -1)
            if (
                channels != expected
                or chunk.dtype == object
                or not np.can_cast(chunk.dtype, np.float64)
            ):
                # Malformed chunk: let the raw session raise its canonical
                # ValueError; the quota is not charged for garbage.
                return self._inner.push(chunk)
            chunk = np.atleast_2d(np.asarray(chunk, dtype=np.float64))
            count = chunk.shape[1]
            self._manager._charge_samples(self.tenant, count)
            finite = np.isfinite(chunk)
            bad = ~finite.all(axis=1)
            if count >= self._manager.dead_channel_min_samples:
                bad |= np.ptp(chunk, axis=1) == 0.0
            degraded = bool(bad.any())
            if degraded:
                # Mask to the augmentation pipeline's channel-dropout fill
                # value, so a trained-against-dropout model sees the same
                # signal in production that it saw in training.
                chunk = np.where(bad[:, None], CHANNEL_FILL_VALUE, chunk)
            produced = self._inner.push(chunk)
            if degraded and produced:
                produced = [replace(d, degraded=True) for d in produced]
                self._inner.decisions[-len(produced) :] = produced
            self.windows += len(produced)
            self.samples += count
            if degraded:
                self.degraded_windows += len(produced)
            self.last_active = self._clock()
            self._manager._note_activity(
                self.tenant,
                windows=len(produced),
                samples=count,
                degraded_windows=len(produced) if degraded else 0,
            )
            return produced

    def run(self, signal: np.ndarray, chunk_size: int = 64) -> List[StreamDecision]:
        """Stream a whole ``(channels, samples)`` recording in chunks."""
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        signal = np.atleast_2d(np.asarray(signal))
        produced: List[StreamDecision] = []
        for start in range(0, signal.shape[-1], chunk_size):
            produced.extend(self.push(signal[:, start : start + chunk_size]))
        return produced

    def checkpoint(self) -> SessionCheckpoint:
        """Snapshot the session's restorable state (works even evicted)."""
        with self._lock:
            return SessionCheckpoint.capture(
                self._inner, session_id=self.session_id, tenant=self.tenant
            )

    def __repr__(self) -> str:
        return (
            f"ManagedSession(id='{self.session_id}', tenant='{self.tenant}', "
            f"state='{self.state}', windows={self.windows})"
        )


# --------------------------------------------------------------------- #
# The manager
# --------------------------------------------------------------------- #
class SessionManager:
    """Owner of every live stream session behind one serving endpoint.

    Construct it with an :class:`~repro.serve.server.InferenceServer`
    (sessions classify through ``server.open_stream`` — the existing
    seam, so streams keep their HIGH batching priority), or serverless
    with ``classify``/``window``/``num_channels`` for tests and embedded
    use.  ``InferenceServer.open_session_manager`` is the convenience
    constructor; a server-attached manager surfaces its stats through
    ``server.health().sessions`` and is drained by ``server.close()``.

    Parameters
    ----------
    slide:
        Default sliding-window slide for new sessions (overridable per
        ``create_session`` call).
    smoothing / preprocessor:
        Defaults forwarded to each new session.
    max_sessions:
        Fleet-wide session cap.  When full, admission evicts the least
        recently active session of a *strictly lower-priority* tenant
        (numerically larger :class:`~repro.serve.pool.Priority`); if no
        such victim exists the create fails with
        :class:`~repro.serve.faults.QuotaExceeded`.
    max_sessions_per_tenant / samples_per_s / burst_s:
        Default per-tenant quotas (see :meth:`configure_tenant`).  The
        samples/sec quota is a token bucket holding at most
        ``samples_per_s * burst_s`` tokens; a chunk larger than the
        available budget is rejected whole with
        :class:`~repro.serve.faults.QuotaExceeded` (never partially
        ingested — a half-ingested chunk would corrupt windowing).
    idle_ttl_s / janitor_interval_s:
        Sessions idle for ``idle_ttl_s`` (by the injectable ``clock``)
        are reaped by a daemon janitor thread waking every
        ``janitor_interval_s`` real seconds.  ``idle_ttl_s=None``
        (default) disables reaping and the janitor entirely;
        :meth:`reap_idle` can always be called manually.
    dead_channel_min_samples:
        Minimum chunk length before an exactly flatlined channel is
        treated as a dead electrode (short chunks legitimately hold
        constant runs).  Non-finite channels are masked regardless of
        chunk length.
    default_priority:
        Eviction priority for tenants never configured explicitly.
    max_tombstones:
        Bound on retained final checkpoints of dead sessions (oldest
        dropped first).
    clock:
        Injectable monotonic clock (tests drive TTL/quota deterministically).
    """

    def __init__(
        self,
        server=None,
        *,
        classify: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        window: Optional[int] = None,
        num_channels: Optional[int] = None,
        slide: Optional[int] = None,
        smoothing: int = 5,
        preprocessor: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        max_sessions: Optional[int] = None,
        max_sessions_per_tenant: Optional[int] = None,
        samples_per_s: Optional[float] = None,
        burst_s: float = 1.0,
        idle_ttl_s: Optional[float] = None,
        janitor_interval_s: float = 0.05,
        dead_channel_min_samples: int = 32,
        default_priority: int = Priority.NORMAL,
        max_tombstones: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if server is None:
            if classify is None or window is None or num_channels is None:
                raise ValueError(
                    "a serverless SessionManager needs classify, window and "
                    "num_channels"
                )
        elif classify is not None or window is not None or num_channels is not None:
            raise ValueError(
                "pass either a server or classify/window/num_channels, not both"
            )
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if idle_ttl_s is not None and idle_ttl_s <= 0:
            raise ValueError("idle_ttl_s must be positive")
        if janitor_interval_s <= 0:
            raise ValueError("janitor_interval_s must be positive")
        if burst_s <= 0:
            raise ValueError("burst_s must be positive")
        self._server = server
        self._classify = classify
        self._window = window
        self._num_channels = num_channels
        self.slide = slide
        self.smoothing = int(smoothing)
        self._preprocessor = preprocessor
        self.max_sessions = max_sessions
        self.max_sessions_per_tenant = max_sessions_per_tenant
        self.samples_per_s = samples_per_s
        self.burst_s = float(burst_s)
        self.idle_ttl_s = idle_ttl_s
        self.janitor_interval_s = float(janitor_interval_s)
        self.dead_channel_min_samples = int(dead_channel_min_samples)
        self.default_priority = int(default_priority)
        self.max_tombstones = int(max_tombstones)
        self._clock = clock
        self._lock = threading.Lock()
        self._sessions: "OrderedDict[str, ManagedSession]" = OrderedDict()
        self._tenants: Dict[str, _Tenant] = {}
        self._tombstones: "OrderedDict[str, Tuple[str, SessionCheckpoint]]" = OrderedDict()
        self._ids = 0
        self._created = 0
        self._closed_sessions = 0
        self._evicted = 0
        self._reaped_idle = 0
        self._evicted_pressure = 0
        self._draining = False
        self._closed = False
        self._janitor: Optional[threading.Thread] = None
        self._janitor_stop = threading.Event()
        if idle_ttl_s is not None:
            self._janitor = threading.Thread(
                target=self._janitor_loop, name="session-janitor", daemon=True
            )
            self._janitor.start()
        if server is not None:
            server._attach_session_manager(self)

    # -- construction helpers ------------------------------------------- #
    def _build_inner(self, slide, smoothing, preprocessor) -> StreamSession:
        if self._server is not None:
            return self._server.open_stream(
                slide, smoothing=smoothing, preprocessor=preprocessor
            )
        return StreamSession(
            self._classify,
            window=self._window,
            slide=slide,
            num_channels=self._num_channels,
            preprocessor=preprocessor,
            smoothing=smoothing,
        )

    def _tenant_state(self, name: str) -> _Tenant:
        """Get-or-create tenant bookkeeping (manager lock held)."""
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = _Tenant(
                name,
                self.default_priority,
                self.max_sessions_per_tenant,
                self.samples_per_s,
                self.burst_s,
                self._clock(),
            )
            self._tenants[name] = tenant
        return tenant

    def configure_tenant(
        self,
        name: str,
        *,
        priority: Optional[int] = None,
        max_sessions: Optional[int] = None,
        samples_per_s: Optional[float] = None,
        burst_s: Optional[float] = None,
    ) -> None:
        """Create or update a tenant's priority and quotas.

        Changing ``samples_per_s`` refills the token bucket to its new
        burst capacity (the new budget starts clean).
        """
        with self._lock:
            tenant = self._tenant_state(name)
            if priority is not None:
                tenant.priority = int(priority)
            if max_sessions is not None:
                tenant.max_sessions = int(max_sessions)
            if burst_s is not None:
                if burst_s <= 0:
                    raise ValueError("burst_s must be positive")
                tenant.burst_s = float(burst_s)
            if samples_per_s is not None:
                tenant.samples_per_s = float(samples_per_s)
                tenant.tokens = tenant.samples_per_s * tenant.burst_s
                tenant.last_refill = self._clock()

    # -- lifecycle ------------------------------------------------------- #
    def create_session(
        self,
        tenant: str = "default",
        *,
        slide: Optional[int] = None,
        smoothing: Optional[int] = None,
        preprocessor: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> ManagedSession:
        """Admit a new session for ``tenant`` (quotas and pressure apply)."""
        return self._open(
            tenant,
            slide=slide,
            smoothing=smoothing,
            preprocessor=preprocessor,
            checkpoint=None,
        )

    def restore(
        self,
        checkpoint: SessionCheckpoint,
        *,
        tenant: Optional[str] = None,
        preprocessor: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> ManagedSession:
        """Admit a new session continuing ``checkpoint`` bitwise.

        The restored session gets a *fresh* session id (the old id's
        tombstone, if any, stays queryable); ``tenant`` defaults to the
        checkpoint's recorded tenant.  Admission control is identical to
        :meth:`create_session`.
        """
        who = tenant if tenant is not None else (checkpoint.tenant or "default")
        return self._open(
            who,
            slide=checkpoint.slide,
            smoothing=checkpoint.smoothing,
            preprocessor=preprocessor,
            checkpoint=checkpoint,
        )

    def _open(
        self,
        tenant: str,
        *,
        slide: Optional[int],
        smoothing: Optional[int],
        preprocessor,
        checkpoint: Optional[SessionCheckpoint],
    ) -> ManagedSession:
        slide = slide if slide is not None else self.slide
        if slide is None:
            raise ValueError(
                "no slide configured: pass slide= to the manager or this call"
            )
        smoothing = smoothing if smoothing is not None else self.smoothing
        preprocessor = preprocessor if preprocessor is not None else self._preprocessor
        while True:
            victim: Optional[ManagedSession] = None
            with self._lock:
                if self._draining or self._closed:
                    raise Overloaded(
                        "session manager is draining; new sessions are not admitted"
                    )
                tstate = self._tenant_state(tenant)
                if (
                    tstate.max_sessions is not None
                    and tstate.sessions_open >= tstate.max_sessions
                ):
                    tstate.quota_rejections += 1
                    raise QuotaExceeded(
                        f"tenant '{tenant}' already holds {tstate.sessions_open} "
                        f"open session(s) (limit {tstate.max_sessions})",
                        tenant=tenant,
                        quota="sessions",
                    )
                if (
                    self.max_sessions is not None
                    and len(self._sessions) >= self.max_sessions
                ):
                    victim = self._pressure_victim(tstate.priority)
                    if victim is None:
                        tstate.quota_rejections += 1
                        raise QuotaExceeded(
                            f"manager is at capacity ({len(self._sessions)} of "
                            f"{self.max_sessions} sessions) and no lower-priority "
                            f"session is evictable",
                            tenant=tenant,
                            quota="sessions",
                        )
                else:
                    inner = self._build_inner(slide, smoothing, preprocessor)
                    if checkpoint is not None:
                        checkpoint.restore_into(inner)
                    self._ids += 1
                    session_id = f"s{self._ids:06d}"
                    session = ManagedSession(
                        self, session_id, tenant, inner, clock=self._clock
                    )
                    self._sessions[session_id] = session
                    tstate.sessions_open += 1
                    tstate.sessions_created += 1
                    self._created += 1
                    return session
            # Manager lock released: evict with session -> manager ordering,
            # then re-run admission (the victim may have raced away).
            self._evict(victim, "pressure")

    def _pressure_victim(self, priority: int) -> Optional[ManagedSession]:
        """Least recently active session of a strictly lower-priority tenant."""
        victim: Optional[ManagedSession] = None
        for session in self._sessions.values():
            if self._tenants[session.tenant].priority <= priority:
                continue
            if victim is None or session.last_active < victim.last_active:
                victim = session
        return victim

    def _evict(self, session: ManagedSession, reason: str) -> bool:
        """Take ``session`` away, preserving a final checkpoint.

        Acquiring the session's lock first *settles* any in-flight push:
        the chunk completes, its decisions land, and only then does the
        session transition.  Returns False if the session was already
        gone (a concurrent eviction/close won the race).
        """
        with session._lock:
            with self._lock:
                if (
                    session._state != "active"
                    or self._sessions.get(session.session_id) is not session
                ):
                    return False
                final = SessionCheckpoint.capture(
                    session._inner,
                    session_id=session.session_id,
                    tenant=session.tenant,
                )
                session._state = "evicted"
                session._evict_reason = reason
                del self._sessions[session.session_id]
                self._remember(session.session_id, reason, final)
                tstate = self._tenants[session.tenant]
                tstate.sessions_open -= 1
                tstate.sessions_evicted += 1
                self._evicted += 1
                if reason == "idle":
                    self._reaped_idle += 1
                elif reason == "pressure":
                    self._evicted_pressure += 1
                return True

    def _remember(
        self, session_id: str, reason: str, checkpoint: SessionCheckpoint
    ) -> None:
        """Keep a dead session's final checkpoint (bounded; lock held)."""
        self._tombstones[session_id] = (reason, checkpoint)
        self._tombstones.move_to_end(session_id)
        while len(self._tombstones) > self.max_tombstones:
            self._tombstones.popitem(last=False)

    def attach(self, session_id: str) -> ManagedSession:
        """Fetch a live session by id (touches its idle clock).

        A reaped/evicted/closed id raises
        :class:`~repro.serve.faults.SessionEvicted` (typed, immediate —
        never a hang); an id the manager has never seen raises
        ``KeyError``.
        """
        with self._lock:
            session = self._sessions.get(session_id)
            if session is not None:
                session.last_active = self._clock()
                return session
            entry = self._tombstones.get(session_id)
            if entry is not None:
                reason, _ = entry
                raise SessionEvicted(
                    f"session '{session_id}' no longer exists ({reason}); "
                    f"restore it from its checkpoint",
                    session_id=session_id,
                    reason=reason,
                )
            raise KeyError(f"unknown session id '{session_id}'")

    def detach(self, session_id: str) -> SessionCheckpoint:
        """Checkpoint a live session without closing it.

        The client lets go holding a resume token; the session stays
        open (and its idle TTL keeps running, so an abandoned detached
        session is eventually reaped — its final checkpoint supersedes
        this one).
        """
        return self.attach(session_id).checkpoint()

    def close_session(self, session_id: str) -> SessionCheckpoint:
        """Gracefully close a live session; returns its final checkpoint."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                entry = self._tombstones.get(session_id)
                if entry is None:
                    raise KeyError(f"unknown session id '{session_id}'")
                reason, _ = entry
                raise SessionEvicted(
                    f"session '{session_id}' no longer exists ({reason})",
                    session_id=session_id,
                    reason=reason,
                )
        with session._lock:
            with self._lock:
                if session._state != "active":
                    reason = session._evict_reason or "closed"
                    raise SessionEvicted(
                        f"session '{session_id}' no longer exists ({reason})",
                        session_id=session_id,
                        reason=reason,
                    )
                final = SessionCheckpoint.capture(
                    session._inner, session_id=session_id, tenant=session.tenant
                )
                session._state = "closed"
                session._evict_reason = "closed"
                del self._sessions[session_id]
                self._remember(session_id, "closed", final)
                self._tenants[session.tenant].sessions_open -= 1
                self._closed_sessions += 1
                return final

    def checkpoint(self, session_id: str) -> SessionCheckpoint:
        """The session's current state — live capture or final tombstone."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                entry = self._tombstones.get(session_id)
                if entry is None:
                    raise KeyError(f"unknown session id '{session_id}'")
                return entry[1]
        return session.checkpoint()

    # -- reaping / drain ------------------------------------------------- #
    def reap_idle(self) -> int:
        """Evict every session idle past ``idle_ttl_s``; returns the count."""
        if self.idle_ttl_s is None:
            return 0
        now = self._clock()
        with self._lock:
            stale = [
                session
                for session in self._sessions.values()
                if now - session.last_active >= self.idle_ttl_s
            ]
        reaped = 0
        for session in stale:
            if self._evict(session, "idle"):
                reaped += 1
        return reaped

    def _janitor_loop(self) -> None:
        while not self._janitor_stop.wait(self.janitor_interval_s):
            try:
                self.reap_idle()
            except Exception:
                # The janitor must outlive any single bad sweep; the next
                # interval retries.
                continue

    def _stop_janitor(self) -> None:
        self._janitor_stop.set()
        janitor = self._janitor
        if janitor is not None and janitor is not threading.current_thread():
            janitor.join(timeout=5.0)

    def drain(self) -> Dict[str, SessionCheckpoint]:
        """Stop admission, settle in-flight chunks, checkpoint every session.

        Idempotent.  Each session's lock is acquired before it is taken
        away, so a chunk mid-push completes (its decisions land and are
        captured) before the final checkpoint is cut.  Returns the final
        checkpoints keyed by session id; they are also retained as
        tombstones for :meth:`checkpoint`/:meth:`restore`.
        """
        with self._lock:
            self._draining = True
            sessions = list(self._sessions.values())
        self._stop_janitor()
        for session in sessions:
            self._evict(session, "drain")
        with self._lock:
            return {
                session.session_id: self._tombstones[session.session_id][1]
                for session in sessions
                if session.session_id in self._tombstones
            }

    def close(self) -> Dict[str, SessionCheckpoint]:
        """Drain and shut the manager down (idempotent)."""
        checkpoints = self.drain()
        with self._lock:
            self._closed = True
        return checkpoints

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- quota / accounting hooks (called by ManagedSession.push) -------- #
    def _charge_samples(self, tenant_name: str, count: int) -> None:
        """Token-bucket admission for ``count`` samples (all or nothing)."""
        with self._lock:
            tenant = self._tenants[tenant_name]
            rate = tenant.samples_per_s
            if rate is None:
                return
            now = self._clock()
            capacity = rate * tenant.burst_s
            tenant.tokens = min(
                capacity, tenant.tokens + (now - tenant.last_refill) * rate
            )
            tenant.last_refill = now
            if count > tenant.tokens:
                tenant.quota_rejections += 1
                raise QuotaExceeded(
                    f"tenant '{tenant_name}' samples/s quota exhausted: chunk of "
                    f"{count} sample(s) exceeds the available budget "
                    f"({tenant.tokens:.0f} of {capacity:.0f} tokens)",
                    tenant=tenant_name,
                    quota="samples_per_s",
                )
            tenant.tokens -= count

    def _note_activity(
        self, tenant_name: str, *, windows: int, samples: int, degraded_windows: int
    ) -> None:
        with self._lock:
            tenant = self._tenants[tenant_name]
            tenant.windows += windows
            tenant.samples += samples
            tenant.degraded_windows += degraded_windows

    # -- introspection ---------------------------------------------------- #
    @property
    def session_ids(self) -> Tuple[str, ...]:
        """Ids of the currently live sessions (creation order)."""
        with self._lock:
            return tuple(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._sessions

    @property
    def stats(self) -> SessionManagerStats:
        """Frozen fleet-wide snapshot (what ``server.health()`` surfaces)."""
        with self._lock:
            return SessionManagerStats(
                sessions_open=len(self._sessions),
                sessions_created=self._created,
                sessions_closed=self._closed_sessions,
                sessions_evicted=self._evicted,
                reaped_idle=self._reaped_idle,
                evicted_pressure=self._evicted_pressure,
                draining=self._draining,
                tenants={
                    name: tenant.snapshot() for name, tenant in self._tenants.items()
                },
            )

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"SessionManager(sessions={len(self._sessions)}, "
                f"tenants={len(self._tenants)}, draining={self._draining})"
            )
