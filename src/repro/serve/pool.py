"""Multi-worker execution pool and the request priority/deadline model.

PR 1's :class:`~repro.serve.batcher.DynamicBatcher` executed every
micro-batch inline on its single forming thread, so batch formation and
backend execution were serialised.  This module supplies the scale-out
half of the serving stack:

* :class:`Priority` / :class:`DeadlineExceeded` — the request model shared
  by the batcher and the server: lower priority values run first (so
  :data:`Priority.HIGH` streaming traffic preempts :data:`Priority.LOW`
  bulk scoring), and a request whose deadline lapses while queued resolves
  with :class:`DeadlineExceeded` instead of occupying a batch slot;
* :class:`WorkerPool` — ``N`` daemon threads draining a job queue of
  formed micro-batches.  Threads (not processes) are the right unit here:
  both backends are NumPy-bound and release the GIL inside their BLAS
  kernels, and threads share the process-wide
  :class:`~repro.serve.server.BackendCache` for free.

The pool is **supervised**: a monitor thread watches every worker slot,
respawning workers that died (a :class:`~repro.serve.faults.WorkerCrash`
escaping a native kernel) and abandoning jobs stuck past the pool's soft
``job_timeout_s`` — the stuck job's future fails with
:class:`~repro.serve.faults.BackendTimeout`, a fresh worker takes over the
slot, and the hung thread's late result (if it ever unsticks) is
discarded.  Respawns draw from a ``max_restarts`` budget so a
deterministically crashing backend cannot respawn-loop forever; once the
budget is spent the slot stays dead and :class:`PoolStats` shows the
capacity loss.

The pool is deliberately generic (``submit(fn) -> Future``): the batcher
hands it zero-argument batch closures, but any backend maintenance job
(cache warm-up, calibration refresh) can ride the same workers.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, List, Optional, Tuple

from .faults import BackendTimeout, WorkerCrash

__all__ = ["DeadlineExceeded", "PoolStats", "Priority", "WorkerPool"]


class Priority(IntEnum):
    """Request urgency classes; lower values are served first.

    The gaps leave room for caller-defined intermediate levels — any int
    is accepted wherever a ``Priority`` is, and ties are broken FIFO by
    submission order.
    """

    HIGH = 0
    NORMAL = 10
    LOW = 20


class DeadlineExceeded(TimeoutError):
    """A request's deadline lapsed before a worker could serve it.

    Raised *through the request's future* (never into batch-mates): the
    expired request is dropped from batch formation so its slot goes to a
    request that can still meet its deadline.
    """


@dataclass(frozen=True)
class PoolStats:
    """Immutable snapshot of a :class:`WorkerPool`'s counters."""

    num_workers: int
    jobs: int = 0
    failures: int = 0
    per_worker: Tuple[int, ...] = field(default_factory=tuple)
    restarts: int = 0
    timeouts: int = 0
    crashes: int = 0
    alive: int = 0

    @property
    def busiest_worker(self) -> int:
        """Jobs executed by the most-loaded worker slot."""
        return max(self.per_worker) if self.per_worker else 0


_SHUTDOWN = object()


class _Slot:
    """One worker slot: the live thread plus its in-flight job bookkeeping."""

    __slots__ = ("thread", "future", "started_at")

    def __init__(self, thread: Optional[threading.Thread]) -> None:
        self.thread = thread
        self.future: Optional[Future] = None
        self.started_at: Optional[float] = None


class WorkerPool:
    """``N`` supervised threads executing submitted jobs.

    Parameters
    ----------
    num_workers:
        Concurrent worker threads.  ``1`` reproduces single-worker
        execution semantics (jobs run serially in submission order).
    name:
        Thread-name prefix, for debuggability under ``threading.enumerate``.
    job_timeout_s:
        Soft per-job timeout.  A thread cannot be killed, so a job stuck
        past this budget is *abandoned*: its future fails with
        :class:`~repro.serve.faults.BackendTimeout`, the slot respawns a
        fresh worker, and the hung thread's eventual result is discarded.
        ``None`` (default) disables timeout supervision (crash supervision
        stays on).
    max_restarts:
        Total respawn budget across all slots (crashes + timeouts).  Once
        spent, a dying slot stays dead — capacity degrades rather than
        respawn-looping on a deterministic fault.
    supervise_interval_s:
        Supervisor polling period; also bounds timeout-detection latency.

    Invariants (tested in ``tests/test_serve_pool.py`` and
    ``tests/test_serve_faults.py``):

    * every submitted job either runs or (if cancelled while queued) is
      skipped — a job's future always completes once claimed, even when
      its worker crashes or hangs;
    * ``close()`` drains every job already queued before returning;
    * a job that raises fails only its own future, never the worker —
      except :class:`~repro.serve.faults.WorkerCrash`, which kills the
      worker by design and is healed by supervision.
    """

    def __init__(
        self,
        num_workers: int = 2,
        name: str = "pool",
        *,
        job_timeout_s: Optional[float] = None,
        max_restarts: int = 16,
        supervise_interval_s: float = 0.02,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise ValueError("job_timeout_s must be > 0")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if supervise_interval_s <= 0:
            raise ValueError("supervise_interval_s must be > 0")
        self.num_workers = int(num_workers)
        self.name = name or "pool"
        self.job_timeout_s = job_timeout_s
        self.max_restarts = int(max_restarts)
        self.supervise_interval_s = float(supervise_interval_s)
        if job_timeout_s is not None:
            # Detect hangs well inside the timeout budget.
            self.supervise_interval_s = min(self.supervise_interval_s, job_timeout_s / 4.0)
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        self._jobs = 0
        self._failures = 0
        self._restarts = 0
        self._timeouts = 0
        self._crashes = 0
        self._spawned = 0
        self._per_worker = [0] * self.num_workers
        self._slots: List[_Slot] = [_Slot(None) for _ in range(self.num_workers)]
        for index in range(self.num_workers):
            self._spawn(index)
        self._stop_supervisor = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise, name=f"{self.name}-supervisor", daemon=True
        )
        self._supervisor.start()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, job: Callable[[], object]) -> Future:
        """Enqueue a zero-argument job; the future resolves to its result."""
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError(f"{self.name} is closed")
            self._queue.put((job, future))
        return future

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting jobs, drain the queue, and join every worker."""
        with self._lock:
            if not self._closed:
                self._closed = True
                # One sentinel per thread ever spawned: abandoned workers
                # may still be draining, and an extra sentinel left in the
                # queue is harmless while a missing one would hang a join.
                for _ in range(self._spawned):
                    self._queue.put(_SHUTDOWN)
        self._stop_supervisor.set()
        self._supervisor.join(timeout=timeout)
        for slot in self._slots:
            if slot.thread is not None:
                slot.thread.join(timeout=timeout)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (no new submissions)."""
        return self._closed

    @property
    def alive_workers(self) -> int:
        """Worker slots currently backed by a live thread."""
        with self._lock:
            return sum(
                1 for slot in self._slots if slot.thread is not None and slot.thread.is_alive()
            )

    @property
    def stats(self) -> PoolStats:
        """Frozen snapshot of the pool's job and supervision counters."""
        with self._lock:
            alive = sum(
                1 for slot in self._slots if slot.thread is not None and slot.thread.is_alive()
            )
            return PoolStats(
                num_workers=self.num_workers,
                jobs=self._jobs,
                failures=self._failures,
                per_worker=tuple(self._per_worker),
                restarts=self._restarts,
                timeouts=self._timeouts,
                crashes=self._crashes,
                alive=alive,
            )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WorkerPool(name='{self.name}', num_workers={self.num_workers}, "
            f"job_timeout_s={self.job_timeout_s})"
        )

    # ------------------------------------------------------------------ #
    # Supervision
    # ------------------------------------------------------------------ #
    def _spawn(self, index: int) -> None:
        """Start a fresh worker thread on slot ``index`` (lock held or init)."""
        thread = threading.Thread(
            target=self._run,
            args=(index,),
            name=f"{self.name}-{index}.{self._spawned}",
            daemon=True,
        )
        slot = self._slots[index]
        slot.thread = thread
        slot.future = None
        slot.started_at = None
        self._spawned += 1
        thread.start()

    def _respawn(self, index: int) -> bool:
        """Replace slot ``index``'s worker, spending one restart (lock held).

        Returns ``False`` when the restart budget is exhausted — the slot
        is left dead and the pool's capacity permanently shrinks by one.
        """
        slot = self._slots[index]
        if self._restarts >= self.max_restarts:
            slot.thread = None
            slot.future = None
            slot.started_at = None
            return False
        self._restarts += 1
        self._spawn(index)
        return True

    def _supervise(self) -> None:
        """Monitor loop: respawn crashed workers, abandon stuck jobs."""
        while not self._stop_supervisor.wait(self.supervise_interval_s):
            timed_out: List[Tuple[Future, float]] = []
            with self._lock:
                if self._closed:
                    break
                now = time.monotonic()
                for index, slot in enumerate(self._slots):
                    if slot.thread is None:
                        continue  # budget exhausted earlier; slot stays dead
                    if not slot.thread.is_alive():
                        self._crashes += 1
                        self._respawn(index)
                    elif (
                        self.job_timeout_s is not None
                        and slot.future is not None
                        and slot.started_at is not None
                        and now - slot.started_at > self.job_timeout_s
                    ):
                        self._timeouts += 1
                        timed_out.append((slot.future, now - slot.started_at))
                        # Abandon: the hung thread keeps running (daemon),
                        # but the slot gets a fresh worker and the hung
                        # thread's late result will be discarded.
                        self._respawn(index)
            for future, elapsed in timed_out:
                try:
                    future.set_exception(
                        BackendTimeout(
                            f"{self.name}: job exceeded its soft timeout "
                            f"({elapsed:.3f}s > {self.job_timeout_s}s); worker abandoned"
                        )
                    )
                except InvalidStateError:
                    pass  # the job finished in the detection window

    # ------------------------------------------------------------------ #
    # Worker loop
    # ------------------------------------------------------------------ #
    def _abandoned(self, index: int) -> bool:
        """Whether the calling thread no longer owns slot ``index``."""
        return self._slots[index].thread is not threading.current_thread()

    def _run(self, index: int) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                # Workers exit one sentinel each; real jobs queued before
                # close() were already ahead of every sentinel (FIFO), so
                # nothing claimable is left behind.
                break
            with self._lock:
                if self._abandoned(index):
                    # This worker was abandoned while blocked on get():
                    # hand the job back for the replacement and bow out.
                    self._queue.put(item)
                    return
            job, future = item
            if not future.set_running_or_notify_cancel():
                continue
            slot = self._slots[index]
            with self._lock:
                slot.future = future
                slot.started_at = time.monotonic()
            crashed = False
            error: Optional[BaseException] = None
            result: object = None
            try:
                result = job()
            except WorkerCrash as exc:
                error = exc
                crashed = True
            except BaseException as exc:  # noqa: BLE001 — forwarded to caller
                error = exc
            with self._lock:
                abandoned = self._abandoned(index)
                if not abandoned:
                    slot.future = None
                    slot.started_at = None
                self._jobs += 1
                self._per_worker[index] += 1
                if error is not None:
                    self._failures += 1
            try:
                if error is not None:
                    future.set_exception(error)
                else:
                    future.set_result(result)
            except InvalidStateError:
                # The supervisor abandoned this job (soft timeout) and
                # already failed its future; the late outcome is discarded.
                pass
            if crashed:
                # Emulated native crash: the worker dies with the job and
                # supervision respawns the slot (within the budget).  A bare
                # return (not re-raise) so the intentional death does not
                # spray the default threading excepthook over stderr — the
                # supervisor counts the dead thread as a crash either way.
                return
            if abandoned:
                return
