"""Multi-worker execution pool and the request priority/deadline model.

PR 1's :class:`~repro.serve.batcher.DynamicBatcher` executed every
micro-batch inline on its single forming thread, so batch formation and
backend execution were serialised.  This module supplies the scale-out
half of the serving stack:

* :class:`Priority` / :class:`DeadlineExceeded` — the request model shared
  by the batcher and the server: lower priority values run first (so
  :data:`Priority.HIGH` streaming traffic preempts :data:`Priority.LOW`
  bulk scoring), and a request whose deadline lapses while queued resolves
  with :class:`DeadlineExceeded` instead of occupying a batch slot;
* :class:`WorkerPool` — ``N`` daemon threads draining a job queue of
  formed micro-batches.  Threads (not processes) are the right unit here:
  both backends are NumPy-bound and release the GIL inside their BLAS
  kernels, and threads share the process-wide
  :class:`~repro.serve.server.BackendCache` for free.

The pool is deliberately generic (``submit(fn) -> Future``): the batcher
hands it zero-argument batch closures, but any backend maintenance job
(cache warm-up, calibration refresh) can ride the same workers.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Optional, Tuple

__all__ = ["DeadlineExceeded", "PoolStats", "Priority", "WorkerPool"]


class Priority(IntEnum):
    """Request urgency classes; lower values are served first.

    The gaps leave room for caller-defined intermediate levels — any int
    is accepted wherever a ``Priority`` is, and ties are broken FIFO by
    submission order.
    """

    HIGH = 0
    NORMAL = 10
    LOW = 20


class DeadlineExceeded(TimeoutError):
    """A request's deadline lapsed before a worker could serve it.

    Raised *through the request's future* (never into batch-mates): the
    expired request is dropped from batch formation so its slot goes to a
    request that can still meet its deadline.
    """


@dataclass(frozen=True)
class PoolStats:
    """Immutable snapshot of a :class:`WorkerPool`'s counters."""

    num_workers: int
    jobs: int = 0
    failures: int = 0
    per_worker: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def busiest_worker(self) -> int:
        """Jobs executed by the most-loaded worker."""
        return max(self.per_worker) if self.per_worker else 0


_SHUTDOWN = object()


class WorkerPool:
    """``N`` threads executing submitted jobs; futures report completion.

    Parameters
    ----------
    num_workers:
        Concurrent worker threads.  ``1`` reproduces single-worker
        execution semantics (jobs run serially in submission order).
    name:
        Thread-name prefix, for debuggability under ``threading.enumerate``.

    Invariants (tested in ``tests/test_serve_pool.py``):

    * every submitted job either runs or (if cancelled while queued) is
      skipped — a job's future always completes once claimed;
    * ``close()`` drains every job already queued before returning;
    * a job that raises fails only its own future, never the worker.
    """

    def __init__(self, num_workers: int = 2, name: str = "pool") -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = int(num_workers)
        self.name = name or "pool"
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        self._jobs = 0
        self._failures = 0
        self._per_worker = [0] * self.num_workers
        self._threads = [
            threading.Thread(
                target=self._run, args=(index,), name=f"{self.name}-{index}", daemon=True
            )
            for index in range(self.num_workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, job: Callable[[], object]) -> Future:
        """Enqueue a zero-argument job; the future resolves to its result."""
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError(f"{self.name} is closed")
            self._queue.put((job, future))
        return future

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting jobs, drain the queue, and join every worker."""
        with self._lock:
            if not self._closed:
                self._closed = True
                for _ in self._threads:
                    self._queue.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join(timeout=timeout)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (no new submissions)."""
        return self._closed

    @property
    def stats(self) -> PoolStats:
        """Frozen snapshot of the pool's job counters."""
        with self._lock:
            return PoolStats(
                num_workers=self.num_workers,
                jobs=self._jobs,
                failures=self._failures,
                per_worker=tuple(self._per_worker),
            )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"WorkerPool(name='{self.name}', num_workers={self.num_workers})"

    # ------------------------------------------------------------------ #
    # Worker loop
    # ------------------------------------------------------------------ #
    def _run(self, index: int) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                # Workers exit one sentinel each; real jobs queued before
                # close() were already ahead of every sentinel (FIFO), so
                # nothing claimable is left behind.
                break
            job, future = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                result = job()
            except BaseException as error:  # noqa: BLE001 — forwarded to caller
                with self._lock:
                    self._jobs += 1
                    self._failures += 1
                    self._per_worker[index] += 1
                future.set_exception(error)
            else:
                with self._lock:
                    self._jobs += 1
                    self._per_worker[index] += 1
                future.set_result(result)
