"""Dynamic micro-batching of concurrent inference requests.

Serving traffic arrives one window at a time, but every backend in this
repository (the NumPy ``repro.nn`` forward pass as well as the integer
graph executor) amortises its per-call Python overhead over the batch axis.
The :class:`DynamicBatcher` sits between the two: callers submit single
windows and receive futures; a background worker drains the request queue
into micro-batches of at most ``max_batch_size`` windows, flushing a
partially filled batch once the oldest request has waited ``max_wait_s``.

Invariants (enforced by the property tests in ``tests/test_serve_batcher.py``):

* **no request is dropped** — every submitted future completes, even when
  the batcher is closed with requests still queued;
* **no request is duplicated** — each future resolves exactly once;
* **order is preserved** — rows of a micro-batch follow submission order,
  and each caller receives exactly the output row of its own input;
* **batches never exceed** ``max_batch_size``.

The same queue/executor split appears in large-scale serving stacks (e.g.
the neuron pipeline executors); this is the single-process version that
later multi-worker PRs can swap out.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

__all__ = ["BatcherStats", "DynamicBatcher"]

_SHUTDOWN = object()


@dataclass
class BatcherStats:
    """Running counters of the micro-batches an executor actually formed.

    Plain counters (not a per-batch history) so a long-lived serving
    process accumulates O(1) state regardless of traffic volume.
    """

    requests: int = 0
    batches: int = 0
    max_batch: int = 0

    @property
    def mean_batch(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


class _Request:
    __slots__ = ("payload", "future")

    def __init__(self, payload: np.ndarray, future: Future) -> None:
        self.payload = payload
        self.future = future


class DynamicBatcher:
    """Aggregate single-window requests into micro-batches for ``run_batch``.

    Parameters
    ----------
    run_batch:
        Callable mapping a stacked ``(batch, ...)`` array to a ``(batch, ...)``
        array of per-request results (row ``i`` answers request ``i``).
    max_batch_size:
        Hard upper bound on the micro-batch size.
    max_wait_s:
        Flush timeout: a partially filled batch is executed once its oldest
        request has waited this long.
    """

    def __init__(
        self,
        run_batch: Callable[[np.ndarray], np.ndarray],
        max_batch_size: int = 16,
        max_wait_s: float = 0.002,
        name: str = "",
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.run_batch = run_batch
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.name = name or "batcher"
        self.stats = BatcherStats()
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name=f"{self.name}-worker", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------ #
    # Submission API
    # ------------------------------------------------------------------ #
    def submit(self, window: np.ndarray) -> Future:
        """Enqueue one window; the future resolves to its result row."""
        future: Future = Future()
        request = _Request(np.asarray(window), future)
        # Enqueue under the lock so a concurrent close() either sees this
        # request before its shutdown sentinel (and drains it) or rejects
        # the submission — a request can never slip in after the drain.
        with self._lock:
            if self._closed:
                raise RuntimeError(f"{self.name} is closed")
            self._queue.put(request)
        return future

    def submit_many(self, windows: Sequence[np.ndarray]) -> List[Future]:
        """Enqueue several windows in order (one future per window)."""
        return [self.submit(window) for window in windows]

    def map(self, windows: Sequence[np.ndarray], timeout: Optional[float] = None) -> np.ndarray:
        """Submit ``windows`` and block for the stacked results (in order)."""
        futures = self.submit_many(windows)
        return np.stack([future.result(timeout=timeout) for future in futures])

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting requests, drain the queue, and join the worker."""
        with self._lock:
            already = self._closed
            if not already:
                self._closed = True
                self._queue.put(_SHUTDOWN)
        self._worker.join(timeout=timeout)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "DynamicBatcher":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Worker
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        draining = False
        while not draining:
            first = self._queue.get()
            if first is _SHUTDOWN:
                break
            batch = [first]
            deadline = time.monotonic() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                try:
                    if remaining > 0:
                        item = self._queue.get(timeout=remaining)
                    else:
                        item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    draining = True
                    break
                batch.append(item)
            self._execute(batch)
        # Drain everything still queued at close() time so no future is
        # left pending; requests are still batched (submission order holds
        # because this worker is the queue's only consumer).
        while True:
            batch = []
            while len(batch) < self.max_batch_size:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    continue
                batch.append(item)
            if not batch:
                break
            self._execute(batch)

    def _execute(self, batch: List[_Request]) -> None:
        # Claim every future before running: a future that was cancelled
        # while queued is dropped here, and a claimed (RUNNING) future can
        # no longer be cancelled, so set_result/set_exception below cannot
        # race a caller's cancel() into InvalidStateError.
        live = [request for request in batch if request.future.set_running_or_notify_cancel()]
        if not live:
            return
        try:
            stacked = np.stack([request.payload for request in live])
            results = np.asarray(self.run_batch(stacked))
            if results.shape[0] != len(live):
                raise RuntimeError(
                    f"run_batch returned {results.shape[0]} rows for a "
                    f"batch of {len(live)}"
                )
        except BaseException as error:  # noqa: BLE001 — forwarded to callers
            for request in live:
                request.future.set_exception(error)
            return
        with self._lock:
            self.stats.requests += len(live)
            self.stats.batches += 1
            self.stats.max_batch = max(self.stats.max_batch, len(live))
        for row, request in enumerate(live):
            request.future.set_result(results[row])
