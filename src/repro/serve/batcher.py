"""Priority-aware dynamic micro-batching of concurrent inference requests.

Serving traffic arrives one window at a time, but every backend in this
repository (the NumPy ``repro.nn`` forward pass as well as the integer
graph executor) amortises its per-call Python overhead over the batch axis.
The :class:`DynamicBatcher` sits between the two: callers submit single
windows and receive futures; a background forming thread drains the
request queue into micro-batches of at most ``max_batch_size`` windows,
flushing a partially filled batch once the oldest request has waited
``max_wait_s``.

Requests carry a :class:`~repro.serve.pool.Priority` and an optional
deadline.  The queue is a priority queue (FIFO within one priority level),
so high-priority streaming traffic is batched ahead of already-queued
low-priority bulk scoring, and a request whose deadline lapses resolves
with :class:`~repro.serve.pool.DeadlineExceeded` instead of occupying a
batch slot.  Formed batches either execute inline (the single-worker
default) or are dispatched to a :class:`~repro.serve.pool.WorkerPool`,
which overlaps batch formation with backend execution across ``N``
threads.

Overload is handled by **admission control**, not unbounded queueing:
with ``max_queue_depth`` set, a submission that finds the queue full
either sheds the newest request of the *worst* queued priority level
(when the newcomer outranks it — its future resolves with
:class:`~repro.serve.faults.Overloaded`) or is itself rejected with a
fast synchronous :class:`~repro.serve.faults.Overloaded` raise.  LOW
traffic is always shed before HIGH.

Invariants (enforced by the property tests in ``tests/test_serve_batcher.py``):

* **no request is dropped** — every submitted future completes, even when
  the batcher is closed with requests still queued, when a dispatched
  pool job crashes, or when its worker is abandoned on a soft timeout;
* **no request is duplicated** — each future resolves exactly once;
* **order is preserved per priority level** — within one priority, rows of
  a micro-batch follow submission order, and each caller receives exactly
  the output row of its own input;
* **batches never exceed** ``max_batch_size``;
* **no batch poisoning** — a malformed or expired request fails (only) its
  own future; its batch-mates still execute.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .faults import Overloaded, WorkerCrash
from .pool import DeadlineExceeded, Priority, WorkerPool

__all__ = ["BatcherStats", "DynamicBatcher"]

_SHUTDOWN = object()
# The shutdown sentinel sorts after every real priority, so by the time the
# forming thread pops it the priority queue holds no live requests.
_SHUTDOWN_PRIORITY = float("inf")


@dataclass(frozen=True)
class BatcherStats:
    """Immutable snapshot of the micro-batches an executor actually formed.

    Plain counters (not a per-batch history) so a long-lived serving
    process accumulates O(1) state regardless of traffic volume.  The
    ``stats`` property hands out a *frozen copy* taken under the batcher's
    lock — mutating or holding a snapshot can never corrupt (or observe a
    torn view of) the live counters.
    """

    requests: int = 0
    batches: int = 0
    max_batch: int = 0
    expired: int = 0
    malformed: int = 0
    shed: int = 0
    rejected: int = 0
    queue_depth: int = 0
    by_priority: Mapping[int, int] = field(default_factory=dict)

    @property
    def mean_batch(self) -> float:
        """Average number of windows per formed micro-batch."""
        return self.requests / self.batches if self.batches else 0.0


class _Request:
    __slots__ = ("payload", "future", "priority", "deadline", "shed")

    def __init__(
        self,
        payload: np.ndarray,
        future: Future,
        priority: int,
        deadline: Optional[float],
    ) -> None:
        self.payload = payload
        self.future = future
        self.priority = priority
        self.deadline = deadline  # absolute time.monotonic() instant
        self.shed = False  # resolved with Overloaded while queued


class DynamicBatcher:
    """Aggregate single-window requests into micro-batches for ``run_batch``.

    Parameters
    ----------
    run_batch:
        Callable mapping a stacked ``(batch, ...)`` array to a ``(batch, ...)``
        array of per-request results (row ``i`` answers request ``i``).
    max_batch_size:
        Hard upper bound on the micro-batch size.
    max_wait_s:
        Flush timeout: a partially filled batch is executed once its oldest
        request has waited this long.
    input_shape:
        Expected per-request payload shape.  When given, a mismatching
        payload fails its own future with ``ValueError`` at batch-stack
        time; when omitted, the majority payload shape of each micro-batch
        defines the reference (ties break toward the earliest submission).
        Either way one malformed request can never fail its batch-mates.
    pool:
        Optional :class:`~repro.serve.pool.WorkerPool`.  When given, formed
        batches are dispatched to the pool (overlapping formation with
        execution, and batches with each other across workers); when
        ``None``, batches execute inline on the forming thread — the exact
        single-worker semantics of the pre-pool batcher.  The pool is
        *borrowed*: closing the batcher drains its own dispatched jobs but
        never closes the pool.
    max_queue_depth:
        Admission-control bound on *queued* (not yet batch-formed)
        requests.  A submission over the bound sheds the newest queued
        request of the numerically largest (least urgent) priority level
        when the newcomer strictly outranks it — the victim's future
        resolves with :class:`~repro.serve.faults.Overloaded` — and is
        otherwise itself rejected with a synchronous ``Overloaded`` raise.
        ``None`` (default) keeps the historical unbounded queue.
    pass_deadline:
        When ``True``, ``run_batch`` is invoked as
        ``run_batch(stacked, deadline=earliest)`` where ``earliest`` is
        the soonest absolute deadline among the batch's live requests (or
        ``None``) — the hook the server's retry path uses to stop
        retrying once the batch can no longer make its deadline.
    """

    def __init__(
        self,
        run_batch: Callable[[np.ndarray], np.ndarray],
        max_batch_size: int = 16,
        max_wait_s: float = 0.002,
        name: str = "",
        input_shape: Optional[Tuple[int, ...]] = None,
        pool: Optional[WorkerPool] = None,
        max_queue_depth: Optional[int] = None,
        pass_deadline: bool = False,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.run_batch = run_batch
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.name = name or "batcher"
        self.input_shape = tuple(input_shape) if input_shape is not None else None
        self.pool = pool
        self.max_queue_depth = max_queue_depth
        self.pass_deadline = bool(pass_deadline)
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._ticket = itertools.count()  # FIFO tie-break within a priority
        self._lock = threading.Lock()
        self._closed = False
        self._requests = 0
        self._batches = 0
        self._max_batch = 0
        self._expired = 0
        self._malformed = 0
        self._shed = 0
        self._rejected = 0
        self._by_priority: dict = {}
        # Queued-but-not-yet-popped requests per priority level, FIFO by
        # ticket.  The forming thread pops the *left* end (oldest of the
        # most urgent level); shedding pops the *right* end (newest of the
        # least urgent level) — so deque[0] of a level is always the next
        # request the priority queue will deliver from that level.
        self._pending_by_priority: Dict[int, Deque[_Request]] = {}
        self._pending: List[Future] = []  # in-flight pool jobs
        # Dispatch throttle: at most num_workers batches may be in flight,
        # so excess requests wait in the *priority* queue (where HIGH can
        # still jump ahead) instead of piling up as formed batches in the
        # pool's FIFO job queue — unbounded dispatch would defeat
        # preemption whenever a pool is attached.
        self._dispatch_slots = (
            threading.Semaphore(pool.num_workers) if pool is not None else None
        )
        self._worker = threading.Thread(
            target=self._run, name=f"{self.name}-former", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------ #
    # Submission API
    # ------------------------------------------------------------------ #
    def submit(
        self,
        window: np.ndarray,
        priority: int = Priority.NORMAL,
        deadline_s: Optional[float] = None,
    ) -> Future:
        """Enqueue one window; the future resolves to its result row.

        ``priority`` orders batch formation (lower first, FIFO within a
        level).  ``deadline_s`` is a relative budget: if the request is
        still queued after that many seconds it resolves with
        :class:`~repro.serve.pool.DeadlineExceeded` instead of executing.

        With ``max_queue_depth`` set, a submission into a full queue
        either sheds the newest least-urgent queued request (when this
        request strictly outranks it) or raises
        :class:`~repro.serve.faults.Overloaded` synchronously.
        """
        if deadline_s is not None and deadline_s < 0:
            raise ValueError("deadline_s must be >= 0")
        deadline = time.monotonic() + deadline_s if deadline_s is not None else None
        future: Future = Future()
        request = _Request(np.asarray(window), future, int(priority), deadline)
        victim: Optional[_Request] = None
        # Enqueue under the lock so a concurrent close() either sees this
        # request before its shutdown sentinel (and drains it) or rejects
        # the submission — a request can never slip in after the drain.
        with self._lock:
            if self._closed:
                raise RuntimeError(f"{self.name} is closed")
            if self.max_queue_depth is not None:
                depth = sum(len(d) for d in self._pending_by_priority.values())
                if depth >= self.max_queue_depth:
                    worst = max(
                        (p for p, d in self._pending_by_priority.items() if d),
                        default=None,
                    )
                    if worst is None or worst <= request.priority:
                        # Nothing queued is less urgent: fast rejection.
                        self._rejected += 1
                        raise Overloaded(
                            f"{self.name}: queue full "
                            f"({depth}/{self.max_queue_depth}); request rejected"
                        )
                    victim = self._pending_by_priority[worst].pop()
                    victim.shed = True
                    self._shed += 1
            self._pending_by_priority.setdefault(request.priority, deque()).append(request)
            self._queue.put((request.priority, next(self._ticket), request))
        if victim is not None and victim.future.set_running_or_notify_cancel():
            # Resolve outside the lock: future callbacks run inline.
            victim.future.set_exception(
                Overloaded(
                    f"{self.name}: shed while queued to admit priority "
                    f"{request.priority} traffic (queue full)"
                )
            )
        return future

    def submit_many(
        self,
        windows: Sequence[np.ndarray],
        priority: int = Priority.NORMAL,
        deadline_s: Optional[float] = None,
    ) -> List[Future]:
        """Enqueue several windows in order (one future per window)."""
        return [self.submit(window, priority=priority, deadline_s=deadline_s) for window in windows]

    def map(
        self,
        windows: Sequence[np.ndarray],
        timeout: Optional[float] = None,
        priority: int = Priority.NORMAL,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Submit ``windows`` and block for the stacked results (in order).

        Zero windows is a valid (empty) workload: the result is an empty
        ``(0,)`` array rather than an obscure ``np.stack([])`` failure.
        (With no requests the batcher cannot know the backend's result-row
        shape; callers that do know it should reshape — e.g.
        ``InferenceServer.infer`` returns ``(0, num_classes)``.)
        """
        futures = self.submit_many(windows, priority=priority, deadline_s=deadline_s)
        if not futures:
            return np.empty((0,), dtype=np.float64)
        return np.stack([future.result(timeout=timeout) for future in futures])

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    @property
    def queue_depth(self) -> int:
        """Requests currently queued awaiting batch formation."""
        with self._lock:
            return sum(len(d) for d in self._pending_by_priority.values())

    @property
    def stats(self) -> BatcherStats:
        """A frozen snapshot of the counters, taken under the lock."""
        with self._lock:
            return BatcherStats(
                requests=self._requests,
                batches=self._batches,
                max_batch=self._max_batch,
                expired=self._expired,
                malformed=self._malformed,
                shed=self._shed,
                rejected=self._rejected,
                queue_depth=sum(len(d) for d in self._pending_by_priority.values()),
                by_priority=MappingProxyType(dict(self._by_priority)),
            )

    def close(self, timeout: Optional[float] = 10.0) -> bool:
        """Stop accepting requests, drain the queue, and join the worker.

        When a pool is attached, also blocks until every batch this batcher
        already dispatched has finished executing (the pool itself stays
        open — it may be shared).

        ``timeout`` is a *single* budget for the whole shutdown: the worker
        join and the wait on in-flight pool futures share one deadline
        (earlier revisions spent the full timeout on each phase, so
        ``close(timeout=10)`` could block for 20 s).  Returns ``True`` when
        everything drained within the budget, ``False`` when the worker is
        still alive or pool futures are still running at the deadline — the
        caller can then retry, extend the budget, or report the leak.
        """
        with self._lock:
            already = self._closed
            if not already:
                self._closed = True
                self._queue.put((_SHUTDOWN_PRIORITY, next(self._ticket), _SHUTDOWN))
        deadline = None if timeout is None else time.monotonic() + timeout
        self._worker.join(timeout=timeout)
        drained = not self._worker.is_alive()
        with self._lock:
            pending = list(self._pending)
        if pending:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            done = wait_futures(pending, timeout=remaining)
            drained = drained and not done.not_done
        return drained

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (no new submissions)."""
        return self._closed

    def __enter__(self) -> "DynamicBatcher":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Batch formation
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        draining = False
        while not draining:
            _, _, first = self._queue.get()
            if first is _SHUTDOWN:
                break
            batch = []
            self._admit(first, batch)
            deadline = time.monotonic() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                try:
                    if remaining > 0:
                        _, _, item = self._queue.get(timeout=remaining)
                    else:
                        _, _, item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    draining = True
                    break
                self._admit(item, batch)
            self._dispatch(batch)
        # Drain everything still queued at close() time so no future is
        # left pending; requests are still batched, in priority order
        # (this forming thread is the queue's only consumer).
        while True:
            batch = []
            while len(batch) < self.max_batch_size:
                try:
                    _, _, item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    continue
                self._admit(item, batch)
            if not batch:
                break
            self._dispatch(batch)

    def _admit(self, request: _Request, batch: List[_Request]) -> None:
        """Add ``request`` to the forming batch, or expire it in place.

        A past-deadline request is resolved immediately with
        ``DeadlineExceeded`` so it never occupies a batch slot that a
        still-viable request could use.  A request shed by admission
        control was already resolved with ``Overloaded`` and removed from
        the pending books — it is skipped silently here.
        """
        with self._lock:
            pending = self._pending_by_priority.get(request.priority)
            if pending and pending[0] is request:
                pending.popleft()
        if request.shed:
            return
        if request.deadline is not None and time.monotonic() > request.deadline:
            if request.future.set_running_or_notify_cancel():
                with self._lock:
                    self._expired += 1
                request.future.set_exception(
                    DeadlineExceeded(
                        f"{self.name}: request expired after waiting past its deadline"
                    )
                )
            return
        batch.append(request)

    def _dispatch(self, batch: List[_Request]) -> None:
        if not batch:
            return
        if self.pool is None:
            self._execute(batch)
            return
        self._dispatch_slots.acquire()
        try:
            job = self.pool.submit(lambda: self._execute(batch, propagate_crash=True))
        except RuntimeError:
            # A borrowed pool was closed while this batcher is still live.
            # Fall back to inline execution: the forming thread must never
            # die with futures unresolved (the no-request-dropped invariant
            # outranks pool dispatch).
            self._dispatch_slots.release()
            self._execute(batch)
            return
        job.add_done_callback(lambda done, batch=batch: self._job_done(batch, done))
        with self._lock:
            # Prune settled jobs so long-lived batchers hold O(workers)
            # futures, not one per batch ever dispatched.
            self._pending = [f for f in self._pending if not f.done()]
            self._pending.append(job)

    def _job_done(self, batch: List[_Request], job: Future) -> None:
        """Release the dispatch slot and settle any futures the job left.

        ``_execute`` resolves every request future itself, so on a clean
        job there is nothing to do.  But a job that *failed at the pool
        level* — its worker crashed mid-batch, or supervision abandoned it
        on a soft timeout — died between claiming the request futures and
        resolving them.  Forwarding the job's error here is what upholds
        the no-request-dropped invariant under worker faults.
        """
        self._dispatch_slots.release()
        if job.cancelled():
            error: BaseException = RuntimeError(f"{self.name}: batch job cancelled")
        else:
            error = job.exception()
        if error is None:
            return
        for request in batch:
            try:
                # Legal from PENDING or RUNNING; InvalidStateError means the
                # future already settled (normally, or a hung worker unstuck
                # and resolved it first) or was cancelled.
                request.future.set_exception(error)
            except InvalidStateError:
                pass

    # ------------------------------------------------------------------ #
    # Batch execution (forming thread or pool worker)
    # ------------------------------------------------------------------ #
    def _execute(self, batch: List[_Request], propagate_crash: bool = False) -> None:
        # Claim every future before running: a future that was cancelled
        # while queued is dropped here, and a claimed (RUNNING) future can
        # no longer be cancelled, so set_result/set_exception below cannot
        # race a caller's cancel() into InvalidStateError.
        claimed = [request for request in batch if request.future.set_running_or_notify_cancel()]
        alive: List[_Request] = []
        expired: List[_Request] = []
        for request in claimed:
            # Re-check the deadline at execution time: a request can expire
            # between batch formation and a pool worker picking the job up.
            if request.deadline is not None and time.monotonic() > request.deadline:
                expired.append(request)
            else:
                alive.append(request)
        reference = self.input_shape
        if reference is None and alive:
            # Majority shape of the batch (ties -> earliest submission):
            # one malformed request can never outvote its batch-mates, no
            # matter where it lands in the batch.
            counts: dict = {}
            for request in alive:
                shape = np.shape(request.payload)
                counts[shape] = counts.get(shape, 0) + 1
            best = max(counts.values())
            reference = next(
                shape
                for shape in (np.shape(request.payload) for request in alive)
                if counts[shape] == best
            )
        live: List[_Request] = []
        malformed: List[_Request] = []
        for request in alive:
            if np.shape(request.payload) != reference:
                malformed.append(request)
            else:
                live.append(request)
        if expired or malformed:
            # Update the counters *before* resolving the futures, so a
            # caller that awaits a rejected future and then reads ``stats``
            # always observes its own request accounted for.
            with self._lock:
                self._expired += len(expired)
                self._malformed += len(malformed)
            for request in expired:
                request.future.set_exception(
                    DeadlineExceeded(
                        f"{self.name}: request expired before its batch executed"
                    )
                )
            for request in malformed:
                request.future.set_exception(
                    ValueError(
                        f"{self.name}: request payload has shape "
                        f"{np.shape(request.payload)}, expected {reference}"
                    )
                )
        if not live:
            return
        try:
            stacked = np.stack([request.payload for request in live])
            if self.pass_deadline:
                earliest = min(
                    (r.deadline for r in live if r.deadline is not None), default=None
                )
                raw = self.run_batch(stacked, deadline=earliest)
            else:
                raw = self.run_batch(stacked)
            # asanyarray, not asarray: the server's degradation path marks
            # fallback answers with an ndarray subclass (DegradedLogits),
            # and rows handed to callers must keep that flag.
            results = np.asanyarray(raw)
            if results.shape[0] != len(live):
                raise RuntimeError(
                    f"run_batch returned {results.shape[0]} rows for a "
                    f"batch of {len(live)}"
                )
        except BaseException as error:  # noqa: BLE001 — forwarded to callers
            for request in live:
                try:
                    request.future.set_exception(error)
                except InvalidStateError:
                    pass  # already failed by timeout abandonment
            if propagate_crash and isinstance(error, WorkerCrash):
                # Let the emulated crash take the pool worker down (the
                # supervisor respawns it).  Inline execution never
                # propagates: the forming thread must survive everything.
                raise
            return
        with self._lock:
            self._requests += len(live)
            self._batches += 1
            self._max_batch = max(self._max_batch, len(live))
            for request in live:
                self._by_priority[request.priority] = (
                    self._by_priority.get(request.priority, 0) + 1
                )
        for row, request in enumerate(live):
            try:
                request.future.set_result(results[row])
            except InvalidStateError:
                # Supervision abandoned this batch on a soft timeout and
                # already failed the future; the late row is discarded.
                pass
