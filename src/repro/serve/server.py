"""The serving facade: one API over both inference engines.

:class:`InferenceServer` owns a :class:`~repro.serve.backends.Backend` and a
:class:`~repro.serve.batcher.DynamicBatcher`, and exposes the three call
styles a gesture-recognition service needs:

* ``submit(window)`` — asynchronous single-window requests (the batcher
  aggregates concurrent callers into micro-batches);
* ``infer(windows)`` / ``predict(windows)`` — synchronous batch inference
  routed through the same micro-batching path;
* ``open_stream(...)`` — a :class:`~repro.serve.stream.StreamSession` bound
  to this server for raw-signal streaming.

Backends are constructed through a process-wide cache keyed by
``(architecture, patch_size, backend)`` (plus the full registry kwargs), so
many concurrent sessions of the same deployed architecture share one
model/executor — the serving analogue of the deploy toolchain's one-binary-
many-inferences model.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..models.registry import build_model, model_cache_key
from ..nn.module import Module
from .backends import Backend, build_float_backend, build_int8_backend
from .batcher import BatcherStats, DynamicBatcher
from .stream import StreamSession

__all__ = ["BackendCache", "InferenceServer", "get_default_cache"]

_BACKENDS = ("float", "int8")


class BackendCache:
    """LRU cache of constructed serving backends.

    Keys are ``(model_cache_key(architecture, **kwargs), backend)`` tuples:
    two servers asking for the same architecture / patch size / backend get
    the *same* backend object (same weights, same quantisation constants).
    """

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Tuple, Backend]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get_or_build(self, key: Tuple, factory: Callable[[], Backend]) -> Backend:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
        # Build outside the lock (lowering can take a while); worst case two
        # threads build the same backend and the first insert wins.
        backend = factory()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self.hits += 1
                return existing
            self.misses += 1
            self._entries[key] = backend
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return backend

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


_DEFAULT_CACHE = BackendCache()


def get_default_cache() -> BackendCache:
    """The process-wide backend cache used when none is passed explicitly."""
    return _DEFAULT_CACHE


@dataclass
class ServerStats:
    """Operational counters of one :class:`InferenceServer`."""

    backend: str
    architecture: str
    batcher: BatcherStats

    @property
    def requests(self) -> int:
        return self.batcher.requests

    @property
    def batches(self) -> int:
        return self.batcher.batches


class InferenceServer:
    """Serve sEMG gesture classification over a float or int8 backend.

    Parameters
    ----------
    model:
        Either a registry name (``"bio1"``, ``"bio2"``, ``"temponet"``) or an
        already constructed/trained :class:`~repro.nn.module.Module`.
    backend:
        ``"float"`` (direct ``repro.nn`` forward) or ``"int8"`` (lowered
        integer graph, the GAP8 numerics).
    patch_size:
        Bioformer front-end filter dimension; forwarded to the registry and
        part of the cache key.  Ignored for TEMPONet.
    model_kwargs:
        Extra registry arguments (``num_channels``, ``window_samples``,
        ``num_classes``, ``seed``, ...).
    calibration:
        Representative windows for int8 lowering (int8 backend only).
        Calibration is *not* part of the cache key; pass a dedicated
        ``cache`` when serving differently calibrated variants side by side.
    max_batch_size / max_wait_s:
        Micro-batching knobs (see :class:`~repro.serve.batcher.DynamicBatcher`).
    cache:
        Backend cache to use; defaults to the process-wide cache.  Models
        passed as live ``Module`` objects are cached per object identity.
    """

    def __init__(
        self,
        model: Union[str, Module],
        backend: str = "float",
        *,
        patch_size: Optional[int] = None,
        model_kwargs: Optional[Dict] = None,
        calibration: Optional[np.ndarray] = None,
        max_batch_size: int = 16,
        max_wait_s: float = 0.002,
        cache: Optional[BackendCache] = None,
        lower_kwargs: Optional[Dict] = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got '{backend}'")
        self.backend_name = backend
        self.cache = cache if cache is not None else get_default_cache()
        model_kwargs = dict(model_kwargs or {})
        if patch_size is not None:
            model_kwargs["patch_size"] = patch_size
        lower_kwargs = dict(lower_kwargs or {})

        if isinstance(model, str):
            self.architecture = model.lower()
            key = (model_cache_key(model, **model_kwargs), backend)

            def factory() -> Backend:
                built = build_model(self.architecture, **model_kwargs).eval()
                if backend == "float":
                    return build_float_backend(built)
                return build_int8_backend(built, calibration, **lower_kwargs)

        else:
            self.architecture = getattr(model, "name", type(model).__name__)
            # Key on the module object itself (identity hash): holding it in
            # the cache key pins the model alive, so a recycled id() can
            # never alias a dead model's cached backend.
            key = (("module", model), backend)

            def factory() -> Backend:
                if backend == "float":
                    return build_float_backend(model)
                return build_int8_backend(model, calibration, **lower_kwargs)

        self.cache_key = key
        self.backend: Backend = self.cache.get_or_build(key, factory)
        self.batcher = DynamicBatcher(
            self.backend.run,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            name=f"{self.architecture}-{backend}",
        )

    # ------------------------------------------------------------------ #
    # Inference API
    # ------------------------------------------------------------------ #
    @property
    def input_shape(self) -> Tuple[int, int]:
        return self.backend.input_shape

    @property
    def num_classes(self) -> int:
        return self.backend.num_classes

    def submit(self, window: np.ndarray) -> Future:
        """Asynchronously classify one ``(channels, samples)`` window.

        Returns a future resolving to the ``(num_classes,)`` logits row.
        """
        window = np.asarray(window, dtype=np.float64)
        if window.shape != self.input_shape:
            raise ValueError(
                f"expected a window of shape {self.input_shape}, got {window.shape}"
            )
        return self.batcher.submit(window)

    def infer(self, windows: Sequence[np.ndarray], timeout: Optional[float] = 60.0) -> np.ndarray:
        """Classify windows through the micro-batching path; returns logits.

        ``windows`` is ``(batch, channels, samples)`` (or a sequence of
        single windows); the result preserves input order.
        """
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim == 2:
            windows = windows[None, ...]
        futures = [self.submit(window) for window in windows]
        return np.stack([future.result(timeout=timeout) for future in futures])

    def predict(self, windows: Sequence[np.ndarray], timeout: Optional[float] = 60.0) -> np.ndarray:
        """Class indices for ``windows`` (micro-batched, order preserving)."""
        return np.argmax(self.infer(windows, timeout=timeout), axis=-1)

    def open_stream(
        self,
        slide: int,
        *,
        smoothing: int = 5,
        preprocessor: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> StreamSession:
        """A :class:`StreamSession` classifying through this server."""
        channels, samples = self.input_shape
        return StreamSession(
            self.predict,
            window=samples,
            slide=slide,
            num_channels=channels,
            preprocessor=preprocessor,
            smoothing=smoothing,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> ServerStats:
        return ServerStats(
            backend=self.backend_name,
            architecture=self.architecture,
            batcher=self.batcher.stats,
        )

    def close(self) -> None:
        """Drain pending requests and stop the batching worker."""
        self.batcher.close()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"InferenceServer(architecture='{self.architecture}', "
            f"backend='{self.backend_name}', input={self.input_shape})"
        )
