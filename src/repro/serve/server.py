"""The serving facade: one API over both inference engines.

:class:`InferenceServer` owns a :class:`~repro.serve.backends.Backend`, a
:class:`~repro.serve.batcher.DynamicBatcher` and (when ``num_workers > 1``)
a :class:`~repro.serve.pool.WorkerPool`, and exposes the call styles a
gesture-recognition service needs:

* ``submit(window, priority=..., deadline_s=...)`` — asynchronous
  single-window requests (the batcher aggregates concurrent callers into
  micro-batches, in priority order);
* ``infer(windows)`` / ``predict(windows)`` — synchronous batch inference
  routed through the same micro-batching path, at bulk (low) priority by
  default;
* ``infer_async(windows)`` + ``as_completed(futures)`` — the async-friendly
  bulk path: futures out, completion-order consumption in;
* ``open_stream(...)`` — a :class:`~repro.serve.stream.StreamSession` bound
  to this server, classifying at high priority so live streams preempt
  queued bulk scoring.

Backends are constructed through a process-wide cache keyed by
``(architecture, patch_size, backend, lowering variant)`` (plus the full
registry kwargs), so many concurrent sessions of the same deployed
architecture share one model/executor — the serving analogue of the deploy
toolchain's one-binary-many-inferences model — while int8 op-set variants
(LUT vs elementwise nonlinearities) stay distinct.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from concurrent.futures import as_completed as _as_completed
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..models.registry import build_model, model_cache_key
from ..nn.module import Module
from .backends import Backend, build_float_backend, build_int8_backend
from .batcher import BatcherStats, DynamicBatcher
from .pool import PoolStats, Priority, WorkerPool
from .stream import StreamSession

__all__ = ["BackendCache", "InferenceServer", "ServerStats", "get_default_cache"]

_BACKENDS = ("float", "int8")


class BackendCache:
    """LRU cache of constructed serving backends.

    Keys are ``(model_cache_key(architecture, **kwargs), backend,
    lowering variant)`` tuples: two servers asking for the same
    architecture / patch size / backend / lowering options get the *same*
    backend object (same weights, same quantisation constants, same op
    set).
    """

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Tuple, Backend]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get_or_build(self, key: Tuple, factory: Callable[[], Backend]) -> Backend:
        """Return the cached backend for ``key``, building it on first use."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
        # Build outside the lock (lowering can take a while); worst case two
        # threads build the same backend and the first insert wins.
        backend = factory()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self.hits += 1
                return existing
            self.misses += 1
            self._entries[key] = backend
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return backend

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop every cached backend and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


_DEFAULT_CACHE = BackendCache()


def get_default_cache() -> BackendCache:
    """The process-wide backend cache used when none is passed explicitly."""
    return _DEFAULT_CACHE


@dataclass(frozen=True)
class ServerStats:
    """Immutable snapshot of one :class:`InferenceServer`'s counters.

    ``batcher`` (and ``pool``, when workers are attached) are themselves
    frozen snapshots taken under their owners' locks, so holding a
    ``ServerStats`` never aliases live mutable counter state.
    """

    backend: str
    architecture: str
    batcher: BatcherStats
    pool: Optional[PoolStats] = None

    @property
    def requests(self) -> int:
        """Total windows served (across all priorities)."""
        return self.batcher.requests

    @property
    def batches(self) -> int:
        """Micro-batches the batcher formed."""
        return self.batcher.batches

    @property
    def by_priority(self) -> Mapping[int, int]:
        """Completed requests per priority level (lower = more urgent)."""
        return self.batcher.by_priority


class InferenceServer:
    """Serve sEMG gesture classification over a float or int8 backend.

    Parameters
    ----------
    model:
        Either a registry name (``"bio1"``, ``"bio2"``, ``"temponet"``) or an
        already constructed/trained :class:`~repro.nn.module.Module`.
    backend:
        ``"float"`` (direct ``repro.nn`` forward) or ``"int8"`` (lowered
        integer graph, the GAP8 numerics).
    patch_size:
        Bioformer front-end filter dimension; forwarded to the registry and
        part of the cache key.  Ignored for TEMPONet.
    model_kwargs:
        Extra registry arguments (``num_channels``, ``window_samples``,
        ``num_classes``, ``seed``, ...).
    calibration:
        Representative windows for int8 lowering (int8 backend only).
        Calibration is *not* part of the cache key; pass a dedicated
        ``cache`` when serving differently calibrated variants side by side.
    lower_kwargs:
        Extra :func:`~repro.deploy.lowering.lower_to_int8` arguments for the
        int8 backend (``use_lut``, ``use_gemm``, ``weight_bits``,
        ``activation_bits``, ...).  Pass ``lower_kwargs={"use_lut": False}``
        to serve the legacy elementwise nonlinearities instead of the LUT
        kernels, or ``{"use_gemm": False}`` to serve the per-op einsum MAC
        kernels instead of the im2col/GEMM path (both are cross-checking
        baselines; logits are bit-identical either way).  Unlike
        calibration, ``lower_kwargs`` *is* part of the cache key, so op-set
        variants of the same architecture are cached side by side.
    max_batch_size / max_wait_s:
        Micro-batching knobs (see :class:`~repro.serve.batcher.DynamicBatcher`).
    num_workers:
        Backend execution threads.  ``1`` (default) executes batches inline
        on the forming thread; ``> 1`` creates a private
        :class:`~repro.serve.pool.WorkerPool` so micro-batches run
        concurrently (both backends release the GIL in their BLAS kernels).
    pool:
        An externally owned :class:`~repro.serve.pool.WorkerPool` to execute
        on (e.g. one pool shared by several servers).  Mutually exclusive
        with ``num_workers > 1``; a borrowed pool is never closed by the
        server.
    cache:
        Backend cache to use; defaults to the process-wide cache.  Models
        passed as live ``Module`` objects are cached per object identity.
    """

    def __init__(
        self,
        model: Union[str, Module],
        backend: str = "float",
        *,
        patch_size: Optional[int] = None,
        model_kwargs: Optional[Dict] = None,
        calibration: Optional[np.ndarray] = None,
        max_batch_size: int = 16,
        max_wait_s: float = 0.002,
        num_workers: int = 1,
        pool: Optional[WorkerPool] = None,
        cache: Optional[BackendCache] = None,
        lower_kwargs: Optional[Dict] = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got '{backend}'")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if pool is not None and num_workers > 1:
            raise ValueError("pass either num_workers or an external pool, not both")
        self.backend_name = backend
        self.cache = cache if cache is not None else get_default_cache()
        model_kwargs = dict(model_kwargs or {})
        if patch_size is not None:
            model_kwargs["patch_size"] = patch_size
        lower_kwargs = dict(lower_kwargs or {})
        # Lowering options change the served numerics' implementation (LUT
        # vs elementwise op set, bit widths), so they are part of the cache
        # identity — unlike calibration data, which is not hashable.  The
        # key is normalised against the lowering defaults for the op-set
        # flags, so an explicit use_lut=True / use_gemm=True and the
        # defaults share one entry.
        lowering_variant: Tuple = ()
        if backend == "int8":
            effective = {"use_lut": True, "use_gemm": True, **lower_kwargs}
            lowering_variant = tuple(sorted(effective.items()))

        if isinstance(model, str):
            self.architecture = model.lower()
            key = (model_cache_key(model, **model_kwargs), backend, lowering_variant)

            def factory() -> Backend:
                built = build_model(self.architecture, **model_kwargs).eval()
                if backend == "float":
                    return build_float_backend(built)
                return build_int8_backend(built, calibration, **lower_kwargs)

        else:
            self.architecture = getattr(model, "name", type(model).__name__)
            # Key on the module object itself (identity hash): holding it in
            # the cache key pins the model alive, so a recycled id() can
            # never alias a dead model's cached backend.
            key = (("module", model), backend, lowering_variant)

            def factory() -> Backend:
                if backend == "float":
                    return build_float_backend(model)
                return build_int8_backend(model, calibration, **lower_kwargs)

        self.cache_key = key
        self.backend: Backend = self.cache.get_or_build(key, factory)
        self._owns_pool = pool is None and num_workers > 1
        self.pool = pool if pool is not None else (
            WorkerPool(num_workers, name=f"{self.architecture}-{backend}-pool")
            if num_workers > 1
            else None
        )
        try:
            self.batcher = DynamicBatcher(
                self.backend.run,
                max_batch_size=max_batch_size,
                max_wait_s=max_wait_s,
                name=f"{self.architecture}-{backend}",
                input_shape=self.backend.input_shape,
                pool=self.pool,
            )
        except BaseException:
            # Don't leak an owned pool's worker threads if the batcher
            # rejects its knobs.
            if self._owns_pool and self.pool is not None:
                self.pool.close(timeout=1.0)
            raise

    # ------------------------------------------------------------------ #
    # Inference API
    # ------------------------------------------------------------------ #
    @property
    def input_shape(self) -> Tuple[int, int]:
        """Expected per-window shape ``(channels, samples)``."""
        return self.backend.input_shape

    @property
    def num_classes(self) -> int:
        """Number of gesture classes in the logits."""
        return self.backend.num_classes

    def submit(
        self,
        window: np.ndarray,
        priority: int = Priority.NORMAL,
        deadline_s: Optional[float] = None,
    ) -> Future:
        """Asynchronously classify one ``(channels, samples)`` window.

        Returns a future resolving to the ``(num_classes,)`` logits row.
        ``priority`` orders batch formation (lower first); a request still
        queued after ``deadline_s`` seconds resolves with
        :class:`~repro.serve.pool.DeadlineExceeded`.
        """
        window = np.asarray(window, dtype=np.float64)
        if window.shape != self.input_shape:
            raise ValueError(
                f"expected a window of shape {self.input_shape}, got {window.shape}"
            )
        return self.batcher.submit(window, priority=priority, deadline_s=deadline_s)

    def infer_async(
        self,
        windows: Sequence[np.ndarray],
        priority: int = Priority.LOW,
        deadline_s: Optional[float] = None,
    ) -> List[Future]:
        """Submit ``windows`` without blocking; one future per window.

        The bulk-scoring companion of :meth:`submit`: defaults to
        :data:`Priority.LOW` so queued bulk work yields to live streams.
        Consume in submission order by iterating, or in completion order
        via :meth:`as_completed`.
        """
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim == 2:
            windows = windows[None, ...]
        return [
            self.submit(window, priority=priority, deadline_s=deadline_s)
            for window in windows
        ]

    @staticmethod
    def as_completed(
        futures: Iterable[Future], timeout: Optional[float] = None
    ) -> Iterator[Future]:
        """Yield ``futures`` as they finish (``concurrent.futures`` order)."""
        return _as_completed(futures, timeout=timeout)

    def infer(
        self,
        windows: Sequence[np.ndarray],
        timeout: Optional[float] = 60.0,
        priority: int = Priority.LOW,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Classify windows through the micro-batching path; returns logits.

        ``windows`` is ``(batch, channels, samples)`` (or a sequence of
        single windows); the result preserves input order.  Zero windows is
        a valid workload and yields an empty ``(0, num_classes)`` result.
        """
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim == 2:
            windows = windows[None, ...]
        if windows.shape[0] == 0:
            return np.empty((0, self.num_classes), dtype=np.float64)
        futures = self.infer_async(windows, priority=priority, deadline_s=deadline_s)
        return np.stack([future.result(timeout=timeout) for future in futures])

    def predict(
        self,
        windows: Sequence[np.ndarray],
        timeout: Optional[float] = 60.0,
        priority: int = Priority.LOW,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Class indices for ``windows`` (micro-batched, order preserving)."""
        logits = self.infer(windows, timeout=timeout, priority=priority, deadline_s=deadline_s)
        return np.argmax(logits, axis=-1)

    def open_stream(
        self,
        slide: int,
        *,
        smoothing: int = 5,
        preprocessor: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        priority: int = Priority.HIGH,
        deadline_s: Optional[float] = None,
    ) -> StreamSession:
        """A :class:`StreamSession` classifying through this server.

        Stream windows classify at ``priority`` (default
        :data:`Priority.HIGH`) so a live session's traffic is batched ahead
        of queued bulk :meth:`infer` scoring.
        """
        channels, samples = self.input_shape

        def classify(windows: np.ndarray) -> np.ndarray:
            return self.predict(windows, priority=priority, deadline_s=deadline_s)

        return StreamSession(
            classify,
            window=samples,
            slide=slide,
            num_channels=channels,
            preprocessor=preprocessor,
            smoothing=smoothing,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        """Backend execution threads (1 = inline on the forming thread)."""
        return self.pool.num_workers if self.pool is not None else 1

    @property
    def stats(self) -> ServerStats:
        """Frozen snapshot of the server's batcher (and pool) counters."""
        return ServerStats(
            backend=self.backend_name,
            architecture=self.architecture,
            batcher=self.batcher.stats,
            pool=self.pool.stats if self.pool is not None else None,
        )

    def close(self) -> None:
        """Drain pending requests and stop the batching worker (and pool)."""
        self.batcher.close()
        if self._owns_pool and self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"InferenceServer(architecture='{self.architecture}', "
            f"backend='{self.backend_name}', input={self.input_shape}, "
            f"workers={self.num_workers})"
        )
