"""The serving facade: one API over both inference engines.

:class:`InferenceServer` owns a :class:`~repro.serve.backends.Backend`, a
:class:`~repro.serve.batcher.DynamicBatcher` and (when ``num_workers > 1``)
a :class:`~repro.serve.pool.WorkerPool`, and exposes the call styles a
gesture-recognition service needs:

* ``submit(window, priority=..., deadline_s=...)`` — asynchronous
  single-window requests (the batcher aggregates concurrent callers into
  micro-batches, in priority order);
* ``infer(windows)`` / ``predict(windows)`` — synchronous batch inference
  routed through the same micro-batching path, at bulk (low) priority by
  default;
* ``infer_async(windows)`` + ``as_completed(futures)`` — the async-friendly
  bulk path: futures out, completion-order consumption in;
* ``open_stream(...)`` — a :class:`~repro.serve.stream.StreamSession` bound
  to this server, classifying at high priority so live streams preempt
  queued bulk scoring.

The dispatch path is fault-tolerant (see :mod:`repro.serve.faults`):
inputs are validated at admission (non-finite samples, unsafe dtypes and
wrong geometry fail fast with ``ValueError``), backend calls can be
retried under a :class:`~repro.serve.faults.RetryPolicy` (retryable
faults only, within the request deadline), a
:class:`~repro.serve.faults.CircuitBreaker` stops hammering a failing
backend, and an open int8 circuit can degrade to the float backend —
answers served by the fallback are flagged with
:class:`~repro.serve.faults.DegradedLogits`.  ``server.health()``
aggregates breaker states, worker restarts, shed/retry counters and queue
depth into one frozen snapshot.

Backends are constructed through a process-wide cache keyed by
``(architecture, patch_size, backend, lowering variant)`` (plus the full
registry kwargs), so many concurrent sessions of the same deployed
architecture share one model/executor — the serving analogue of the deploy
toolchain's one-binary-many-inferences model — while int8 op-set variants
(LUT vs elementwise nonlinearities) stay distinct.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from concurrent.futures import as_completed as _as_completed
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..models.registry import build_model, model_cache_key
from ..nn.module import Module
from .backends import Backend, build_float_backend, build_int8_backend
from .batcher import BatcherStats, DynamicBatcher
from .faults import (
    BackendError,
    CircuitBreaker,
    CircuitOpen,
    DegradedLogits,
    HealthMonitor,
    HealthSnapshot,
    RetryExhausted,
    RetryPolicy,
    ServingError,
    WorkerCrash,
)
from .pool import PoolStats, Priority, WorkerPool
from .stream import StreamSession

__all__ = [
    "BackendCache",
    "CacheStats",
    "InferenceServer",
    "ServerStats",
    "get_default_cache",
]

_BACKENDS = ("float", "int8")


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a :class:`BackendCache`'s counters."""

    entries: int
    max_entries: int
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BackendCache:
    """LRU cache of constructed serving backends.

    Keys are ``(model_cache_key(architecture, **kwargs), backend,
    lowering variant)`` tuples: two servers asking for the same
    architecture / patch size / backend / lowering options get the *same*
    backend object (same weights, same quantisation constants, same op
    set).
    """

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Tuple, Backend]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_build(self, key: Tuple, factory: Callable[[], Backend]) -> Backend:
        """Return the cached backend for ``key``, building it on first use."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
        # Build outside the lock (lowering can take a while); worst case two
        # threads build the same backend and the first insert wins.
        backend = factory()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self.hits += 1
                return existing
            self.misses += 1
            self._entries[key] = backend
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            return backend

    @property
    def stats(self) -> CacheStats:
        """Frozen snapshot of the cache's occupancy and counters."""
        with self._lock:
            return CacheStats(
                entries=len(self._entries),
                max_entries=self.max_entries,
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop every cached backend and reset every counter."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0


_DEFAULT_CACHE = BackendCache()


def get_default_cache() -> BackendCache:
    """The process-wide backend cache used when none is passed explicitly."""
    return _DEFAULT_CACHE


@dataclass(frozen=True)
class ServerStats:
    """Immutable snapshot of one :class:`InferenceServer`'s counters.

    ``batcher`` (and ``pool``, when workers are attached) are themselves
    frozen snapshots taken under their owners' locks, so holding a
    ``ServerStats`` never aliases live mutable counter state.
    """

    backend: str
    architecture: str
    batcher: BatcherStats
    pool: Optional[PoolStats] = None
    retries: int = 0
    degraded: int = 0

    @property
    def requests(self) -> int:
        """Total windows served (across all priorities)."""
        return self.batcher.requests

    @property
    def batches(self) -> int:
        """Micro-batches the batcher formed."""
        return self.batcher.batches

    @property
    def by_priority(self) -> Mapping[int, int]:
        """Completed requests per priority level (lower = more urgent)."""
        return self.batcher.by_priority


class InferenceServer:
    """Serve sEMG gesture classification over a float or int8 backend.

    Parameters
    ----------
    model:
        Either a registry name (``"bio1"``, ``"bio2"``, ``"temponet"``) or an
        already constructed/trained :class:`~repro.nn.module.Module`.
    backend:
        ``"float"`` (direct ``repro.nn`` forward) or ``"int8"`` (lowered
        integer graph, the GAP8 numerics).
    patch_size:
        Bioformer front-end filter dimension; forwarded to the registry and
        part of the cache key.  Ignored for TEMPONet.
    model_kwargs:
        Extra registry arguments (``num_channels``, ``window_samples``,
        ``num_classes``, ``seed``, ...).
    calibration:
        Representative windows for int8 lowering (int8 backend only).
        Calibration is *not* part of the cache key; pass a dedicated
        ``cache`` when serving differently calibrated variants side by side.
    lower_kwargs:
        Extra :func:`~repro.deploy.lowering.lower_to_int8` arguments for the
        int8 backend (``use_lut``, ``use_gemm``, ``weight_bits``,
        ``activation_bits``, ...).  Pass ``lower_kwargs={"use_lut": False}``
        to serve the legacy elementwise nonlinearities instead of the LUT
        kernels, or ``{"use_gemm": False}`` to serve the per-op einsum MAC
        kernels instead of the im2col/GEMM path (both are cross-checking
        baselines; logits are bit-identical either way).  Unlike
        calibration, ``lower_kwargs`` *is* part of the cache key, so op-set
        variants of the same architecture are cached side by side.
    max_batch_size / max_wait_s:
        Micro-batching knobs (see :class:`~repro.serve.batcher.DynamicBatcher`).
    num_workers:
        Backend execution threads.  ``1`` (default) executes batches inline
        on the forming thread; ``> 1`` creates a private
        :class:`~repro.serve.pool.WorkerPool` so micro-batches run
        concurrently (both backends release the GIL in their BLAS kernels).
    pool:
        An externally owned :class:`~repro.serve.pool.WorkerPool` to execute
        on (e.g. one pool shared by several servers).  Mutually exclusive
        with ``num_workers > 1``; a borrowed pool is never closed by the
        server.
    cache:
        Backend cache to use; defaults to the process-wide cache.  Models
        passed as live ``Module`` objects are cached per object identity.
    job_timeout_s:
        Soft per-batch timeout for an *owned* pool: a batch stuck past
        this budget fails with :class:`~repro.serve.faults.BackendTimeout`
        and its worker is abandoned/respawned.  Ignored for borrowed pools
        (their owner configures supervision).
    retry_policy:
        Optional :class:`~repro.serve.faults.RetryPolicy`.  Retryable
        backend faults (and non-finite logits) are re-attempted with
        deterministic backoff — but never past the earliest deadline in
        the batch.  ``None`` (default) disables retries.
    circuit_breaker:
        ``True`` for a default :class:`~repro.serve.faults.CircuitBreaker`,
        or a preconfigured instance (e.g. with a custom clock or error-rate
        threshold).  ``None``/``False`` (default) disables breaking.
    fallback:
        ``True`` (int8 backend only) builds the float backend of the same
        model as a degradation target: when the int8 circuit is open or
        retries are exhausted, requests are answered by the float backend
        instead of failing, flagged as
        :class:`~repro.serve.faults.DegradedLogits`.
    max_queue_depth:
        Admission-control bound forwarded to the batcher: beyond this many
        queued requests, LOW-priority traffic is shed first and
        outranked submissions are rejected with
        :class:`~repro.serve.faults.Overloaded` instead of queueing
        without bound.
    validate_inputs:
        Reject non-finite (NaN/Inf) windows at :meth:`submit`/:meth:`infer`
        with a ``ValueError`` before they reach quantization.  Geometry and
        dtype are always validated.
    backend_wrapper:
        Callable applied to the constructed backend before serving —
        the seam the fault-injection harness uses
        (``backend_wrapper=lambda b: FaultInjectingBackend(b, schedule)``).
        The wrapper is private to this server; the cache keeps the clean
        backend.
    """

    def __init__(
        self,
        model: Union[str, Module],
        backend: str = "float",
        *,
        patch_size: Optional[int] = None,
        model_kwargs: Optional[Dict] = None,
        calibration: Optional[np.ndarray] = None,
        max_batch_size: int = 16,
        max_wait_s: float = 0.002,
        num_workers: int = 1,
        pool: Optional[WorkerPool] = None,
        cache: Optional[BackendCache] = None,
        lower_kwargs: Optional[Dict] = None,
        job_timeout_s: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        circuit_breaker: Union[CircuitBreaker, bool, None] = None,
        fallback: bool = False,
        max_queue_depth: Optional[int] = None,
        validate_inputs: bool = True,
        backend_wrapper: Optional[Callable[[Backend], Backend]] = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got '{backend}'")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if pool is not None and num_workers > 1:
            raise ValueError("pass either num_workers or an external pool, not both")
        if fallback and backend != "int8":
            raise ValueError("fallback degradation requires backend='int8'")
        self.backend_name = backend
        self.cache = cache if cache is not None else get_default_cache()
        self.validate_inputs = bool(validate_inputs)
        model_kwargs = dict(model_kwargs or {})
        if patch_size is not None:
            model_kwargs["patch_size"] = patch_size
        lower_kwargs = dict(lower_kwargs or {})
        # Lowering options change the served numerics' implementation (LUT
        # vs elementwise op set, bit widths, fused vs unfused schedule), so
        # they are part of the cache identity — unlike calibration data,
        # which is not hashable.  The key is normalised against the lowering
        # defaults for the op-set flags, so an explicit use_lut=True /
        # use_gemm=True / optimize=False and the defaults share one entry.
        lowering_variant: Tuple = ()
        if backend == "int8":
            effective = {
                "use_lut": True,
                "use_gemm": True,
                "optimize": False,
                **lower_kwargs,
            }
            lowering_variant = tuple(sorted(effective.items()))

        if isinstance(model, str):
            self.architecture = model.lower()
            key = (model_cache_key(model, **model_kwargs), backend, lowering_variant)
            fallback_key = (model_cache_key(model, **model_kwargs), "float", ())

            def factory() -> Backend:
                built = build_model(self.architecture, **model_kwargs).eval()
                if backend == "float":
                    return build_float_backend(built)
                return build_int8_backend(built, calibration, **lower_kwargs)

            def fallback_factory() -> Backend:
                built = build_model(self.architecture, **model_kwargs).eval()
                return build_float_backend(built)

        else:
            self.architecture = getattr(model, "name", type(model).__name__)
            # Key on the module object itself (identity hash): holding it in
            # the cache key pins the model alive, so a recycled id() can
            # never alias a dead model's cached backend.
            key = (("module", model), backend, lowering_variant)
            fallback_key = (("module", model), "float", ())

            def factory() -> Backend:
                if backend == "float":
                    return build_float_backend(model)
                return build_int8_backend(model, calibration, **lower_kwargs)

            def fallback_factory() -> Backend:
                return build_float_backend(model)

        self.cache_key = key
        self.backend: Backend = self.cache.get_or_build(key, factory)
        # The dispatch target: the cached backend, optionally wrapped (the
        # wrapper — e.g. a FaultInjectingBackend — stays private to this
        # server; the cache keeps the clean backend).
        self._primary: Backend = (
            backend_wrapper(self.backend) if backend_wrapper is not None else self.backend
        )
        self._fallback: Optional[Backend] = (
            self.cache.get_or_build(fallback_key, fallback_factory) if fallback else None
        )
        self.retry_policy = retry_policy
        if circuit_breaker is True:
            self.breaker: Optional[CircuitBreaker] = CircuitBreaker(
                name=f"{self.architecture}-{backend}"
            )
        elif isinstance(circuit_breaker, CircuitBreaker):
            self.breaker = circuit_breaker
        else:
            self.breaker = None
        self._counter_lock = threading.Lock()
        self._retries = 0
        self._degraded = 0
        self._session_manager = None
        self._owns_pool = pool is None and num_workers > 1
        self.pool = pool if pool is not None else (
            WorkerPool(
                num_workers,
                name=f"{self.architecture}-{backend}-pool",
                job_timeout_s=job_timeout_s,
            )
            if num_workers > 1
            else None
        )
        try:
            self.batcher = DynamicBatcher(
                self._run_batch,
                max_batch_size=max_batch_size,
                max_wait_s=max_wait_s,
                name=f"{self.architecture}-{backend}",
                input_shape=self.backend.input_shape,
                pool=self.pool,
                max_queue_depth=max_queue_depth,
                pass_deadline=True,
            )
        except BaseException:
            # Don't leak an owned pool's worker threads if the batcher
            # rejects its knobs.
            if self._owns_pool and self.pool is not None:
                self.pool.close(timeout=1.0)
            raise
        self._health = HealthMonitor()
        self._health.register(
            "breakers",
            lambda: tuple(b.snapshot() for b in ((self.breaker,) if self.breaker else ())),
        )
        self._health.register("queue_depth", lambda: self.batcher.queue_depth)
        self._health.register("shed", lambda: self.batcher.stats.shed)
        self._health.register("rejected", lambda: self.batcher.stats.rejected)
        self._health.register("expired", lambda: self.batcher.stats.expired)
        self._health.register("retries", lambda: self._retries)
        self._health.register("degraded_requests", lambda: self._degraded)
        self._health.register(
            "worker_restarts",
            lambda: self.pool.stats.restarts if self.pool is not None else 0,
        )
        self._health.register(
            "worker_timeouts",
            lambda: self.pool.stats.timeouts if self.pool is not None else 0,
        )
        self._health.register(
            "workers_alive",
            lambda: self.pool.alive_workers if self.pool is not None else 1,
        )
        self._health.register("workers_total", lambda: self.num_workers)

    # ------------------------------------------------------------------ #
    # Fault-tolerant dispatch (runs on the forming thread or pool workers)
    # ------------------------------------------------------------------ #
    def _run_batch(
        self, stacked: np.ndarray, deadline: Optional[float] = None
    ) -> np.ndarray:
        """Execute one micro-batch with retry/breaker/degradation semantics.

        ``deadline`` is the earliest absolute deadline among the batch's
        requests (from the batcher) — retries never sleep past it.
        """
        breaker = self.breaker
        policy = self.retry_policy
        if breaker is not None and not breaker.allow():
            return self._degrade_or_raise(
                stacked,
                CircuitOpen(
                    f"{self.architecture}-{self.backend_name}: circuit open, "
                    f"call not attempted"
                ),
            )
        attempts = 0
        while True:
            attempts += 1
            try:
                out = np.asarray(self._primary.run(stacked), dtype=np.float64)
                if not np.all(np.isfinite(out)):
                    raise BackendError(
                        f"{self.backend_name} backend produced non-finite logits",
                        retryable=True,
                    )
            except BaseException as error:  # noqa: BLE001 — classified below
                if breaker is not None:
                    breaker.record_failure()
                if isinstance(error, WorkerCrash):
                    # A crash takes the executing thread down with it — a
                    # retry loop running *on* that thread would not survive
                    # a real native crash, so propagate immediately: the
                    # batcher resolves the batch's futures with the typed
                    # error and lets the pool worker die for supervision to
                    # respawn.
                    raise
                if isinstance(error, ServingError):
                    wrapped: BaseException = error
                elif isinstance(error, TimeoutError):
                    wrapped = BackendError(str(error), retryable=True)
                    wrapped.__cause__ = error
                else:
                    wrapped = BackendError(
                        f"{type(error).__name__}: {error}", retryable=False
                    )
                    wrapped.__cause__ = error
                retry = (
                    policy is not None
                    and attempts < policy.max_attempts
                    and policy.retryable(wrapped)
                )
                delay = policy.delay_s(attempts) if retry else 0.0
                if retry and deadline is not None and time.monotonic() + delay >= deadline:
                    retry = False  # the batch cannot make its deadline anyway
                if not retry:
                    if policy is not None and attempts > 1:
                        wrapped = RetryExhausted(
                            f"{attempts} attempt(s) failed; last: {wrapped}",
                            last_error=wrapped,
                            attempts=attempts,
                        )
                    return self._degrade_or_raise(stacked, wrapped)
                with self._counter_lock:
                    self._retries += 1
                time.sleep(delay)
            else:
                if breaker is not None:
                    breaker.record_success()
                return out

    def _degrade_or_raise(
        self, stacked: np.ndarray, error: BaseException
    ) -> np.ndarray:
        """Answer from the fallback backend, or raise the typed error."""
        if self._fallback is None:
            raise error
        out = np.asarray(self._fallback.run(stacked), dtype=np.float64)
        with self._counter_lock:
            self._degraded += int(stacked.shape[0])
        return DegradedLogits.wrap(out)

    # ------------------------------------------------------------------ #
    # Input validation
    # ------------------------------------------------------------------ #
    def _validate_window(self, window: np.ndarray) -> np.ndarray:
        """Admission-time validation: dtype, geometry, finiteness."""
        arr = np.asarray(window)
        if arr.dtype == object or not np.can_cast(arr.dtype, np.float64):
            raise ValueError(
                f"window dtype {arr.dtype} cannot be safely cast to float64"
            )
        arr = np.asarray(arr, dtype=np.float64)
        if arr.shape != self.input_shape:
            channels = self.input_shape[0]
            if arr.ndim == 2 and arr.shape[0] != channels:
                raise ValueError(
                    f"window has {arr.shape[0]} channel(s), expected {channels}: "
                    f"expected a window of shape {self.input_shape}, got {arr.shape}"
                )
            raise ValueError(
                f"expected a window of shape {self.input_shape}, got {arr.shape}"
            )
        if self.validate_inputs and not np.all(np.isfinite(arr)):
            raise ValueError(
                "window contains non-finite (NaN/Inf) samples; refusing to "
                "quantize/classify it"
            )
        return arr

    # ------------------------------------------------------------------ #
    # Inference API
    # ------------------------------------------------------------------ #
    @property
    def input_shape(self) -> Tuple[int, int]:
        """Expected per-window shape ``(channels, samples)``."""
        return self.backend.input_shape

    @property
    def num_classes(self) -> int:
        """Number of gesture classes in the logits."""
        return self.backend.num_classes

    def submit(
        self,
        window: np.ndarray,
        priority: int = Priority.NORMAL,
        deadline_s: Optional[float] = None,
    ) -> Future:
        """Asynchronously classify one ``(channels, samples)`` window.

        Returns a future resolving to the ``(num_classes,)`` logits row.
        ``priority`` orders batch formation (lower first); a request still
        queued after ``deadline_s`` seconds resolves with
        :class:`~repro.serve.pool.DeadlineExceeded`.  Invalid input —
        wrong geometry, a dtype that cannot cast safely to float64, or
        non-finite samples — raises ``ValueError`` here, before the
        request reaches the queue or the quantizer.  Under admission
        control a full queue raises
        :class:`~repro.serve.faults.Overloaded` synchronously.
        """
        window = self._validate_window(window)
        return self.batcher.submit(window, priority=priority, deadline_s=deadline_s)

    def infer_async(
        self,
        windows: Sequence[np.ndarray],
        priority: int = Priority.LOW,
        deadline_s: Optional[float] = None,
    ) -> List[Future]:
        """Submit ``windows`` without blocking; one future per window.

        The bulk-scoring companion of :meth:`submit`: defaults to
        :data:`Priority.LOW` so queued bulk work yields to live streams.
        Consume in submission order by iterating, or in completion order
        via :meth:`as_completed`.  Every window passes the same admission
        validation as :meth:`submit`.
        """
        stacked = np.asanyarray(windows)
        if stacked.dtype != object and stacked.ndim == 2:
            stacked = stacked[None, ...]
        return [
            self.submit(window, priority=priority, deadline_s=deadline_s)
            for window in stacked
        ]

    @staticmethod
    def as_completed(
        futures: Iterable[Future], timeout: Optional[float] = None
    ) -> Iterator[Future]:
        """Yield ``futures`` as they finish (``concurrent.futures`` order)."""
        return _as_completed(futures, timeout=timeout)

    def infer(
        self,
        windows: Sequence[np.ndarray],
        timeout: Optional[float] = 60.0,
        priority: int = Priority.LOW,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Classify windows through the micro-batching path; returns logits.

        ``windows`` is ``(batch, channels, samples)`` (or a sequence of
        single windows); the result preserves input order.  Zero windows is
        a valid workload and yields an empty ``(0, num_classes)`` result.
        """
        stacked = np.asanyarray(windows)
        if len(stacked) == 0:
            return np.empty((0, self.num_classes), dtype=np.float64)
        futures = self.infer_async(stacked, priority=priority, deadline_s=deadline_s)
        rows = [future.result(timeout=timeout) for future in futures]
        out = np.stack(rows)
        if any(getattr(row, "degraded", False) for row in rows):
            # np.stack drops ndarray subclasses; restore the fallback flag
            # if any row was answered by the degraded path.
            out = DegradedLogits.wrap(out)
        return out

    def predict(
        self,
        windows: Sequence[np.ndarray],
        timeout: Optional[float] = 60.0,
        priority: int = Priority.LOW,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Class indices for ``windows`` (micro-batched, order preserving)."""
        logits = self.infer(windows, timeout=timeout, priority=priority, deadline_s=deadline_s)
        return np.argmax(logits, axis=-1)

    def open_stream(
        self,
        slide: int,
        *,
        smoothing: int = 5,
        preprocessor: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        priority: int = Priority.HIGH,
        deadline_s: Optional[float] = None,
    ) -> StreamSession:
        """A :class:`StreamSession` classifying through this server.

        Stream windows classify at ``priority`` (default
        :data:`Priority.HIGH`) so a live session's traffic is batched ahead
        of queued bulk :meth:`infer` scoring.
        """
        channels, samples = self.input_shape

        def classify(windows: np.ndarray) -> np.ndarray:
            return self.predict(windows, priority=priority, deadline_s=deadline_s)

        return StreamSession(
            classify,
            window=samples,
            slide=slide,
            num_channels=channels,
            preprocessor=preprocessor,
            smoothing=smoothing,
        )

    def open_session_manager(self, **kwargs) -> "SessionManager":
        """A :class:`~repro.serve.sessions.SessionManager` over this server.

        The fleet layer above :meth:`open_stream`: managed sessions get
        ids, idle-TTL reaping, per-tenant quotas/eviction and bitwise
        checkpoint/restore (see :mod:`repro.serve.sessions`).  The
        manager's stats surface through :meth:`health` as
        ``snapshot.sessions``, and :meth:`close` drains it (settling
        in-flight chunks and tombstoning final checkpoints) before the
        batcher stops.  At most one live manager per server.
        """
        from .sessions import SessionManager

        return SessionManager(self, **kwargs)

    def _attach_session_manager(self, manager) -> None:
        """Register ``manager`` as this server's session owner."""
        if self._session_manager is not None and not self._session_manager.closed:
            raise RuntimeError(
                "this server already has a live session manager; close it first"
            )
        self._session_manager = manager
        self._health.register("sessions", lambda: manager.stats)

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    @property
    def num_workers(self) -> int:
        """Backend execution threads (1 = inline on the forming thread)."""
        return self.pool.num_workers if self.pool is not None else 1

    @property
    def stats(self) -> ServerStats:
        """Frozen snapshot of the server's batcher (and pool) counters."""
        with self._counter_lock:
            retries, degraded = self._retries, self._degraded
        return ServerStats(
            backend=self.backend_name,
            architecture=self.architecture,
            batcher=self.batcher.stats,
            pool=self.pool.stats if self.pool is not None else None,
            retries=retries,
            degraded=degraded,
        )

    def health(self) -> HealthSnapshot:
        """One frozen health snapshot: breakers, workers, shedding, depth.

        ``status`` is ``"ok"`` when every breaker is closed, nothing was
        degraded and no worker restarted; ``"degraded"`` otherwise.  The
        component fields carry the detail (see
        :class:`~repro.serve.faults.HealthSnapshot`).
        """
        return self._health.snapshot()

    def close(self) -> None:
        """Drain pending requests and stop the batching worker (and pool).

        An attached session manager is drained *first* — its in-flight
        chunks still need the batcher — so every managed session settles
        and leaves a final checkpoint before serving stops.
        """
        if self._session_manager is not None:
            self._session_manager.close()
        self.batcher.close()
        if self._owns_pool and self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"InferenceServer(architecture='{self.architecture}', "
            f"backend='{self.backend_name}', input={self.input_shape}, "
            f"workers={self.num_workers})"
        )
