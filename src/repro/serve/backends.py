"""Serving backends: one protocol, two execution engines.

A backend turns a stacked ``(batch, channels, samples)`` window array into
``(batch, num_classes)`` float logits.  Two implementations cover the two
inference paths the repository already validates end-to-end:

* :class:`FloatBackend` — the trained :mod:`repro.nn` model run directly
  under :class:`repro.nn.inference_mode` (no autograd graph).  Bit-for-bit
  identical to ``model(Tensor(x))``.
* :class:`Int8Backend` — the lowered :class:`~repro.deploy.lowering.QuantizedGraph`
  replayed by :class:`~repro.deploy.int_engine.IntegerGraphExecutor`, i.e.
  the GAP8 integer numerics.  Its logits are the dequantised int8 grid, so
  serving accuracy equals the deployment-report accuracy.  By default the
  executor runs the I-BERT GELU/softmax nonlinearities through precomputed
  lookup tables (bit-identical to the elementwise kernels, measurably
  faster on batched serving); ``use_lut=False`` keeps the legacy
  elementwise path for cross-checking.

Both expose the same :class:`Backend` protocol, which is what
:class:`repro.serve.server.InferenceServer` and the
:class:`~repro.serve.batcher.DynamicBatcher` consume — later backends
(sharded, multi-process, remote) only need to implement ``run``.  The
protocol is also the seam the fault-tolerance layer composes through:
:class:`repro.serve.faults.FaultInjectingBackend` wraps any backend to
inject scheduled faults (via the server's ``backend_wrapper`` hook), and
dispatch-level retries, circuit breaking and int8→float degradation all
operate on ``run`` calls without the backends knowing.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from ..deploy.int_engine import IntegerGraphExecutor
from ..deploy.lowering import QuantizedGraph, lower_to_int8
from ..deploy.tracers import trace_model
from ..nn.module import Module
from ..nn.tensor import inference_mode

__all__ = [
    "Backend",
    "FloatBackend",
    "Int8Backend",
    "build_float_backend",
    "build_int8_backend",
]


@runtime_checkable
class Backend(Protocol):
    """Anything that classifies a stacked batch of sEMG windows."""

    name: str

    @property
    def input_shape(self) -> Tuple[int, int]:
        """Expected per-window shape ``(channels, samples)``."""
        ...

    @property
    def num_classes(self) -> int:
        """Number of gesture classes in the logits."""
        ...

    def run(self, windows: np.ndarray) -> np.ndarray:
        """Map ``(batch, channels, samples)`` windows to float logits."""
        ...

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Class indices (argmax over :meth:`run`)."""
        ...


def _model_geometry(model: Module) -> Tuple[int, int, int]:
    cfg = model.config
    return int(cfg.num_channels), int(cfg.window_samples), int(cfg.num_classes)


class FloatBackend:
    """Direct ``repro.nn`` forward pass in evaluation mode, no autograd."""

    name = "float"

    def __init__(self, model: Module) -> None:
        self.model = model.eval()
        self._channels, self._samples, self._classes = _model_geometry(model)

    @property
    def input_shape(self) -> Tuple[int, int]:
        """Expected per-window shape ``(channels, samples)``."""
        return (self._channels, self._samples)

    @property
    def num_classes(self) -> int:
        """Number of gesture classes in the logits."""
        return self._classes

    def run(self, windows: np.ndarray) -> np.ndarray:
        """Float logits for ``(batch, channels, samples)`` windows."""
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim == 2:
            windows = windows[None, ...]
        with inference_mode():
            return self.model(windows).data

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Class indices (argmax over :meth:`run`)."""
        return np.argmax(self.run(windows), axis=-1)

    def __repr__(self) -> str:
        return f"FloatBackend({type(self.model).__name__}, input={self.input_shape})"


class Int8Backend:
    """Integer-only replay of a lowered graph (the on-target numerics).

    ``use_lut=None`` (default) executes the nonlinearities through the
    lookup tables carried by the lowered graph, when present; ``False``
    forces the legacy elementwise I-BERT kernels.  ``use_gemm=None``
    (default) runs conv1d/linear/matmul as im2col + one integer GEMM per
    node across the whole micro-batch; ``False`` keeps the per-op einsum
    kernels.  Outputs are bit-identical under every flag combination —
    integer arithmetic is exact, so only the schedule changes.
    """

    name = "int8"

    def __init__(
        self,
        quantized: QuantizedGraph,
        use_lut: Optional[bool] = None,
        use_gemm: Optional[bool] = None,
    ) -> None:
        self.quantized = quantized
        self.executor = IntegerGraphExecutor(quantized, use_lut=use_lut, use_gemm=use_gemm)
        graph = quantized.graph
        self._input_shape = tuple(int(size) for size in graph.graph_input.shape)
        self._classes = int(graph.output.shape[-1])

    @property
    def input_shape(self) -> Tuple[int, int]:
        """Expected per-window shape ``(channels, samples)``."""
        return self._input_shape  # type: ignore[return-value]

    @property
    def num_classes(self) -> int:
        """Number of gesture classes in the logits."""
        return self._classes

    @property
    def uses_lut(self) -> bool:
        """Whether the nonlinearities execute through lookup tables."""
        return self.executor.uses_luts

    @property
    def uses_gemm(self) -> bool:
        """Whether the MAC ops execute through the im2col/GEMM path."""
        return self.executor.use_gemm

    def run(self, windows: np.ndarray) -> np.ndarray:
        """Dequantised float logits for ``(batch, channels, samples)`` windows."""
        return self.executor.run(windows)

    def run_integer(self, windows: np.ndarray) -> np.ndarray:
        """The raw int8-grid logits (what the MCU would emit)."""
        return self.executor.run_integer(windows)

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Class indices of the integer-only inference path."""
        return self.executor.predict(windows)

    def __repr__(self) -> str:
        return (
            f"Int8Backend(graph='{self.quantized.graph.name}', "
            f"input={self.input_shape}, lut={self.uses_lut}, gemm={self.uses_gemm})"
        )


def build_float_backend(model: Module) -> FloatBackend:
    """Wrap a trained model as a serving backend (evaluation mode)."""
    return FloatBackend(model)


def build_int8_backend(
    model: Module,
    calibration: Optional[np.ndarray] = None,
    *,
    calibration_batch: int = 16,
    seed: int = 0,
    use_lut: bool = True,
    use_gemm: bool = True,
    optimize: bool = False,
    **lower_kwargs,
) -> Int8Backend:
    """Trace, calibrate and lower ``model``, then wrap the integer engine.

    ``calibration`` should be representative ``(batch, channels, samples)``
    windows; when omitted, a deterministic standard-normal batch is used
    (adequate for the synthetic data distribution, and reproducible so the
    backend cache stays consistent across processes).

    ``use_lut`` selects the nonlinearity op set: ``True`` (default) lowers
    the I-BERT GELU/softmax into precomputed lookup tables and executes them
    as a single gather; ``False`` keeps the legacy elementwise kernels.
    ``use_gemm`` selects the MAC op set: ``True`` (default) runs
    conv1d/linear/matmul through im2col + a single integer GEMM per node;
    ``False`` keeps the per-op einsum kernels.  All combinations produce
    bit-identical logits — the flags exist so each path can cross-check the
    other.  The lowered graph always carries the GEMM tile metadata, so the
    flag only routes execution.

    ``optimize`` runs the deploy compiler's optimization passes (requant
    folding, conv→pool fusion, dead-node elimination — see
    :mod:`repro.deploy.passes`) on the lowered graph before serving: fewer
    kernel dispatches per request, bitwise-identical logits.  Remaining
    ``lower_kwargs`` (``weight_bits=...``, ``config=...``, ...) forward to
    :func:`~repro.deploy.lowering.lower_to_int8` and participate in the
    ``BackendCache`` key.
    """
    graph = trace_model(model.eval())
    if calibration is None:
        rng = np.random.default_rng(seed)
        channels, samples, _ = _model_geometry(model)
        calibration = rng.normal(size=(calibration_batch, channels, samples))
    quantized = lower_to_int8(
        graph,
        np.asarray(calibration, dtype=np.float64),
        use_lut=use_lut,
        optimize=optimize,
        **lower_kwargs,
    )
    return Int8Backend(quantized, use_lut=use_lut, use_gemm=use_gemm)
