"""``repro.serve`` — streaming inference service with priority-aware
multi-worker micro-batching.

The deployment toolchain (:mod:`repro.deploy`) produces models that run on
an MCU; this package serves the same models as an online service, which is
the other half of the paper's real-time scenario and the seam every later
scaling PR (sharding, remote backends) plugs into:

* :mod:`repro.serve.backends` — the :class:`Backend` protocol plus the
  float (``repro.nn`` forward) and int8 (integer graph executor)
  implementations;
* :mod:`repro.serve.pool` — the request model (:class:`Priority`,
  :class:`DeadlineExceeded`) and :class:`WorkerPool`, ``N`` threads
  executing formed micro-batches concurrently;
* :mod:`repro.serve.batcher` — :class:`DynamicBatcher`, aggregating
  concurrent single-window requests into bounded micro-batches from a
  priority queue (high-priority streams preempt queued bulk scoring,
  expired requests resolve with :class:`DeadlineExceeded`, and one
  malformed request can never poison its batch-mates);
* :mod:`repro.serve.stream` — :class:`StreamSession`, raw-signal streaming
  with overlapping windows and majority-vote label smoothing;
* :mod:`repro.serve.sessions` — :class:`SessionManager`, the fleet layer
  owning every live session: lifecycle by session id, idle-TTL reaping,
  per-tenant quotas and eviction, versioned bitwise
  :class:`SessionCheckpoint` snapshots, and degraded-electrode masking;
* :mod:`repro.serve.server` — the :class:`InferenceServer` facade
  (sync ``infer``/``predict``, async ``submit``/``infer_async``/
  ``as_completed``, high-priority ``open_stream``,
  ``open_session_manager``) and the process-wide backend cache.
"""

from .backends import (
    Backend,
    FloatBackend,
    Int8Backend,
    build_float_backend,
    build_int8_backend,
)
from .batcher import BatcherStats, DynamicBatcher
from .faults import (
    BackendError,
    BackendTimeout,
    BreakerSnapshot,
    CircuitBreaker,
    CircuitOpen,
    DegradedLogits,
    FaultInjectingBackend,
    Hang,
    HealthMonitor,
    HealthSnapshot,
    InjectError,
    LatencySpike,
    NaNOutput,
    Overloaded,
    QuotaExceeded,
    RetryExhausted,
    RetryPolicy,
    ServingError,
    SessionEvicted,
    WorkerCrash,
)
from .pool import DeadlineExceeded, PoolStats, Priority, WorkerPool
from .server import (
    BackendCache,
    CacheStats,
    InferenceServer,
    ServerStats,
    get_default_cache,
)
from .sessions import (
    SESSION_CHECKPOINT_VERSION,
    ManagedSession,
    SessionCheckpoint,
    SessionManager,
    SessionManagerStats,
    TenantStats,
    restore_stream_session,
)
from .stream import MajorityVoter, StreamDecision, StreamSession

__all__ = [
    "Backend",
    "FloatBackend",
    "Int8Backend",
    "build_float_backend",
    "build_int8_backend",
    "BatcherStats",
    "DynamicBatcher",
    "DeadlineExceeded",
    "PoolStats",
    "Priority",
    "WorkerPool",
    "BackendCache",
    "CacheStats",
    "InferenceServer",
    "ServerStats",
    "get_default_cache",
    "MajorityVoter",
    "StreamDecision",
    "StreamSession",
    "SESSION_CHECKPOINT_VERSION",
    "ManagedSession",
    "SessionCheckpoint",
    "SessionManager",
    "SessionManagerStats",
    "TenantStats",
    "restore_stream_session",
    "BackendError",
    "BackendTimeout",
    "BreakerSnapshot",
    "CircuitBreaker",
    "CircuitOpen",
    "DegradedLogits",
    "FaultInjectingBackend",
    "Hang",
    "HealthMonitor",
    "HealthSnapshot",
    "InjectError",
    "LatencySpike",
    "NaNOutput",
    "Overloaded",
    "QuotaExceeded",
    "RetryExhausted",
    "RetryPolicy",
    "ServingError",
    "SessionEvicted",
    "WorkerCrash",
]
