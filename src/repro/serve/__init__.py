"""``repro.serve`` — streaming inference service with dynamic micro-batching.

The deployment toolchain (:mod:`repro.deploy`) produces models that run on
an MCU; this package serves the same models as an online service, which is
the other half of the paper's real-time scenario and the seam every later
scaling PR (sharding, async workers, remote backends) plugs into:

* :mod:`repro.serve.backends` — the :class:`Backend` protocol plus the
  float (``repro.nn`` forward) and int8 (integer graph executor)
  implementations;
* :mod:`repro.serve.batcher` — :class:`DynamicBatcher`, aggregating
  concurrent single-window requests into bounded micro-batches;
* :mod:`repro.serve.stream` — :class:`StreamSession`, raw-signal streaming
  with overlapping windows and majority-vote label smoothing;
* :mod:`repro.serve.server` — the :class:`InferenceServer` facade and the
  process-wide backend cache.
"""

from .backends import (
    Backend,
    FloatBackend,
    Int8Backend,
    build_float_backend,
    build_int8_backend,
)
from .batcher import BatcherStats, DynamicBatcher
from .server import BackendCache, InferenceServer, get_default_cache
from .stream import MajorityVoter, StreamDecision, StreamSession

__all__ = [
    "Backend",
    "FloatBackend",
    "Int8Backend",
    "build_float_backend",
    "build_int8_backend",
    "BatcherStats",
    "DynamicBatcher",
    "BackendCache",
    "InferenceServer",
    "get_default_cache",
    "MajorityVoter",
    "StreamDecision",
    "StreamSession",
]
