"""Fault-tolerance primitives for the serving stack.

The serving tier is meant to run continuously at the edge: a hung backend,
a crashed worker thread, a burst of malformed traffic or a slow consumer
must degrade service *predictably* instead of silently eating capacity.
This module supplies the substrate every resilience feature builds on:

* a **typed error taxonomy** (:class:`ServingError` and subclasses) so
  callers can distinguish "the backend broke" (:class:`BackendError`),
  "the service refused the request" (:class:`Overloaded`), "we gave up
  after retrying" (:class:`RetryExhausted`) and "the breaker is open"
  (:class:`CircuitOpen`) without string-matching messages;
* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *deterministic* jitter (seeded, so a retry schedule is reproducible in
  tests), applied only to retryable faults and only while the request's
  deadline still has room;
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine, tripping on consecutive failures or on the error rate over a
  sliding outcome window, with an injectable clock for deterministic tests;
* :class:`FaultInjectingBackend` — a :class:`~repro.serve.backends.Backend`
  wrapper that injects latency spikes, typed exceptions, hangs, worker
  crashes and NaN outputs by a *seeded schedule*, so every resilience
  feature above is testable without real flaky hardware;
* :class:`HealthMonitor` — named probe callables composed into one frozen
  :class:`HealthSnapshot` (what ``InferenceServer.health()`` returns).

Everything here is engine-agnostic: nothing imports the batcher, the pool
or the server, so those layers can import freely from this module.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "BackendError",
    "BackendTimeout",
    "CircuitBreaker",
    "CircuitOpen",
    "BreakerSnapshot",
    "DegradedLogits",
    "FaultInjectingBackend",
    "Hang",
    "HealthMonitor",
    "HealthSnapshot",
    "InjectError",
    "LatencySpike",
    "NaNOutput",
    "Overloaded",
    "QuotaExceeded",
    "RetryExhausted",
    "RetryPolicy",
    "ServingError",
    "SessionEvicted",
    "WorkerCrash",
]


# --------------------------------------------------------------------- #
# Error taxonomy
# --------------------------------------------------------------------- #
class ServingError(RuntimeError):
    """Base class of every typed serving-tier failure."""


class BackendError(ServingError):
    """The backend failed to produce logits for a batch.

    ``retryable`` tells the dispatch path whether re-running the same
    batch can plausibly succeed (a transient glitch) or not (a
    deterministic bug — retrying would just burn the deadline).
    """

    def __init__(self, message: str, *, retryable: bool = False) -> None:
        super().__init__(message)
        self.retryable = bool(retryable)


class BackendTimeout(BackendError, TimeoutError):
    """A backend call exceeded its soft timeout (the job was abandoned).

    The stuck thread cannot be killed, only abandoned: the pool fails the
    job's future with this error and respawns a replacement worker, and
    the late result (if the thread ever unsticks) is discarded.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, retryable=True)


class WorkerCrash(BackendError):
    """A fault that takes the whole worker thread down with it.

    Emulates a segfaulting native kernel: the pool fails the job's future
    and lets the thread die, relying on supervision to respawn it.  Marked
    retryable — a respawned worker can serve the retried batch.
    """

    def __init__(self, message: str = "worker crashed") -> None:
        super().__init__(message, retryable=True)


class Overloaded(ServingError):
    """The service refused the request to protect itself.

    Raised synchronously at submission (fast rejection) or delivered
    through a queued request's future when it is shed to make room for
    higher-priority traffic.  Clients should back off, not retry hot.
    """


class RetryExhausted(ServingError):
    """Every permitted retry attempt failed; carries the last error."""

    def __init__(self, message: str, last_error: Optional[BaseException] = None, attempts: int = 0) -> None:
        super().__init__(message)
        self.last_error = last_error
        self.attempts = int(attempts)


class CircuitOpen(ServingError):
    """The backend's circuit breaker is open — the call was not attempted."""


class QuotaExceeded(ServingError):
    """A tenant's quota refused the operation (session count or samples/s).

    ``tenant`` names the tenant whose budget was exhausted and ``quota``
    the budget itself (``"sessions"`` or ``"samples_per_s"``), so a
    multi-tenant client can tell "open fewer sessions" apart from "slow
    down" without string-matching the message.
    """

    def __init__(
        self, message: str, *, tenant: Optional[str] = None, quota: str = ""
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.quota = quota


class SessionEvicted(ServingError):
    """The managed session no longer exists — it was reaped or evicted.

    Raised by every operation on a session the manager has taken away
    (idle-TTL reaping, memory-pressure eviction, drain).  ``reason`` is
    ``"idle"``, ``"pressure"`` or ``"drain"``; the manager keeps the
    session's final :class:`~repro.serve.sessions.SessionCheckpoint`, so
    an evicted session's state is recoverable, never lost.
    """

    def __init__(
        self, message: str, *, session_id: Optional[str] = None, reason: str = ""
    ) -> None:
        super().__init__(message)
        self.session_id = session_id
        self.reason = reason


# --------------------------------------------------------------------- #
# Degradation flag
# --------------------------------------------------------------------- #
class DegradedLogits(np.ndarray):
    """Logits produced by the *fallback* backend, not the requested one.

    An ndarray subclass so the flag survives stacking-free row handout:
    slicing a ``DegradedLogits`` batch yields ``DegradedLogits`` rows, and
    ``getattr(result, "degraded", False)`` identifies a degraded answer
    without changing any numeric behaviour.
    """

    degraded = True

    @classmethod
    def wrap(cls, array: np.ndarray) -> "DegradedLogits":
        return np.asarray(array).view(cls)


# --------------------------------------------------------------------- #
# Retry policy
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` counts *total* tries (1 = no retry).  The delay before
    retry ``k`` (k = 1 for the first retry) is::

        min(max_delay_s, base_delay_s * multiplier**(k - 1)) * jitter_factor

    where ``jitter_factor`` is drawn deterministically from ``seed`` and
    the attempt index, uniform in ``[1 - jitter, 1]`` — the schedule is
    reproducible run to run, yet concurrent retry storms still decorrelate
    when callers use distinct seeds.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.005
    max_delay_s: float = 0.25
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def retryable(self, error: BaseException) -> bool:
        """Whether ``error`` is worth retrying at all."""
        if isinstance(error, BackendError):
            return error.retryable
        return isinstance(error, TimeoutError)

    def delay_s(self, retry_index: int) -> float:
        """Deterministic backoff before retry ``retry_index`` (1-based)."""
        if retry_index < 1:
            raise ValueError("retry_index is 1-based")
        base = min(self.max_delay_s, self.base_delay_s * self.multiplier ** (retry_index - 1))
        if self.jitter == 0.0:
            return base
        fraction = np.random.default_rng((self.seed, retry_index)).random()
        return base * (1.0 - self.jitter * fraction)


# --------------------------------------------------------------------- #
# Circuit breaker
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BreakerSnapshot:
    """Immutable view of a :class:`CircuitBreaker`'s state and counters."""

    name: str
    state: str
    consecutive_failures: int = 0
    failures: int = 0
    successes: int = 0
    opened: int = 0
    rejected: int = 0
    window_error_rate: float = 0.0


class CircuitBreaker:
    """Closed → open → half-open breaker guarding one backend.

    * **closed** — calls flow; failures are counted.  The breaker trips
      (opens) after ``failure_threshold`` *consecutive* failures, or when
      the error rate over the last ``window`` outcomes reaches
      ``error_rate_threshold`` (once the window is full).
    * **open** — :meth:`allow` refuses every call for ``recovery_s``
      seconds, then transitions to half-open.
    * **half-open** — up to ``half_open_max`` probe calls are allowed
      through; one success closes the breaker, one failure re-opens it
      (restarting the recovery clock).

    ``clock`` is injectable so the state machine is testable without real
    sleeps.  All methods are thread-safe.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        name: str = "backend",
        *,
        failure_threshold: int = 5,
        error_rate_threshold: Optional[float] = None,
        window: int = 20,
        recovery_s: float = 1.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if error_rate_threshold is not None and not 0.0 < error_rate_threshold <= 1.0:
            raise ValueError("error_rate_threshold must be in (0, 1]")
        if window < 1:
            raise ValueError("window must be >= 1")
        if recovery_s < 0:
            raise ValueError("recovery_s must be >= 0")
        if half_open_max < 1:
            raise ValueError("half_open_max must be >= 1")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.error_rate_threshold = error_rate_threshold
        self.window = int(window)
        self.recovery_s = float(recovery_s)
        self.half_open_max = int(half_open_max)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=self.window)  # True = failure
        self._consecutive = 0
        self._failures = 0
        self._successes = 0
        self._opened = 0
        self._rejected = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0

    # -- state machine ------------------------------------------------- #
    def allow(self) -> bool:
        """Whether a call may proceed right now (may transition the state)."""
        with self._lock:
            if self._state == self.OPEN:
                if self._clock() - self._opened_at >= self.recovery_s:
                    self._state = self.HALF_OPEN
                    self._half_open_inflight = 0
                else:
                    self._rejected += 1
                    return False
            if self._state == self.HALF_OPEN:
                if self._half_open_inflight >= self.half_open_max:
                    self._rejected += 1
                    return False
                self._half_open_inflight += 1
            return True

    def record_success(self) -> None:
        """Report a successful call (closes a half-open breaker)."""
        with self._lock:
            self._successes += 1
            self._consecutive = 0
            self._outcomes.append(False)
            if self._state == self.HALF_OPEN:
                self._state = self.CLOSED
                self._half_open_inflight = 0

    def record_failure(self) -> None:
        """Report a failed call (may trip the breaker)."""
        with self._lock:
            self._failures += 1
            self._consecutive += 1
            self._outcomes.append(True)
            if self._state == self.HALF_OPEN:
                self._trip()
                return
            if self._state != self.CLOSED:
                return
            rate_tripped = (
                self.error_rate_threshold is not None
                and len(self._outcomes) == self.window
                and sum(self._outcomes) / self.window >= self.error_rate_threshold
            )
            if self._consecutive >= self.failure_threshold or rate_tripped:
                self._trip()

    def _trip(self) -> None:
        self._state = self.OPEN
        self._opened += 1
        self._opened_at = self._clock()
        self._half_open_inflight = 0

    # -- introspection ------------------------------------------------- #
    @property
    def state(self) -> str:
        """Current state, accounting for an elapsed recovery timeout."""
        with self._lock:
            if (
                self._state == self.OPEN
                and self._clock() - self._opened_at >= self.recovery_s
            ):
                return self.HALF_OPEN
            return self._state

    def snapshot(self) -> BreakerSnapshot:
        """Frozen view of the breaker's state and counters."""
        state = self.state  # resolves open -> half_open transitions
        with self._lock:
            total = len(self._outcomes)
            return BreakerSnapshot(
                name=self.name,
                state=state,
                consecutive_failures=self._consecutive,
                failures=self._failures,
                successes=self._successes,
                opened=self._opened,
                rejected=self._rejected,
                window_error_rate=(sum(self._outcomes) / total) if total else 0.0,
            )

    def __repr__(self) -> str:
        return f"CircuitBreaker(name='{self.name}', state='{self.state}')"


# --------------------------------------------------------------------- #
# Fault injection
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LatencySpike:
    """Sleep ``seconds`` before serving the call normally."""

    seconds: float


@dataclass(frozen=True)
class Hang:
    """Stall ``seconds`` *inside* the backend, then serve the call.

    Models an unresponsive device/driver: with a pool soft timeout shorter
    than ``seconds`` the job is abandoned and the eventual late result is
    discarded, which is exactly the production behaviour under test.
    """

    seconds: float


@dataclass(frozen=True)
class InjectError:
    """Raise a typed error instead of serving the call.

    ``crash=True`` raises :class:`WorkerCrash`, which the pool treats as
    thread-fatal (the worker dies and must be respawned); otherwise a
    plain :class:`BackendError` with the given ``retryable`` flag.
    """

    message: str = "injected backend error"
    retryable: bool = True
    crash: bool = False


@dataclass(frozen=True)
class NaNOutput:
    """Serve the call but replace the logits with non-finite values."""

    value: float = float("nan")


Fault = Union[LatencySpike, Hang, InjectError, NaNOutput]


class FaultInjectingBackend:
    """A backend wrapper that injects faults on a deterministic schedule.

    ``schedule`` maps the 0-based *call index* of :meth:`run` to a fault
    (calls past the end of a sequence schedule, or absent from a mapping
    schedule, run clean).  Build one explicitly for scripted scenarios, or
    with :meth:`from_rates` for a seeded pseudo-random soak.

    The wrapper is itself a valid :class:`~repro.serve.backends.Backend`,
    so it drops into :class:`~repro.serve.server.InferenceServer` via the
    ``backend_wrapper`` hook and into any test harness that talks the
    protocol.  ``injected`` records ``(call_index, fault)`` for every fault
    actually delivered, so tests can assert the schedule fired.
    """

    def __init__(
        self,
        inner,
        schedule: Union[Sequence[Optional[Fault]], Mapping[int, Fault], None] = None,
    ) -> None:
        self.inner = inner
        self.name = f"faulty-{getattr(inner, 'name', type(inner).__name__)}"
        if schedule is None:
            self._schedule: Dict[int, Fault] = {}
        elif isinstance(schedule, Mapping):
            self._schedule = {int(k): v for k, v in schedule.items() if v is not None}
        else:
            self._schedule = {
                i: fault for i, fault in enumerate(schedule) if fault is not None
            }
        self._lock = threading.Lock()
        self._calls = 0
        self.injected: List[Tuple[int, Fault]] = []

    @classmethod
    def from_rates(
        cls,
        inner,
        *,
        seed: int = 0,
        calls: int = 256,
        latency_rate: float = 0.0,
        latency_s: float = 0.01,
        error_rate: float = 0.0,
        hang_rate: float = 0.0,
        hang_s: float = 0.25,
        crash_rate: float = 0.0,
        nan_rate: float = 0.0,
    ) -> "FaultInjectingBackend":
        """A seeded pseudo-random schedule over the next ``calls`` calls.

        Rates are independent per call, checked in the order latency →
        hang → crash → error → NaN (first match wins), so the same seed
        always yields the same fault sequence.
        """
        rng = np.random.default_rng(seed)
        schedule: Dict[int, Fault] = {}
        for index in range(calls):
            draws = rng.random(5)
            if draws[0] < latency_rate:
                schedule[index] = LatencySpike(latency_s)
            elif draws[1] < hang_rate:
                schedule[index] = Hang(hang_s)
            elif draws[2] < crash_rate:
                schedule[index] = InjectError(crash=True, message="injected crash")
            elif draws[3] < error_rate:
                schedule[index] = InjectError()
            elif draws[4] < nan_rate:
                schedule[index] = NaNOutput()
        return cls(inner, schedule)

    # -- Backend protocol ---------------------------------------------- #
    @property
    def input_shape(self) -> Tuple[int, int]:
        """Expected per-window shape ``(channels, samples)`` (delegated)."""
        return self.inner.input_shape

    @property
    def num_classes(self) -> int:
        """Number of gesture classes in the logits (delegated)."""
        return self.inner.num_classes

    @property
    def calls(self) -> int:
        """How many times :meth:`run` has been invoked so far."""
        with self._lock:
            return self._calls

    def run(self, windows: np.ndarray) -> np.ndarray:
        """Serve the batch, injecting this call's scheduled fault (if any)."""
        with self._lock:
            index = self._calls
            self._calls += 1
            fault = self._schedule.get(index)
            if fault is not None:
                self.injected.append((index, fault))
        if fault is None:
            return self.inner.run(windows)
        if isinstance(fault, LatencySpike):
            time.sleep(fault.seconds)
            return self.inner.run(windows)
        if isinstance(fault, Hang):
            time.sleep(fault.seconds)
            return self.inner.run(windows)
        if isinstance(fault, InjectError):
            if fault.crash:
                raise WorkerCrash(fault.message)
            raise BackendError(fault.message, retryable=fault.retryable)
        if isinstance(fault, NaNOutput):
            out = np.array(self.inner.run(windows), dtype=np.float64, copy=True)
            out[...] = fault.value
            return out
        raise TypeError(f"unknown fault type: {type(fault).__name__}")

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Class indices (argmax over :meth:`run`, faults included)."""
        return np.argmax(self.run(windows), axis=-1)

    def __repr__(self) -> str:
        return (
            f"FaultInjectingBackend({self.name}, "
            f"{len(self._schedule)} scheduled fault(s), calls={self.calls})"
        )


# --------------------------------------------------------------------- #
# Health aggregation
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class HealthSnapshot:
    """One frozen, JSON-friendly view of the serving tier's health.

    ``status`` is the coarse verdict: ``"ok"`` (everything closed and
    flowing), ``"degraded"`` (a breaker is not closed, requests were
    degraded to the fallback, or worker restarts happened), while the
    component fields carry the detail a dashboard would plot.
    """

    status: str
    breakers: Mapping[str, BreakerSnapshot] = field(default_factory=dict)
    queue_depth: int = 0
    shed: int = 0
    rejected: int = 0
    expired: int = 0
    retries: int = 0
    degraded_requests: int = 0
    worker_restarts: int = 0
    worker_timeouts: int = 0
    workers_alive: int = 0
    workers_total: int = 0
    #: Frozen :class:`~repro.serve.sessions.SessionManagerStats` when a
    #: session manager is attached to the server, else ``None``.
    sessions: Optional[object] = None


class HealthMonitor:
    """Compose named probes into :class:`HealthSnapshot` aggregates.

    Probes are zero-argument callables registered under a field name;
    :meth:`snapshot` evaluates them all at once.  The monitor itself is
    stateless between snapshots — it aggregates, it does not sample.
    """

    def __init__(self) -> None:
        self._probes: Dict[str, Callable[[], object]] = {}

    def register(self, name: str, probe: Callable[[], object]) -> None:
        """Attach ``probe`` under ``name`` (later registrations replace)."""
        self._probes[name] = probe

    def snapshot(self) -> HealthSnapshot:
        """Evaluate every probe and fold the results into one snapshot."""
        values = {name: probe() for name, probe in self._probes.items()}
        breakers: Dict[str, BreakerSnapshot] = {}
        for breaker in values.get("breakers", ()):  # type: ignore[union-attr]
            breakers[breaker.name] = breaker
        degraded = (
            any(snap.state != CircuitBreaker.CLOSED for snap in breakers.values())
            or int(values.get("degraded_requests", 0)) > 0
            or int(values.get("worker_restarts", 0)) > 0
        )
        return HealthSnapshot(
            status="degraded" if degraded else "ok",
            breakers=breakers,
            queue_depth=int(values.get("queue_depth", 0)),
            shed=int(values.get("shed", 0)),
            rejected=int(values.get("rejected", 0)),
            expired=int(values.get("expired", 0)),
            retries=int(values.get("retries", 0)),
            degraded_requests=int(values.get("degraded_requests", 0)),
            worker_restarts=int(values.get("worker_restarts", 0)),
            worker_timeouts=int(values.get("worker_timeouts", 0)),
            workers_alive=int(values.get("workers_alive", 0)),
            workers_total=int(values.get("workers_total", 0)),
            sessions=values.get("sessions"),
        )
