"""Streaming gesture recognition: raw samples in, smoothed decisions out.

This is the paper's end-to-end deployment loop: a continuous 14-channel
sEMG signal is segmented into overlapping windows (150 ms window, 15 ms
slide at 2 kHz), each window is classified, and the per-window labels are
smoothed with majority voting over the most recent decisions so a single
misclassified window cannot flip the controlled prosthesis.

:class:`StreamSession` composes the pieces that already exist elsewhere in
the repository — :class:`repro.data.windowing.StreamWindower` for the
incremental segmentation (bit-identical to the offline training-time
segmentation), optionally a :class:`repro.data.preprocessing.Preprocessor`,
and any per-batch classifier (typically an
:class:`~repro.serve.server.InferenceServer`).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Sequence, Tuple

import numpy as np

from ..data.windowing import StreamWindower

__all__ = ["MajorityVoter", "StreamDecision", "StreamSession"]


class MajorityVoter:
    """Majority vote over the ``history`` most recent window labels.

    Ties are broken toward the smallest label index, which makes the vote
    deterministic and biases ties toward the paper's rest class (class 0).
    A ``history`` of 1 disables smoothing.

    ``history`` is frozen at construction: the deque that holds the vote
    window is sized once, so rebinding the attribute afterwards could only
    desynchronise the two — it raises ``AttributeError`` instead.  State
    is exported/imported through :meth:`state`/:meth:`load_state` (what
    the session checkpoints use) rather than by poking ``_recent``.
    """

    __slots__ = ("_history", "_recent")

    def __init__(self, history: int = 5) -> None:
        if history < 1:
            raise ValueError("history must be >= 1")
        self._history = int(history)
        self._recent: Deque[int] = deque(maxlen=self._history)

    @property
    def history(self) -> int:
        """The (frozen) vote-window length."""
        return self._history

    def vote(self, label: int) -> int:
        """Record ``label`` and return the smoothed decision."""
        self._recent.append(int(label))
        counts = Counter(self._recent)
        best = max(counts.values())
        return min(candidate for candidate, count in counts.items() if count == best)

    def reset(self) -> None:
        """Forget the voting history (e.g. between recordings)."""
        self._recent.clear()

    @property
    def recent(self) -> Tuple[int, ...]:
        """The raw labels currently inside the voting window (immutable)."""
        return tuple(self._recent)

    def state(self) -> dict:
        """Serializable snapshot of the voter: history length + window."""
        return {"history": self._history, "recent": list(self._recent)}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state` snapshot taken from an equal-history voter.

        A snapshot from a different ``history`` cannot be replayed into
        this voter without changing its smoothing semantics, so it is
        rejected with ``ValueError`` instead of silently truncating.
        """
        if int(state["history"]) != self._history:
            raise ValueError(
                f"voter state has history {state['history']}, "
                f"this voter has history {self._history}"
            )
        recent = [int(label) for label in state["recent"]]
        if len(recent) > self._history:
            raise ValueError(
                f"voter state holds {len(recent)} labels for a history "
                f"of {state['history']}"
            )
        self._recent = deque(recent, maxlen=self._history)


@dataclass(frozen=True)
class StreamDecision:
    """One classified window of the stream.

    ``degraded`` mirrors :class:`~repro.serve.faults.DegradedLogits`: the
    decision was produced from a window whose signal was degraded (dead or
    non-finite electrodes masked out by the session manager) — numerically
    valid, but the caller should weigh it accordingly.
    """

    window_index: int
    label: int
    smoothed_label: int
    degraded: bool = False


class StreamSession:
    """Feed raw sEMG chunks through windowing → classification → smoothing.

    Parameters
    ----------
    classify:
        Callable mapping ``(batch, channels, window)`` arrays to per-window
        integer labels (``(batch,)``).  ``InferenceServer.predict`` and
        ``IntegerGraphExecutor.predict`` both fit.
    window, slide:
        Sliding-window geometry in samples (the paper: 300 / 30 at 2 kHz).
    num_channels:
        Electrode count of the stream (the paper: 14).
    preprocessor:
        Optional per-window conditioning applied to each emitted window
        batch before classification.
    smoothing:
        Majority-vote history length (1 disables smoothing).
    """

    def __init__(
        self,
        classify: Callable[[np.ndarray], np.ndarray],
        window: int,
        slide: int,
        num_channels: int,
        *,
        preprocessor: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        smoothing: int = 5,
    ) -> None:
        self.classify = classify
        self.windower = StreamWindower(window, slide, num_channels)
        self.preprocessor = preprocessor
        self.voter = MajorityVoter(smoothing)
        self.decisions: List[StreamDecision] = []
        # Window index of decisions[0]: 0 for a fresh session, the
        # checkpointed windows_classified count for a restored one (the
        # restored session's indices continue the original stream's).
        self._decisions_base = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def samples_seen(self) -> int:
        """Total raw samples pushed into the session so far."""
        return self.windower.samples_seen

    @property
    def windows_classified(self) -> int:
        """Number of windows classified over the whole stream so far.

        Includes windows classified before a checkpoint/restore cut: a
        restored session continues the original stream's count even though
        its ``decisions`` list only holds post-restore decisions.
        """
        return self._decisions_base + len(self.decisions)

    @property
    def current_label(self) -> Optional[int]:
        """The latest smoothed decision (``None`` before the first window)."""
        return self.decisions[-1].smoothed_label if self.decisions else None

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #
    def push(self, samples: np.ndarray) -> List[StreamDecision]:
        """Ingest a ``(channels, n)`` chunk; classify every completed window.

        Returns the decisions produced by this chunk (possibly empty — a
        short chunk may not complete a new window).

        A chunk whose channel dimension disagrees with the session's
        electrode count is rejected with ``ValueError`` up front — feeding
        a mis-wired stream into the windower would silently interleave
        channels into garbage windows.  (1-D chunks are accepted for
        single-channel sessions, as with :class:`StreamWindower`.)

        Non-finite chunks are rejected the same way the server's admission
        validation rejects non-finite windows: a single NaN sample would
        otherwise be windowed into up to ``window // slide`` consecutive
        windows and poison that many majority votes.  Sessions that must
        survive degraded signal route chunks through the session manager's
        dead-electrode masking (:mod:`repro.serve.sessions`) instead.
        """
        chunk = np.asarray(samples)
        expected = self.windower.num_channels
        channels = 1 if chunk.ndim == 1 else chunk.shape[0]
        if chunk.ndim > 2 or channels != expected:
            raise ValueError(
                f"stream chunk has {channels} channel(s) "
                f"(shape {chunk.shape}), but this session expects "
                f"{expected} channel(s)"
            )
        if chunk.dtype == object or not np.can_cast(chunk.dtype, np.float64):
            raise ValueError(
                f"stream chunk dtype {chunk.dtype} cannot be safely cast "
                f"to float64"
            )
        if not np.all(np.isfinite(np.asarray(chunk, dtype=np.float64))):
            raise ValueError(
                "stream chunk contains non-finite (NaN/Inf) samples; "
                "refusing to window/classify it"
            )
        windows = self.windower.push(chunk)
        if windows.shape[0] == 0:
            return []
        if self.preprocessor is not None:
            windows = np.asarray(self.preprocessor(windows))
        labels = np.asarray(self.classify(windows)).reshape(-1)
        if labels.shape[0] != windows.shape[0]:
            raise RuntimeError(
                f"classifier returned {labels.shape[0]} labels for "
                f"{windows.shape[0]} windows"
            )
        start = self._decisions_base + len(self.decisions)
        produced: List[StreamDecision] = []
        for offset, label in enumerate(labels):
            smoothed = self.voter.vote(int(label))
            produced.append(StreamDecision(start + offset, int(label), smoothed))
        self.decisions.extend(produced)
        return produced

    def run(self, signal: np.ndarray, chunk_size: int = 64) -> List[StreamDecision]:
        """Stream a whole ``(channels, samples)`` recording in chunks.

        A 1-D ``(samples,)`` signal is accepted for single-channel streams
        (the same normalisation ``push``/``StreamWindower`` apply): it is
        lifted to ``(1, samples)`` so chunking slices the time axis, never
        the channel axis.

        ``chunk_size`` must be at least 1 — a zero or negative chunk would
        make the slicing loop silently produce no (or wrong) decisions.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        signal = np.atleast_2d(np.asarray(signal))
        produced: List[StreamDecision] = []
        for start in range(0, signal.shape[-1], chunk_size):
            produced.extend(self.push(signal[:, start : start + chunk_size]))
        return produced

    def labels(self, smoothed: bool = True) -> np.ndarray:
        """All per-window decisions so far as an int array."""
        field = "smoothed_label" if smoothed else "label"
        return np.asarray(
            [getattr(decision, field) for decision in self.decisions], dtype=np.int64
        )

    def reset(self) -> None:
        """Clear buffered samples, vote history and recorded decisions."""
        self.windower.reset()
        self.voter.reset()
        self.decisions.clear()
        self._decisions_base = 0
