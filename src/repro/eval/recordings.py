"""Labelled synthetic sEMG recordings for streaming evaluation.

The offline experiments measure *window* accuracy on shuffled window sets;
the serving tier's headline number is different — it is the smoothed
*streaming* accuracy of a majority-voted decision sequence over a
continuous recording, including the lag every vote window introduces at a
gesture transition.  Measuring that needs recordings with known per-sample
ground truth, which the NinaPro surrogate's repetition-level generator
does not expose directly.

:class:`SyntheticRecording` is that substrate: a ``(channels, samples)``
signal plus an explicit, gap-free list of :class:`GestureSegment`
boundaries, from which per-window ground-truth labels are derived under
one fixed convention (a window is labelled by the segment that contains
its **last** sample — the causal choice: the decision is made at window
end).  :class:`RecordingGenerator` composes such recordings from
class-conditioned segment signals: every class has a fixed per-channel
activation pattern (offset + gain + a class-specific tremor frequency,
drawn once from the generator's seed), so the classes are separable by a
small trained model while remaining honestly noisy.  Generation is
bitwise-deterministic: the same ``(generator seed, call seed)`` pair
always produces the identical recording.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from ..data.windowing import sliding_window_count

__all__ = ["GestureSegment", "SyntheticRecording", "RecordingGenerator"]


@dataclass(frozen=True)
class GestureSegment:
    """One contiguous gesture span: ``label`` over samples ``[start, stop)``."""

    label: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.label < 0:
            raise ValueError("segment label must be non-negative")
        if not 0 <= self.start < self.stop:
            raise ValueError(
                f"segment span [{self.start}, {self.stop}) must be non-empty "
                f"and non-negative"
            )

    @property
    def samples(self) -> int:
        """Length of the segment in samples."""
        return self.stop - self.start


@dataclass(frozen=True)
class SyntheticRecording:
    """A labelled continuous recording: signal + gesture-segment boundaries.

    ``segments`` must tile ``[0, num_samples)`` without gaps or overlaps —
    every sample belongs to exactly one gesture, so per-window ground
    truth is always defined.  Construction validates this.
    """

    name: str
    signal: np.ndarray
    segments: Tuple[GestureSegment, ...]
    sampling_rate_hz: float

    def __post_init__(self) -> None:
        signal = np.asarray(self.signal, dtype=np.float64)
        if signal.ndim != 2:
            raise ValueError(
                f"expected a (channels, samples) signal, got shape {signal.shape}"
            )
        object.__setattr__(self, "signal", signal)
        object.__setattr__(self, "segments", tuple(self.segments))
        if self.sampling_rate_hz <= 0:
            raise ValueError("sampling_rate_hz must be positive")
        if not self.segments:
            raise ValueError("a recording needs at least one segment")
        position = 0
        for segment in self.segments:
            if segment.start != position:
                raise ValueError(
                    f"segments must tile the recording contiguously: expected "
                    f"a segment starting at {position}, got {segment.start}"
                )
            position = segment.stop
        if position != signal.shape[1]:
            raise ValueError(
                f"segments cover [0, {position}) but the signal holds "
                f"{signal.shape[1]} samples"
            )

    # -- geometry ------------------------------------------------------- #
    @property
    def num_channels(self) -> int:
        """Electrode count of the recording."""
        return self.signal.shape[0]

    @property
    def num_samples(self) -> int:
        """Total length in samples."""
        return self.signal.shape[1]

    @property
    def duration_s(self) -> float:
        """Total length in seconds."""
        return self.num_samples / self.sampling_rate_hz

    # -- ground truth ---------------------------------------------------- #
    def label_at(self, sample: int) -> int:
        """Ground-truth label of the gesture active at ``sample``."""
        if not 0 <= sample < self.num_samples:
            raise IndexError(f"sample {sample} outside [0, {self.num_samples})")
        stops = np.asarray([segment.stop for segment in self.segments])
        return self.segments[int(np.searchsorted(stops, sample, side="right"))].label

    def window_labels(self, window: int, slide: int) -> np.ndarray:
        """Per-window ground truth under the recording's labelling convention.

        Window ``i`` covers samples ``[i*slide, i*slide + window)`` (the
        exact geometry of :func:`repro.data.windowing.sliding_windows` and
        the streaming windower) and is labelled by the segment containing
        its **last** sample — the decision made at window end is graded
        against the gesture being performed at that instant.
        """
        count = sliding_window_count(self.num_samples, window, slide)
        ends = np.arange(count) * slide + window - 1
        stops = np.asarray([segment.stop for segment in self.segments])
        labels = np.asarray([segment.label for segment in self.segments])
        return labels[np.searchsorted(stops, ends, side="right")]

    def with_signal(
        self, signal: np.ndarray, name: Optional[str] = None
    ) -> "SyntheticRecording":
        """A copy carrying ``signal`` (same segments/labels), e.g. corrupted."""
        signal = np.asarray(signal, dtype=np.float64)
        if signal.shape != self.signal.shape:
            raise ValueError(
                f"replacement signal shape {signal.shape} disagrees with "
                f"{self.signal.shape}"
            )
        return replace(self, signal=signal, name=name if name is not None else self.name)

    def __repr__(self) -> str:
        return (
            f"SyntheticRecording('{self.name}', channels={self.num_channels}, "
            f"samples={self.num_samples}, segments={len(self.segments)})"
        )


class RecordingGenerator:
    """Seeded generator of labelled recordings with class-conditioned signals.

    Class conditioning (all drawn once from ``seed``, then frozen):

    * a per-channel DC offset pattern per class (electrode-space synergy
      projection; the rest class 0 sits near zero),
    * a per-channel envelope gain per class scaling a white-noise carrier
      (the interference-pattern model, reduced to its separable core),
    * a class-specific tremor frequency modulating the envelope.

    Classes are placed ``class_separation`` apart in pattern space; the
    shared ``noise_std`` white noise floor is what keeps single-window
    classification below ceiling.  Recordings are composed segment by
    segment from a per-call ``seed``, so the same call reproduces the
    identical recording bitwise while different calls vary.
    """

    def __init__(
        self,
        num_channels: int = 4,
        num_classes: int = 8,
        sampling_rate_hz: float = 2000.0,
        *,
        class_separation: float = 1.0,
        noise_std: float = 0.3,
        seed: int = 0,
    ) -> None:
        if num_channels < 1 or num_classes < 2:
            raise ValueError("need at least 1 channel and 2 classes")
        if class_separation <= 0 or noise_std < 0:
            raise ValueError("class_separation must be > 0 and noise_std >= 0")
        self.num_channels = int(num_channels)
        self.num_classes = int(num_classes)
        self.sampling_rate_hz = float(sampling_rate_hz)
        self.class_separation = float(class_separation)
        self.noise_std = float(noise_std)
        self.seed = int(seed)
        rng = np.random.default_rng(seed)
        #: (classes, channels) DC offset per class; rest (class 0) ~ 0.
        offsets = class_separation * rng.standard_normal((num_classes, num_channels))
        offsets[0] = 0.0
        self.class_offsets = offsets
        #: (classes, channels) envelope gain per class; rest keeps a small
        #: residual tone so no clean channel is ever exactly flat.
        gains = 0.4 + 0.6 * rng.random((num_classes, num_channels))
        gains *= class_separation
        gains[0] = 0.05 * class_separation
        self.class_gains = gains
        #: Per-class tremor frequency (Hz): a secondary temporal cue.
        self.tremor_hz = 3.0 + 5.0 * rng.random(num_classes)

    def _segment_signal(
        self, label: int, samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Class-conditioned ``(channels, samples)`` signal for one segment."""
        if not 0 <= label < self.num_classes:
            raise ValueError(
                f"label {label} outside [0, {self.num_classes})"
            )
        time = np.arange(samples) / self.sampling_rate_hz
        tremor = 1.0 + 0.25 * np.sin(
            2 * np.pi * self.tremor_hz[label] * time + rng.uniform(0, 2 * np.pi)
        )
        carrier = rng.standard_normal((self.num_channels, samples))
        signal = (
            self.class_offsets[label][:, None]
            + self.class_gains[label][:, None] * (tremor[None, :] * carrier)
        )
        signal += self.noise_std * rng.standard_normal((self.num_channels, samples))
        return signal

    def recording(
        self,
        labels: Sequence[int],
        segment_samples: int,
        *,
        seed: int = 0,
        name: Optional[str] = None,
    ) -> SyntheticRecording:
        """Compose one recording from ``labels`` (one segment per entry).

        ``segment_samples`` is the uniform per-gesture duration; transition
        boundaries are abrupt, at exact multiples of it.  The same
        ``(generator seed, seed)`` pair reproduces the recording bitwise.
        """
        labels = [int(label) for label in labels]
        if not labels:
            raise ValueError("need at least one segment label")
        if segment_samples < 1:
            raise ValueError("segment_samples must be >= 1")
        rng = np.random.default_rng((self.seed, int(seed)))
        pieces = []
        segments = []
        position = 0
        for label in labels:
            pieces.append(self._segment_signal(label, segment_samples, rng))
            segments.append(
                GestureSegment(label, start=position, stop=position + segment_samples)
            )
            position += segment_samples
        return SyntheticRecording(
            name=name if name is not None else f"rec-seed{seed}",
            signal=np.concatenate(pieces, axis=1),
            segments=tuple(segments),
            sampling_rate_hz=self.sampling_rate_hz,
        )

    def windows(
        self, windows_per_class: int, window: int, *, seed: int = 0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Labelled training windows for fitting a probe classifier.

        Returns ``(windows, labels)`` with ``windows_per_class`` windows of
        every class, each drawn as an independent class-conditioned segment
        (so the probe never sees the evaluation recordings themselves).
        """
        if windows_per_class < 1 or window < 1:
            raise ValueError("windows_per_class and window must be >= 1")
        rng = np.random.default_rng((self.seed, int(seed), 1))
        stacked = np.empty(
            (self.num_classes * windows_per_class, self.num_channels, window)
        )
        labels = np.empty(self.num_classes * windows_per_class, dtype=np.int64)
        index = 0
        for label in range(self.num_classes):
            for _ in range(windows_per_class):
                stacked[index] = self._segment_signal(label, window, rng)
                labels[index] = label
                index += 1
        return stacked, labels
