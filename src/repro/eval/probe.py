"""Deterministic probe classifiers for the evaluation harness.

The accuracy harness needs a classifier whose decisions are *meaningful*
(clearly above chance on clean recordings, measurably hurt by
corruptions) yet fully reproducible from seeds, without any real dataset
in the loop.  :func:`fit_probe_model` delivers that: it trains a small
registry model on labelled windows drawn from the same
:class:`~repro.eval.recordings.RecordingGenerator` that produces the
evaluation recordings — held-out by construction, because the probe's
training windows come from a different seed stream than any recording.

Everything is seeded (model init, training windows, batch shuffling), so
a given ``(generator, architecture, seed)`` triple always yields the
identical trained weights, which is what lets ``BENCH_accuracy.json``
gate post-vote accuracy against a recorded baseline instead of a fuzzy
tolerance band.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import ArrayDataset
from ..models import build_model
from ..nn import Adam
from ..nn.module import Module
from ..training import Trainer, TrainingConfig
from .recordings import RecordingGenerator

__all__ = ["fit_probe_model"]


def fit_probe_model(
    generator: RecordingGenerator,
    window_samples: int,
    *,
    architecture: str = "bio2",
    patch_size: Optional[int] = 10,
    windows_per_class: int = 24,
    epochs: int = 8,
    batch_size: int = 32,
    learning_rate: float = 3e-3,
    seed: int = 0,
) -> Module:
    """Train a small registry model on ``generator``'s class patterns.

    Returns the model in ``eval()`` mode, ready for
    :func:`repro.serve.build_float_backend` / ``InferenceServer`` or a
    bare ``classify`` callable.  Training is bitwise-deterministic in
    ``(generator seed, seed)``; the training windows are drawn from a
    seed stream disjoint from every recording the generator composes.
    """
    if window_samples < 1:
        raise ValueError("window_samples must be >= 1")
    windows, labels = generator.windows(
        windows_per_class, window_samples, seed=seed + 1
    )
    kwargs = dict(
        num_channels=generator.num_channels,
        window_samples=window_samples,
        num_classes=generator.num_classes,
        seed=seed,
    )
    if patch_size is not None:
        kwargs["patch_size"] = patch_size
    model = build_model(architecture, **kwargs)
    trainer = Trainer(
        model,
        Adam(model.parameters(), lr=learning_rate),
        config=TrainingConfig(epochs=epochs, batch_size=batch_size),
        rng=np.random.default_rng((seed, 2)),
    )
    trainer.fit(ArrayDataset(windows, labels))
    return model.eval()
