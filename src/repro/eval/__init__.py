"""``repro.eval`` — streaming accuracy & robustness evaluation harness.

Turns the serving tier's behaviour into measurable claims: labelled
synthetic recordings with exact gesture boundaries
(:mod:`~repro.eval.recordings`), reproducible corruption scenarios
aligned with the training-time augmentation model
(:mod:`~repro.eval.scenarios`), a stream evaluator that drives real
``StreamSession``/``SessionManager`` streams chunk by chunk and grades
every decision (:mod:`~repro.eval.evaluator`), the accuracy-vs-deadline
trade-off through a live ``InferenceServer``
(:mod:`~repro.eval.deadline`), and a deterministic trained probe model
to power it all without real data (:mod:`~repro.eval.probe`).

``benchmarks/test_eval_accuracy.py`` runs the standard sweep and gates
the ``BENCH_accuracy.json`` trajectory; ``docs/evaluation.md`` holds the
metric contract.
"""

from .deadline import DeadlineCurve, DeadlinePoint, accuracy_vs_deadline
from .evaluator import EvalReport, StreamEvaluator, TransitionRecord
from .probe import fit_probe_model
from .recordings import GestureSegment, RecordingGenerator, SyntheticRecording
from .scenarios import SCENARIO_KINDS, Scenario, ScenarioSuite

__all__ = [
    "GestureSegment",
    "SyntheticRecording",
    "RecordingGenerator",
    "Scenario",
    "ScenarioSuite",
    "SCENARIO_KINDS",
    "EvalReport",
    "TransitionRecord",
    "StreamEvaluator",
    "DeadlinePoint",
    "DeadlineCurve",
    "accuracy_vs_deadline",
    "fit_probe_model",
]
