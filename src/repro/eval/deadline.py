"""Accuracy versus deadline: what shedding costs in post-vote accuracy.

The serving tier can bound tail latency by attaching a deadline to every
window (:meth:`repro.serve.server.InferenceServer.submit`): a window
still queued when its deadline expires resolves with
:class:`~repro.serve.pool.DeadlineExceeded` instead of logits.  That
trades latency for decisions — a shed window produces *no* new decision,
so the prosthesis holds its previous smoothed label for one more hop.

:func:`accuracy_vs_deadline` measures that trade-off end to end: the same
recording's windows (cut offline with
:func:`~repro.data.windowing.sliding_windows`, bit-identical to the
streaming windower) are burst-submitted through a real
``InferenceServer`` at each deadline setting, and the resulting decision
track — argmax + majority vote for answered windows, hold-last-decision
for shed ones — is graded against the recording's ground truth.  Windows
shed before any decision exists grade as incorrect (the device would be
emitting its rest/default posture on its own authority).

The unlimited point (``deadline_s=None``) is deterministic for a fixed
model and recording — batching changes schedule, never argmax — which is
what ``benchmarks/test_eval_accuracy.py`` gates against the recorded
``BENCH_accuracy.json`` baseline.  Finite-deadline points depend on host
timing and are recorded for the trajectory, not gated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..data.windowing import sliding_windows
from ..serve.pool import DeadlineExceeded, Priority
from ..serve.stream import MajorityVoter
from .recordings import SyntheticRecording

__all__ = ["DeadlinePoint", "DeadlineCurve", "accuracy_vs_deadline"]


@dataclass(frozen=True)
class DeadlinePoint:
    """One deadline setting's measured accuracy/shed/degradation triple."""

    #: Deadline in seconds; None = unlimited (the deterministic baseline).
    deadline_s: Optional[float]
    num_windows: int
    answered: int
    shed: int
    smoothed_accuracy: float
    window_accuracy: float
    degraded_rate: float

    @property
    def shed_rate(self) -> float:
        """Fraction of windows dropped by deadline expiry."""
        return self.shed / self.num_windows if self.num_windows else 0.0

    def to_metrics(self) -> dict:
        """Flat scalar view for the benchmark trajectory."""
        return {
            "deadline_ms": (
                -1.0 if self.deadline_s is None else round(self.deadline_s * 1e3, 3)
            ),
            "num_windows": float(self.num_windows),
            "shed_rate": round(self.shed_rate, 4),
            "smoothed_accuracy": round(self.smoothed_accuracy, 4),
            "window_accuracy": round(self.window_accuracy, 4),
            "degraded_rate": round(self.degraded_rate, 4),
        }


@dataclass(frozen=True)
class DeadlineCurve:
    """The accuracy-vs-deadline trade-off of one recording on one server."""

    recording: str
    smoothing: int
    points: Tuple[DeadlinePoint, ...]

    @property
    def unlimited(self) -> DeadlinePoint:
        """The deterministic no-deadline point (the gateable baseline)."""
        for point in self.points:
            if point.deadline_s is None:
                return point
        raise ValueError("curve holds no unlimited (deadline_s=None) point")

    def to_metrics(self) -> dict:
        """Per-point flat metrics keyed by a stable deadline tag."""
        metrics = {}
        for point in self.points:
            tag = (
                "unlimited"
                if point.deadline_s is None
                else f"{point.deadline_s * 1e3:g}ms"
            )
            metrics[tag] = point.to_metrics()
        return metrics


def accuracy_vs_deadline(
    server,
    recording: SyntheticRecording,
    *,
    slide: int,
    smoothing: int = 5,
    deadlines: Sequence[Optional[float]] = (None, 0.05, 0.0),
    priority: int = Priority.HIGH,
    timeout_s: float = 60.0,
) -> DeadlineCurve:
    """Measure ``recording``'s decision accuracy at each deadline setting.

    Windows are burst-submitted (all at once, at ``priority``) so finite
    deadlines genuinely bite: queue depth, not per-window latency, is
    what expires them.  Requires an ``InferenceServer``-compatible
    ``server`` (``submit`` + ``input_shape``).
    """
    if not deadlines:
        raise ValueError("need at least one deadline setting")
    channels, window = server.input_shape
    if recording.num_channels != channels:
        raise ValueError(
            f"recording has {recording.num_channels} channels, server expects "
            f"{channels}"
        )
    windows = sliding_windows(recording.signal, window, slide)
    truth = recording.window_labels(window, slide)
    points: List[DeadlinePoint] = []
    for deadline_s in deadlines:
        futures = [
            server.submit(w, priority=priority, deadline_s=deadline_s)
            for w in windows
        ]
        voter = MajorityVoter(smoothing)
        decisions = np.empty(len(futures), dtype=np.int64)
        shed = 0
        degraded = 0
        raw_correct = 0
        last: Optional[int] = None
        for index, future in enumerate(futures):
            try:
                logits = future.result(timeout=timeout_s)
            except DeadlineExceeded:
                shed += 1
                # Hold the previous smoothed decision; -1 (never-correct)
                # when the stream was shed before its first answer.
                decisions[index] = -1 if last is None else last
                continue
            label = int(np.argmax(logits))
            if bool(getattr(logits, "degraded", False)):
                degraded += 1
            if label == truth[index]:
                raw_correct += 1
            last = voter.vote(label)
            decisions[index] = last
        answered = len(futures) - shed
        points.append(
            DeadlinePoint(
                deadline_s=deadline_s,
                num_windows=len(futures),
                answered=answered,
                shed=shed,
                smoothed_accuracy=(
                    float(np.mean(decisions == truth)) if len(truth) else 0.0
                ),
                window_accuracy=raw_correct / answered if answered else 0.0,
                degraded_rate=degraded / answered if answered else 0.0,
            )
        )
    return DeadlineCurve(
        recording=recording.name, smoothing=smoothing, points=tuple(points)
    )
