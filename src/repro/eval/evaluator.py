"""Streaming accuracy evaluation over labelled recordings.

:class:`StreamEvaluator` drives a *real* serving-tier stream — a
:class:`~repro.serve.stream.StreamSession`, a
:class:`~repro.serve.sessions.SessionManager`-owned session, or a stream
opened on an :class:`~repro.serve.server.InferenceServer` — chunk by
chunk over a :class:`~repro.eval.recordings.SyntheticRecording`, grades
every decision against the recording's ground truth, and emits one
:class:`EvalReport` per (recording, scenario) pair.

Metric definitions (pinned here; ``docs/evaluation.md`` mirrors them):

window accuracy
    Fraction of *raw* (pre-vote) per-window labels matching the window's
    ground truth (last-sample convention of
    :meth:`~repro.eval.recordings.SyntheticRecording.window_labels`).
post-vote accuracy
    The same fraction for the *smoothed* labels.  The per-depth sweep
    (:attr:`EvalReport.accuracy_by_depth`) replays the recorded raw
    labels through a fresh
    :class:`~repro.serve.stream.MajorityVoter` of each depth — depth 1
    is argmax passthrough by the voter's pinned semantics, and the
    session's own smoothed labels must equal the replay at its own
    depth (asserted on every evaluation, so the sweep can never drift
    from what the serving tier actually does).
transition lag (windows)
    For each gesture transition, the number of windows from the first
    window *whose decision the new gesture owns* (first window with its
    last sample inside the new segment) until the first window whose
    smoothed label equals the new gesture's.  0 = the vote tracked the
    transition instantly; a transition whose segment ends before the
    smoothed label ever matches counts as *unresolved* and is excluded
    from the lag mean/max but reported in
    :attr:`EvalReport.unresolved_transitions`.
decision latency (ms)
    For the same event, the wall time from the gesture's physical onset
    (its first sample) to the end of the window that first carried the
    correct smoothed decision: ``(j * slide + window - onset) / fs * 1e3``.
    This includes the windowing delay itself, so even a 0-lag transition
    has latency ≈ one window.
degraded-decision rate
    Fraction of decisions flagged ``degraded`` by the session layer
    (dead/non-finite electrode masking); structurally 0 for sources
    without that layer (bare sessions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..serve.stream import MajorityVoter, StreamDecision, StreamSession
from .recordings import SyntheticRecording
from .scenarios import Scenario, ScenarioSuite

__all__ = ["EvalReport", "TransitionRecord", "StreamEvaluator"]

#: Majority-vote depths the per-report sweep covers.
DEFAULT_VOTE_DEPTHS = (1, 3, 5, 9)


@dataclass(frozen=True)
class TransitionRecord:
    """One gesture transition's tracking outcome."""

    label: int
    #: Sample index of the gesture's physical onset.
    onset_sample: int
    #: First window index whose ground truth is this gesture.
    first_window: int
    #: First window index whose *smoothed* label matched, or None.
    resolved_window: Optional[int]
    #: Lag in windows (resolved_window - first_window), or None.
    lag_windows: Optional[int]
    #: Onset-to-correct-decision latency in milliseconds, or None.
    latency_ms: Optional[float]


@dataclass(frozen=True)
class EvalReport:
    """All streaming-accuracy metrics of one (recording, scenario) run."""

    recording: str
    scenario: str
    num_windows: int
    vote_depth: int
    window_accuracy: float
    smoothed_accuracy: float
    accuracy_by_depth: Dict[int, float]
    degraded_rate: float
    num_degraded: int
    transitions: Tuple[TransitionRecord, ...]
    unresolved_transitions: int
    mean_transition_lag_windows: Optional[float]
    max_transition_lag_windows: Optional[int]
    mean_decision_latency_ms: Optional[float]
    max_decision_latency_ms: Optional[float]

    def to_metrics(self) -> Dict[str, float]:
        """Flat scalar view for benchmark trajectories / logging."""
        metrics: Dict[str, float] = {
            "num_windows": float(self.num_windows),
            "window_accuracy": round(self.window_accuracy, 4),
            "smoothed_accuracy": round(self.smoothed_accuracy, 4),
            "degraded_rate": round(self.degraded_rate, 4),
        }
        for depth, accuracy in sorted(self.accuracy_by_depth.items()):
            metrics[f"accuracy_depth{depth}"] = round(accuracy, 4)
        if self.mean_transition_lag_windows is not None:
            metrics["mean_transition_lag_windows"] = round(
                self.mean_transition_lag_windows, 3
            )
        if self.mean_decision_latency_ms is not None:
            metrics["mean_decision_latency_ms"] = round(
                self.mean_decision_latency_ms, 3
            )
        metrics["unresolved_transitions"] = float(self.unresolved_transitions)
        return metrics


def _replay_depths(
    raw_labels: Sequence[int], depths: Sequence[int]
) -> Dict[int, List[int]]:
    """Smoothed label sequences of ``raw_labels`` at every vote depth."""
    replayed: Dict[int, List[int]] = {}
    for depth in depths:
        voter = MajorityVoter(depth)
        replayed[depth] = [voter.vote(int(label)) for label in raw_labels]
    return replayed


class StreamEvaluator:
    """Grade serving-tier streams against labelled recordings.

    Parameters
    ----------
    source:
        Where streams come from.  One of:

        * an :class:`~repro.serve.server.InferenceServer` — a fresh
          stream is opened per evaluation via ``open_stream``;
        * a :class:`~repro.serve.sessions.SessionManager` — a fresh
          managed session per evaluation (``create_session`` /
          ``close_session``), which is the only source whose decisions
          can carry ``degraded=True``;
        * a bare ``classify`` callable mapping ``(batch, channels,
          window)`` to per-window labels — a fresh
          :class:`~repro.serve.stream.StreamSession` per evaluation
          (requires ``window`` and ``num_channels``).
    slide:
        Sliding-window hop in samples.
    smoothing:
        Majority-vote depth of the evaluated stream.
    window, num_channels:
        Stream geometry; required for a callable source, inferred from
        the server/manager otherwise.
    chunk_size:
        Samples per pushed chunk (the streaming granularity).
    vote_depths:
        Depths of the per-report accuracy sweep; the stream's own
        ``smoothing`` is always included.
    tenant:
        Tenant name used for manager-owned sessions.
    """

    def __init__(
        self,
        source: Union[Callable[[np.ndarray], np.ndarray], object],
        *,
        slide: int,
        smoothing: int = 5,
        window: Optional[int] = None,
        num_channels: Optional[int] = None,
        chunk_size: int = 64,
        vote_depths: Sequence[int] = DEFAULT_VOTE_DEPTHS,
        tenant: str = "eval",
    ) -> None:
        if slide < 1 or smoothing < 1 or chunk_size < 1:
            raise ValueError("slide, smoothing and chunk_size must be >= 1")
        self.source = source
        self.slide = int(slide)
        self.smoothing = int(smoothing)
        self.chunk_size = int(chunk_size)
        self.tenant = tenant
        depths = sorted({int(d) for d in vote_depths} | {int(smoothing)})
        if any(d < 1 for d in depths):
            raise ValueError("vote depths must be >= 1")
        self.vote_depths = tuple(depths)
        self._window = window
        self._num_channels = num_channels
        if callable(source) and not hasattr(source, "open_stream"):
            if window is None or num_channels is None:
                raise ValueError(
                    "a callable source needs explicit window and num_channels"
                )

    # ------------------------------------------------------------------ #
    # Stream plumbing
    # ------------------------------------------------------------------ #
    def _open(self):
        """A fresh (session, closer) pair for one evaluation run."""
        source = self.source
        if hasattr(source, "create_session"):  # SessionManager
            session = source.create_session(
                self.tenant, slide=self.slide, smoothing=self.smoothing
            )
            return session, lambda: source.close_session(session.session_id)
        if hasattr(source, "open_stream"):  # InferenceServer
            session = source.open_stream(self.slide, smoothing=self.smoothing)
            return session, lambda: None
        session = StreamSession(
            source,
            window=self._window,
            slide=self.slide,
            num_channels=self._num_channels,
            smoothing=self.smoothing,
        )
        return session, lambda: None

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def _transitions(
        self,
        recording: SyntheticRecording,
        smoothed: Sequence[int],
        window: int,
    ) -> Tuple[TransitionRecord, ...]:
        """Per-transition lag/latency against the smoothed decision track."""
        num_windows = len(smoothed)
        records: List[TransitionRecord] = []
        for index, segment in enumerate(recording.segments):
            # First window whose last sample falls inside this segment:
            # j*slide + window - 1 >= segment.start.
            first = max(0, -(-(segment.start - window + 1) // self.slide))
            # Last window owned by this segment: last sample < segment.stop.
            last = min(num_windows - 1, (segment.stop - window) // self.slide)
            if first > last:
                continue  # segment too short to own any window
            if index > 0 and segment.label == recording.segments[index - 1].label:
                continue  # not a label transition
            resolved = None
            for j in range(first, last + 1):
                if smoothed[j] == segment.label:
                    resolved = j
                    break
            lag = None if resolved is None else resolved - first
            latency = (
                None
                if resolved is None
                else (resolved * self.slide + window - segment.start)
                / recording.sampling_rate_hz
                * 1e3
            )
            records.append(
                TransitionRecord(
                    label=segment.label,
                    onset_sample=segment.start,
                    first_window=first,
                    resolved_window=resolved,
                    lag_windows=lag,
                    latency_ms=latency,
                )
            )
        return tuple(records)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        recording: SyntheticRecording,
        scenario: Optional[Scenario] = None,
    ) -> EvalReport:
        """Stream ``recording`` (optionally corrupted) and grade it.

        The scenario corrupts only the signal; grading always uses the
        clean recording's ground truth.
        """
        corrupted = scenario.apply(recording) if scenario is not None else recording
        session, closer = self._open()
        try:
            decisions = session.run(corrupted.signal, chunk_size=self.chunk_size)
        finally:
            closer()
        window = session.windower.window
        truth = recording.window_labels(window, self.slide)
        if len(decisions) != len(truth):
            raise AssertionError(
                f"stream emitted {len(decisions)} decisions but the offline "
                f"geometry holds {len(truth)} windows — windower and "
                f"sliding_windows disagree"
            )
        raw = [d.label for d in decisions]
        smoothed = [d.smoothed_label for d in decisions]
        replayed = _replay_depths(raw, self.vote_depths)
        if replayed[self.smoothing] != smoothed:
            raise AssertionError(
                "MajorityVoter replay at the session's own depth disagrees "
                "with the session's smoothed labels — vote semantics drifted"
            )
        accuracy_by_depth = {
            depth: float(np.mean(np.asarray(labels) == truth)) if len(truth) else 0.0
            for depth, labels in replayed.items()
        }
        num_degraded = sum(1 for d in decisions if d.degraded)
        transitions = self._transitions(recording, smoothed, window)
        lags = [t.lag_windows for t in transitions if t.lag_windows is not None]
        latencies = [t.latency_ms for t in transitions if t.latency_ms is not None]
        return EvalReport(
            recording=recording.name,
            scenario=scenario.name if scenario is not None else "clean",
            num_windows=len(decisions),
            vote_depth=self.smoothing,
            window_accuracy=(
                float(np.mean(np.asarray(raw) == truth)) if len(truth) else 0.0
            ),
            smoothed_accuracy=accuracy_by_depth[self.smoothing],
            accuracy_by_depth=accuracy_by_depth,
            degraded_rate=num_degraded / len(decisions) if decisions else 0.0,
            num_degraded=num_degraded,
            transitions=transitions,
            unresolved_transitions=sum(
                1 for t in transitions if t.resolved_window is None
            ),
            mean_transition_lag_windows=float(np.mean(lags)) if lags else None,
            max_transition_lag_windows=int(max(lags)) if lags else None,
            mean_decision_latency_ms=float(np.mean(latencies)) if latencies else None,
            max_decision_latency_ms=float(max(latencies)) if latencies else None,
        )

    def evaluate_suite(
        self,
        recording: SyntheticRecording,
        suite: ScenarioSuite,
    ) -> Dict[str, EvalReport]:
        """One report per scenario in ``suite``, keyed by scenario name."""
        return {scenario.name: self.evaluate(recording, scenario) for scenario in suite}
