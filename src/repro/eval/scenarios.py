"""Reproducible corruption scenarios for robustness evaluation.

A :class:`Scenario` is a named, seeded corruption applied to a
:class:`~repro.eval.recordings.SyntheticRecording`'s signal — never to its
labels or boundaries, so the ground truth of a corrupted recording stays
exactly that of the clean one.  The corruptions reuse the training-time
augmentation primitives of :mod:`repro.data.augmentation` wherever one
exists (noise via :func:`~repro.data.augmentation.jitter`, random
electrode loss via :func:`~repro.data.augmentation.channel_dropout`), so
the robustness study stresses the serving tier with the *same* physical
perturbation model the training tier augments against.

Scenario taxonomy (``kind``):

``clean``
    Identity — the baseline every corrupted number is read against.
``noise``
    Additive Gaussian measurement noise of strength ``noise_sigma``
    (:func:`repro.data.augmentation.jitter` on the whole recording).
``dead_electrodes``
    ``num_dead`` channels flatline to
    :data:`~repro.data.augmentation.CHANNEL_FILL_VALUE` for the whole
    recording — the corruption the session layer's dead-electrode
    detector is built to catch, so its decisions are expected to come
    back ``degraded=True`` (:attr:`Scenario.expects_degraded`).
``dropout``
    Intermittent electrode loss: per-chunk random channel dropout with
    probability ``dropout_probability``, the streaming analogue of the
    training transform.  Short flatline bursts below the session layer's
    ``dead_channel_min_samples`` stay *undetected* by design.
``drift``
    Session-to-session transfer: a per-channel gain (around 1, spread
    ``drift_gain_sigma``) and offset (spread ``drift_offset_sigma``)
    drawn once per recording and applied throughout — the donning/
    doffing covariate shift between recording sessions.

Every scenario draws exclusively from a generator seeded with
``(scenario seed, recording seed-material)``, so a given
(scenario, recording) pair corrupts bitwise-identically across runs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..data.augmentation import CHANNEL_FILL_VALUE, channel_dropout, jitter
from .recordings import SyntheticRecording

__all__ = ["Scenario", "ScenarioSuite", "SCENARIO_KINDS"]

#: Every corruption kind :class:`Scenario` understands.
SCENARIO_KINDS = ("clean", "noise", "dead_electrodes", "dropout", "drift")


@dataclass(frozen=True)
class Scenario:
    """One named, seeded corruption of a labelled recording."""

    name: str
    kind: str = "clean"
    #: ``noise``: std-dev of the additive Gaussian noise.
    noise_sigma: float = 0.25
    #: ``dead_electrodes``: how many channels flatline (lowest indices
    #: are chosen deterministically when ``dead_channels`` is None).
    num_dead: int = 1
    #: ``dead_electrodes``: explicit channel indices; overrides ``num_dead``.
    dead_channels: Optional[Tuple[int, ...]] = None
    #: ``dropout``: per-chunk, per-channel loss probability.
    dropout_probability: float = 0.15
    #: ``dropout``: chunk granularity of the intermittent loss (samples).
    dropout_chunk_samples: int = 16
    #: ``drift``: std-dev of the per-channel multiplicative gain around 1.
    drift_gain_sigma: float = 0.15
    #: ``drift``: std-dev of the per-channel additive offset.
    drift_offset_sigma: float = 0.2
    #: Base seed mixed with the recording identity for reproducibility.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(
                f"unknown scenario kind '{self.kind}'; expected one of {SCENARIO_KINDS}"
            )
        if self.kind == "noise" and self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        if self.kind == "dead_electrodes" and self.dead_channels is None and self.num_dead < 1:
            raise ValueError("dead_electrodes needs num_dead >= 1 or explicit channels")
        if self.kind == "dropout":
            if not 0.0 <= self.dropout_probability < 1.0:
                raise ValueError("dropout_probability must lie in [0, 1)")
            if self.dropout_chunk_samples < 1:
                raise ValueError("dropout_chunk_samples must be >= 1")

    @property
    def expects_degraded(self) -> bool:
        """Whether the session layer is *expected* to flag decisions degraded.

        Only whole-recording flatlines trip the dead-electrode detector by
        construction; intermittent dropout may or may not, depending on
        burst length versus ``dead_channel_min_samples``.
        """
        return self.kind == "dead_electrodes"

    def _rng(self, recording: SyntheticRecording) -> np.random.Generator:
        # Mix the scenario seed with the recording's identity (name) so
        # the same pair always corrupts identically, while two recordings
        # under one scenario stay decorrelated.
        return np.random.default_rng(
            (self.seed, zlib.crc32(recording.name.encode("utf-8")))
        )

    def dead_channel_indices(self, num_channels: int) -> Tuple[int, ...]:
        """The channels a ``dead_electrodes`` scenario flatlines."""
        if self.kind != "dead_electrodes":
            return ()
        if self.dead_channels is not None:
            channels = tuple(int(c) for c in self.dead_channels)
        else:
            channels = tuple(range(min(self.num_dead, num_channels)))
        for channel in channels:
            if not 0 <= channel < num_channels:
                raise ValueError(
                    f"dead channel {channel} outside [0, {num_channels})"
                )
        return channels

    def apply(self, recording: SyntheticRecording) -> SyntheticRecording:
        """The corrupted copy of ``recording`` (labels untouched)."""
        corrupted_name = f"{recording.name}/{self.name}"
        if self.kind == "clean":
            return recording.with_signal(recording.signal, name=corrupted_name)
        rng = self._rng(recording)
        signal = recording.signal
        if self.kind == "noise":
            # jitter operates on (windows, channels, samples) batches;
            # the whole recording is one "window".
            corrupted = jitter(signal[None], rng, sigma=self.noise_sigma)[0]
        elif self.kind == "dead_electrodes":
            corrupted = signal.copy()
            corrupted[list(self.dead_channel_indices(recording.num_channels))] = (
                CHANNEL_FILL_VALUE
            )
        elif self.kind == "dropout":
            # Chop the recording into short chunks and run the training
            # transform over them as a batch: each chunk independently
            # loses channels, giving intermittent (not permanent) loss.
            chunk = self.dropout_chunk_samples
            total = signal.shape[1]
            full = (total // chunk) * chunk
            if full:
                chunks = signal[:, :full].reshape(
                    signal.shape[0], full // chunk, chunk
                )
                chunks = np.transpose(chunks, (1, 0, 2))
                dropped = channel_dropout(
                    chunks, rng, probability=self.dropout_probability
                )
                head = np.transpose(dropped, (1, 0, 2)).reshape(signal.shape[0], full)
            else:
                head = signal[:, :0]
            corrupted = np.concatenate([head, signal[:, full:]], axis=1)
        elif self.kind == "drift":
            gains = rng.normal(
                loc=1.0, scale=self.drift_gain_sigma, size=(recording.num_channels, 1)
            )
            offsets = rng.normal(
                scale=self.drift_offset_sigma, size=(recording.num_channels, 1)
            )
            corrupted = signal * np.clip(gains, 0.1, None) + offsets
        else:  # pragma: no cover - guarded by __post_init__
            raise AssertionError(self.kind)
        return recording.with_signal(corrupted, name=corrupted_name)


class ScenarioSuite:
    """An ordered, name-addressable collection of scenarios."""

    def __init__(self, scenarios: Sequence[Scenario]) -> None:
        self._scenarios: Dict[str, Scenario] = {}
        for scenario in scenarios:
            if scenario.name in self._scenarios:
                raise ValueError(f"duplicate scenario name '{scenario.name}'")
            self._scenarios[scenario.name] = scenario
        if not self._scenarios:
            raise ValueError("a suite needs at least one scenario")

    @classmethod
    def default(cls, *, seed: int = 0) -> "ScenarioSuite":
        """The standard robustness sweep: one scenario per taxonomy kind."""
        return cls(
            [
                Scenario("clean", kind="clean", seed=seed),
                Scenario("noise", kind="noise", noise_sigma=0.25, seed=seed),
                Scenario("dead_electrode", kind="dead_electrodes", num_dead=1, seed=seed),
                Scenario("dropout", kind="dropout", dropout_probability=0.15, seed=seed),
                Scenario("drift", kind="drift", seed=seed),
            ]
        )

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self._scenarios.values())

    def __len__(self) -> int:
        return len(self._scenarios)

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __getitem__(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"no scenario '{name}'; have {sorted(self._scenarios)}"
            ) from None

    @property
    def names(self) -> Tuple[str, ...]:
        """Scenario names in insertion order."""
        return tuple(self._scenarios)

    def apply_all(
        self, recording: SyntheticRecording
    ) -> Dict[str, SyntheticRecording]:
        """Corrupt ``recording`` under every scenario, keyed by name."""
        return {name: s.apply(recording) for name, s in self._scenarios.items()}
