"""Fig. 2 — accuracy on the five testing sessions (6-10).

The paper's Fig. 2 plots, for every testing session, the accuracy averaged
over the 10 subjects of: Bioformer (h=8, d=1), Bioformer (h=2, d=2) and
TEMPONet, each trained with the standard subject-specific protocol and with
the new inter-subject pre-training.  The qualitative findings are:

* accuracy degrades for sessions farther from the training period;
* TEMPONet is slightly ahead of the Bioformers without pre-training;
* pre-training helps every model, and helps the Bioformers more, shrinking
  the gap.

This driver reproduces the same series on the synthetic surrogate at the
requested scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..data.splits import subject_split
from ..training import run_two_step_protocol, train_subject_specific
from ..utils.tables import format_table
from .common import ExperimentContext, Scale, build_architecture, make_context

__all__ = ["Figure2Result", "run_figure2", "render_figure2"]

#: (architecture name, with pre-training) pairs plotted in Fig. 2.
FIG2_SERIES: Tuple[Tuple[str, bool], ...] = (
    ("bio1", False),
    ("bio2", False),
    ("temponet", False),
    ("bio1", True),
    ("bio2", True),
    ("temponet", True),
)


@dataclass
class Figure2Result:
    """Per-session accuracy series for every (architecture, protocol) pair."""

    scale: Scale
    sessions: Tuple[int, ...]
    #: ``series[(name, pretrained)][session] = mean accuracy across subjects``.
    series: Dict[Tuple[str, bool], Dict[int, float]] = field(default_factory=dict)
    #: Overall test accuracy per (name, pretrained) pair.
    overall: Dict[Tuple[str, bool], float] = field(default_factory=dict)

    def average_accuracy(self, name: str, pretrained: bool) -> float:
        """Mean accuracy over sessions for one series."""
        values = list(self.series[(name, pretrained)].values())
        return float(np.mean(values)) if values else 0.0

    def pretraining_gain(self, name: str) -> float:
        """Accuracy gain of the two-step protocol for one architecture."""
        return self.overall.get((name, True), 0.0) - self.overall.get((name, False), 0.0)


def run_figure2(
    context: Optional[ExperimentContext] = None,
    architectures: Iterable[str] = ("bio1", "bio2", "temponet"),
    subjects: Optional[Iterable[int]] = None,
    patch_size: int = 10,
) -> Figure2Result:
    """Train every architecture with both protocols and collect Fig. 2 data.

    Parameters
    ----------
    context:
        Experiment context (defaults to the SMALL scale).
    architectures:
        Which of the three paper architectures to include.
    subjects:
        Subjects to average over (defaults to every subject in the context).
    patch_size:
        Front-end filter dimension of the Bioformers (10 in Fig. 2).
    """
    context = context if context is not None else make_context(Scale.SMALL)
    subject_list = list(subjects) if subjects is not None else list(context.subjects)
    sessions = context.dataset.config.testing_sessions
    result = Figure2Result(scale=context.scale, sessions=sessions)

    for name in architectures:
        for pretrained in (False, True):
            per_session_accumulator: Dict[int, List[float]] = {s: [] for s in sessions}
            overall: List[float] = []
            for subject in subject_list:
                split = subject_split(context.dataset, subject, include_pretrain=pretrained)
                model = build_architecture(name, context, patch_size=patch_size, seed=subject)
                if pretrained:
                    outcome = run_two_step_protocol(
                        model, split, context.protocol, num_classes=context.num_classes
                    )
                else:
                    outcome = train_subject_specific(
                        model, split, context.protocol, num_classes=context.num_classes
                    )
                overall.append(outcome.test_accuracy)
                for session, value in outcome.per_session_accuracy.items():
                    per_session_accumulator[session].append(value)
            result.series[(name, pretrained)] = {
                session: float(np.mean(values)) for session, values in per_session_accumulator.items()
            }
            result.overall[(name, pretrained)] = float(np.mean(overall))
    return result


def render_figure2(result: Figure2Result) -> str:
    """Render the Fig. 2 series as a text table (sessions as columns)."""
    headers = ["architecture", "pre-training"] + [f"session {s}" for s in result.sessions] + ["mean"]
    rows = []
    for (name, pretrained), series in result.series.items():
        rows.append(
            [name, "yes" if pretrained else "no"]
            + [f"{100 * series[s]:.1f}%" for s in result.sessions]
            + [f"{100 * result.average_accuracy(name, pretrained):.1f}%"]
        )
    return format_table(headers, rows, title="Fig. 2 — accuracy per testing session")
