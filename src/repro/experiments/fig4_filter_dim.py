"""Fig. 4 — impact of the front-end 1-D convolutional filter dimension.

The paper sweeps the patch/filter dimension over {1, 5, 10, 20, 30} for
both Bioformer variants and both training protocols.  Findings reproduced
here:

* a filter dimension of 10 is the accuracy sweet spot, despite producing a
  shorter token sequence (and therefore fewer operations) than 1 or 5;
* larger filters (20, 30) lose some accuracy but cut the attention cost
  roughly linearly — the deployment trade-off exploited in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..data.splits import subject_split
from ..models import PAPER_FILTER_DIMENSIONS
from ..training import run_two_step_protocol, train_subject_specific
from ..utils.tables import format_table
from .common import ExperimentContext, Scale, build_architecture, make_context

__all__ = ["Figure4Result", "run_figure4", "render_figure4", "scaled_filter_dimensions"]


def scaled_filter_dimensions(context: ExperimentContext) -> Tuple[int, ...]:
    """The paper's filter sweep, restricted to values the window allows.

    At the paper scale this is exactly ``(1, 5, 10, 20, 30)``; the reduced
    scale presets keep every value that still yields at least two tokens.
    """
    window = context.window_samples
    return tuple(f for f in PAPER_FILTER_DIMENSIONS if window // f >= 2)


@dataclass
class Figure4Result:
    """Accuracy of every (variant, protocol, filter dimension) combination."""

    scale: Scale
    filter_dimensions: Tuple[int, ...]
    #: ``accuracy[(variant, pretrained)][filter_dim] = mean accuracy``.
    accuracy: Dict[Tuple[str, bool], Dict[int, float]] = field(default_factory=dict)

    def best_filter(self, variant: str, pretrained: bool) -> int:
        """Filter dimension with the best accuracy for one series."""
        series = self.accuracy[(variant, pretrained)]
        return max(series, key=series.get)


def run_figure4(
    context: Optional[ExperimentContext] = None,
    variants: Iterable[str] = ("bio1", "bio2"),
    protocols: Iterable[bool] = (False, True),
    subjects: Optional[Iterable[int]] = None,
    filter_dimensions: Optional[Iterable[int]] = None,
) -> Figure4Result:
    """Sweep the front-end filter dimension for the requested variants."""
    context = context if context is not None else make_context(Scale.SMALL)
    subject_list = list(subjects) if subjects is not None else list(context.subjects)
    filters = (
        tuple(filter_dimensions)
        if filter_dimensions is not None
        else scaled_filter_dimensions(context)
    )
    result = Figure4Result(scale=context.scale, filter_dimensions=filters)
    for variant in variants:
        for pretrained in protocols:
            series: Dict[int, float] = {}
            for filter_dimension in filters:
                accuracies = []
                for subject in subject_list:
                    split = subject_split(context.dataset, subject, include_pretrain=pretrained)
                    model = build_architecture(
                        variant, context, patch_size=filter_dimension, seed=subject
                    )
                    if pretrained:
                        outcome = run_two_step_protocol(
                            model, split, context.protocol, num_classes=context.num_classes
                        )
                    else:
                        outcome = train_subject_specific(
                            model, split, context.protocol, num_classes=context.num_classes
                        )
                    accuracies.append(outcome.test_accuracy)
                series[filter_dimension] = float(np.mean(accuracies))
            result.accuracy[(variant, pretrained)] = series
    return result


def render_figure4(result: Figure4Result) -> str:
    """Render the filter-dimension sweep as a text table."""
    headers = ["variant", "pre-training"] + [f"filter {f}" for f in result.filter_dimensions]
    rows = []
    for (variant, pretrained), series in result.accuracy.items():
        rows.append(
            [variant, "yes" if pretrained else "no"]
            + [f"{100 * series[f]:.1f}%" for f in result.filter_dimensions]
        )
    return format_table(headers, rows, title="Fig. 4 — accuracy vs front-end filter dimension")
