"""``repro.experiments`` — one driver per paper figure/table.

==========  ====================================================  =====================
Experiment  Paper result                                          Driver
==========  ====================================================  =====================
Fig. 2      accuracy per testing session, 3 models x 2 protocols  :mod:`.fig2_sessions`
Fig. 3      per-subject pre-training gain                         :mod:`.fig3_pretraining`
Fig. 4      accuracy vs front-end filter dimension                :mod:`.fig4_filter_dim`
Fig. 5      accuracy vs MACs / parameters Pareto spaces           :mod:`.fig5_pareto`
Table I     quantised deployment on GAP8                          :mod:`.table1_gap8`
Sec. III-A  depth x heads grid search                             :mod:`.grid_search`
==========  ====================================================  =====================
"""

from .common import ExperimentContext, Scale, build_architecture, make_context
from .fig2_sessions import FIG2_SERIES, Figure2Result, render_figure2, run_figure2
from .fig3_pretraining import Figure3Result, render_figure3, run_figure3
from .fig4_filter_dim import (
    Figure4Result,
    render_figure4,
    run_figure4,
    scaled_filter_dimensions,
)
from .fig5_pareto import (
    PAPER_REFERENCE_ACCURACY,
    ComplexityPoint,
    Figure5Result,
    render_figure5,
    run_figure5,
)
from .grid_search import GridSearchResult, render_grid_search, run_grid_search
from .table1_gap8 import (
    TABLE1_CONFIGURATIONS,
    Table1Result,
    Table1Row,
    render_table1,
    run_table1,
)

__all__ = [
    "Scale",
    "ExperimentContext",
    "make_context",
    "build_architecture",
    "FIG2_SERIES",
    "Figure2Result",
    "run_figure2",
    "render_figure2",
    "Figure3Result",
    "run_figure3",
    "render_figure3",
    "Figure4Result",
    "run_figure4",
    "render_figure4",
    "scaled_filter_dimensions",
    "Figure5Result",
    "ComplexityPoint",
    "PAPER_REFERENCE_ACCURACY",
    "run_figure5",
    "render_figure5",
    "GridSearchResult",
    "run_grid_search",
    "render_grid_search",
    "TABLE1_CONFIGURATIONS",
    "Table1Row",
    "Table1Result",
    "run_table1",
    "render_table1",
]
