"""Table I — quantised Pareto architectures deployed on GAP8.

The paper's Table I reports, for five Bioformer configurations and
TEMPONet, the int8 memory footprint, MAC count, latency and energy on the
GAP8 MCU (100 MHz @ 1 V, 51 mW) and the accuracy after quantisation-aware
fine-tuning.  Headline numbers: Bioformer (h=8, d=1, filter 10) fits in
94.2 kB and costs 0.139 mJ / 2.72 ms per inference — 8x less energy than
TEMPONet — and the fastest configuration sustains ~257 h on a 1000 mAh
battery versus ~54 h for TEMPONet.

This driver reproduces every column: the complexity/latency/energy columns
come from the analytical GAP8 model at the paper's input geometry, and the
quantised-accuracy column from actually training, QAT-fine-tuning and
int8-evaluating each architecture on the synthetic surrogate at the
requested scale (set ``measure_accuracy=False`` to regenerate only the
deployment columns, which takes milliseconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..data.splits import subject_split
from ..hw import BatteryConfig, DeploymentRecord, GAP8Config, deploy
from ..models import BioformerConfig, TEMPONetConfig
from ..quant import QATConfig, evaluate_quantized, quantization_aware_finetune
from ..training import run_two_step_protocol
from ..utils.tables import format_table
from .common import ExperimentContext, Scale, build_architecture, make_context

__all__ = ["TABLE1_CONFIGURATIONS", "Table1Row", "Table1Result", "run_table1", "render_table1"]

#: The rows of Table I: (label, variant, filter dimension).  TEMPONet has no
#: front-end filter (0 placeholder).
TABLE1_CONFIGURATIONS: Tuple[Tuple[str, str, int], ...] = (
    ("Bio1, wind=30", "bio1", 30),
    ("Bio1, wind=20", "bio1", 20),
    ("Bio1, wind=10", "bio1", 10),
    ("Bio2, wind=30", "bio2", 30),
    ("Bio2, wind=10", "bio2", 10),
    ("TEMPONet", "temponet", 0),
)


@dataclass
class Table1Row:
    """One row of the reproduced Table I."""

    label: str
    memory_kb: float
    mmacs: float
    latency_ms: float
    energy_mj: float
    quantized_accuracy: Optional[float]
    float_accuracy: Optional[float]
    battery_life_hours: float
    real_time: bool


@dataclass
class Table1Result:
    """All rows plus the derived headline ratios."""

    scale: Scale
    rows: List[Table1Row] = field(default_factory=list)
    records: Dict[str, DeploymentRecord] = field(default_factory=dict)

    def row(self, label: str) -> Table1Row:
        """Look a row up by its label."""
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)

    def energy_ratio(self, reference: str = "TEMPONet", target: str = "Bio1, wind=10") -> float:
        """Energy reduction factor of ``target`` vs ``reference`` (paper: 8.0x)."""
        return self.row(reference).energy_mj / self.row(target).energy_mj

    def memory_ratio(self, reference: str = "TEMPONet", target: str = "Bio1, wind=10") -> float:
        """Memory reduction factor of ``target`` vs ``reference`` (paper: 4.9x)."""
        return self.row(reference).memory_kb / self.row(target).memory_kb


def _paper_geometry_config(variant: str, filter_dimension: int):
    """Architecture config at the paper's input geometry (for deployment columns)."""
    if variant == "bio1":
        return BioformerConfig(depth=1, num_heads=8, patch_size=filter_dimension)
    if variant == "bio2":
        return BioformerConfig(depth=2, num_heads=2, patch_size=filter_dimension)
    if variant == "temponet":
        return TEMPONetConfig()
    raise KeyError(variant)


def run_table1(
    context: Optional[ExperimentContext] = None,
    configurations: Iterable[Tuple[str, str, int]] = TABLE1_CONFIGURATIONS,
    measure_accuracy: bool = True,
    subject: int = 1,
    gap8: Optional[GAP8Config] = None,
    battery: Optional[BatteryConfig] = None,
    inference_period_s: float = 15e-3,
) -> Table1Result:
    """Reproduce Table I.

    Parameters
    ----------
    context:
        Experiment context used for the accuracy column (ignored when
        ``measure_accuracy`` is False).
    configurations:
        The (label, variant, filter) rows to include.
    measure_accuracy:
        Whether to train + QAT + int8-evaluate each architecture on the
        synthetic surrogate (slow) or leave the accuracy column empty.
    subject:
        Which subject the accuracy column is measured on.
    gap8, battery, inference_period_s:
        Deployment-target parameters (defaults are the paper's).
    """
    gap8 = gap8 if gap8 is not None else GAP8Config()
    result = Table1Result(scale=context.scale if context is not None else Scale.PAPER)

    split = None
    qat_config = None
    if measure_accuracy:
        context = context if context is not None else make_context(Scale.SMALL)
        split = subject_split(context.dataset, subject)
        qat_config = (
            QATConfig.tiny() if context.scale is Scale.TINY else QATConfig.small()
        )

    for label, variant, filter_dimension in configurations:
        quantized_accuracy = None
        float_accuracy = None
        if measure_accuracy and split is not None:
            patch = filter_dimension if filter_dimension else 10
            model = build_architecture(variant, context, patch_size=patch, seed=subject)
            outcome = run_two_step_protocol(
                model, split, context.protocol, num_classes=context.num_classes
            )
            float_accuracy = outcome.test_accuracy
            quantization_aware_finetune(model, split.train, qat_config)
            quantized_accuracy = evaluate_quantized(
                model,
                split.test,
                calibration=split.train,
                num_classes=context.num_classes,
            ).accuracy

        record = deploy(
            _paper_geometry_config(variant, filter_dimension),
            gap8=gap8,
            quantized_accuracy=quantized_accuracy,
            inference_period_s=inference_period_s,
            battery=battery,
        )
        result.records[label] = record
        result.rows.append(
            Table1Row(
                label=label,
                memory_kb=record.memory_kilobytes,
                mmacs=record.mmacs,
                latency_ms=record.latency_ms,
                energy_mj=record.energy_mj,
                quantized_accuracy=quantized_accuracy,
                float_accuracy=float_accuracy,
                battery_life_hours=record.duty_cycle.battery_life_hours,
                real_time=record.duty_cycle.real_time,
            )
        )
    return result


def render_table1(result: Table1Result) -> str:
    """Render the reproduced Table I as a text table."""
    headers = ["Network", "Memory", "MMAC", "Lat. [ms]", "E. [mJ]", "Q. Acc.", "Battery [h]"]
    rows = []
    for row in result.rows:
        rows.append(
            [
                row.label,
                f"{row.memory_kb:.1f} kB",
                f"{row.mmacs:.1f}",
                f"{row.latency_ms:.2f}",
                f"{row.energy_mj:.3f}",
                f"{100 * row.quantized_accuracy:.2f}%" if row.quantized_accuracy is not None else "-",
                f"{row.battery_life_hours:.0f}" + ("" if row.real_time else " (not RT)"),
            ]
        )
    return format_table(
        headers, rows, title="Table I — quantised Pareto architectures on GAP8 (100 MHz @ 1 V)"
    )
