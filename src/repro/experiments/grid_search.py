"""Sec. III-A — depth x heads architecture grid search.

The paper selects its two reference Bioformers (h=8, d=1 and h=2, d=2)
from a grid search over depth in {1, 2, 3, 4} and heads in {1, 2, 4, 8},
picking "the architectures with the best trade-off of accuracy vs.
parameters".  This driver reproduces that search: it trains every grid
point with the standard protocol, profiles its complexity, and reports the
accuracy-vs-parameters Pareto frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..analysis.pareto import ParetoPoint, pareto_frontier
from ..data.splits import subject_split
from ..hw.profiler import profile_bioformer
from ..models import BioformerConfig
from ..models.bioformer import Bioformer
from ..training import train_subject_specific
from ..utils.tables import format_table
from .common import ExperimentContext, Scale, make_context

__all__ = ["GridSearchResult", "run_grid_search", "render_grid_search"]


@dataclass
class GridSearchResult:
    """Accuracy and complexity of every (depth, heads) grid point."""

    scale: Scale
    patch_size: int
    #: ``accuracy[(depth, heads)] = mean accuracy`` on the evaluation subjects.
    accuracy: Dict[Tuple[int, int], float] = field(default_factory=dict)
    #: ``params[(depth, heads)]`` and ``macs[(depth, heads)]`` at paper geometry.
    params: Dict[Tuple[int, int], int] = field(default_factory=dict)
    macs: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def pareto(self) -> List[ParetoPoint]:
        """Accuracy-vs-parameters Pareto frontier of the grid."""
        points = [
            ParetoPoint(f"d={d},h={h}", float(self.params[(d, h)]), self.accuracy[(d, h)])
            for (d, h) in self.accuracy
        ]
        return pareto_frontier(points)

    def best(self) -> Tuple[int, int]:
        """Grid point with the highest accuracy."""
        return max(self.accuracy, key=self.accuracy.get)


def run_grid_search(
    context: Optional[ExperimentContext] = None,
    depths: Iterable[int] = (1, 2, 3, 4),
    heads: Iterable[int] = (1, 2, 4, 8),
    subjects: Optional[Iterable[int]] = None,
    patch_size: int = 10,
) -> GridSearchResult:
    """Train every (depth, heads) Bioformer and collect the grid results."""
    context = context if context is not None else make_context(Scale.SMALL)
    subject_list = list(subjects) if subjects is not None else [context.subjects[0]]
    result = GridSearchResult(scale=context.scale, patch_size=patch_size)
    window = context.window_samples
    patch = min(patch_size, max(window // 2, 1))

    for depth in depths:
        for num_heads in heads:
            accuracies = []
            for subject in subject_list:
                split = subject_split(context.dataset, subject, include_pretrain=False)
                config = BioformerConfig(
                    num_channels=context.num_channels,
                    window_samples=window,
                    num_classes=context.num_classes,
                    patch_size=patch,
                    depth=depth,
                    num_heads=num_heads,
                    seed=subject,
                )
                model = Bioformer(config)
                outcome = train_subject_specific(
                    model, split, context.protocol, num_classes=context.num_classes
                )
                accuracies.append(outcome.test_accuracy)
            result.accuracy[(depth, num_heads)] = float(np.mean(accuracies))
            paper_profile = profile_bioformer(
                BioformerConfig(depth=depth, num_heads=num_heads, patch_size=patch_size)
            )
            result.params[(depth, num_heads)] = paper_profile.total_params
            result.macs[(depth, num_heads)] = paper_profile.total_macs
    return result


def render_grid_search(result: GridSearchResult) -> str:
    """Render the grid as a text table sorted by accuracy."""
    headers = ["depth", "heads", "accuracy", "params (k)", "MMAC", "Pareto"]
    frontier = {point.label for point in result.pareto()}
    rows = []
    for (depth, num_heads), accuracy in sorted(
        result.accuracy.items(), key=lambda item: -item[1]
    ):
        label = f"d={depth},h={num_heads}"
        rows.append(
            [
                depth,
                num_heads,
                f"{100 * accuracy:.2f}%",
                f"{result.params[(depth, num_heads)] / 1e3:.1f}",
                f"{result.macs[(depth, num_heads)] / 1e6:.2f}",
                "*" if label in frontier else "",
            ]
        )
    return format_table(headers, rows, title="Sec. III-A — depth x heads grid search")
