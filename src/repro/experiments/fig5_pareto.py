"""Fig. 5 — accuracy vs complexity Pareto spaces.

Fig. 5 of the paper places every swept Bioformer (both variants, all
front-end filter dimensions) and TEMPONet in two planes: accuracy vs MAC
operations (Fig. 5a) and accuracy vs parameter count (Fig. 5b).  The key
findings:

* apart from the pre-trained TEMPONet at the very top, every Pareto point
  is a Bioformer;
* the most accurate Bioformer (h=8, d=1, filter 10) needs ~4.9x fewer
  operations than TEMPONet;
* the lightest Pareto Bioformer (h=2, d=2, filter 10) is a further ~3.3x
  smaller (~16x vs TEMPONet) at a modest accuracy cost;
* the filter dimension barely moves the parameter count (it only affects
  the first layer), so the points collapse horizontally in Fig. 5b.

Complexity (MACs / parameters) is always evaluated analytically at the
paper's input geometry (14 channels x 300 samples); accuracy comes either
from a supplied measurement dictionary (e.g. the Fig. 4 sweep) or from the
paper's reported values, so the complexity relationships can be examined
without re-training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.pareto import ParetoPoint, pareto_frontier
from ..hw.profiler import profile_bioformer, profile_temponet
from ..models import BioformerConfig, TEMPONetConfig
from ..utils.tables import format_table

__all__ = [
    "PAPER_REFERENCE_ACCURACY",
    "ComplexityPoint",
    "Figure5Result",
    "run_figure5",
    "render_figure5",
]

#: Reference accuracies reported by the paper (used when no measured
#: accuracies are supplied): overall NinaPro DB6 accuracy of the filter-10
#: models with/without pre-training, and rough read-offs of Fig. 4 for the
#: other filter dimensions.
PAPER_REFERENCE_ACCURACY: Dict[Tuple[str, int, bool], float] = {
    ("bio1", 1, True): 0.647,
    ("bio1", 5, True): 0.650,
    ("bio1", 10, True): 0.6573,
    ("bio1", 20, True): 0.640,
    ("bio1", 30, True): 0.629,
    ("bio1", 10, False): 0.6234,
    ("bio2", 1, True): 0.628,
    ("bio2", 5, True): 0.634,
    ("bio2", 10, True): 0.6126,
    ("bio2", 20, True): 0.615,
    ("bio2", 30, True): 0.608,
    ("temponet", 0, False): 0.65,
    ("temponet", 0, True): 0.668,
}


@dataclass
class ComplexityPoint:
    """One architecture with its analytical complexity and accuracy."""

    variant: str
    filter_dimension: int
    pretrained: bool
    macs: int
    params: int
    accuracy: float

    @property
    def label(self) -> str:
        """Human-readable tag."""
        tag = f"{self.variant}"
        if self.filter_dimension:
            tag += f" f={self.filter_dimension}"
        if self.pretrained:
            tag += " (pre-trained)"
        return tag


@dataclass
class Figure5Result:
    """All points of the two Pareto planes."""

    points: List[ComplexityPoint] = field(default_factory=list)

    def pareto_by_macs(self) -> List[ParetoPoint]:
        """Non-dominated points in the accuracy-vs-MACs plane."""
        return pareto_frontier(
            [ParetoPoint(p.label, float(p.macs), p.accuracy) for p in self.points]
        )

    def pareto_by_params(self) -> List[ParetoPoint]:
        """Non-dominated points in the accuracy-vs-parameters plane."""
        return pareto_frontier(
            [ParetoPoint(p.label, float(p.params), p.accuracy) for p in self.points]
        )

    def find(self, variant: str, filter_dimension: int, pretrained: bool) -> ComplexityPoint:
        """Look up a specific point."""
        for point in self.points:
            if (
                point.variant == variant
                and point.filter_dimension == filter_dimension
                and point.pretrained == pretrained
            ):
                return point
        raise KeyError((variant, filter_dimension, pretrained))

    def mac_reduction_vs_temponet(self, variant: str, filter_dimension: int) -> float:
        """MAC reduction factor of one Bioformer w.r.t. TEMPONet (paper: 4.9x)."""
        temponet_macs = next(p.macs for p in self.points if p.variant == "temponet")
        bioformer_macs = self.find(variant, filter_dimension, True).macs
        return temponet_macs / bioformer_macs


def run_figure5(
    accuracies: Optional[Dict[Tuple[str, int, bool], float]] = None,
    filter_dimensions: Iterable[int] = (1, 5, 10, 20, 30),
    window_samples: int = 300,
    num_channels: int = 14,
    num_classes: int = 8,
) -> Figure5Result:
    """Build the Fig. 5 point clouds.

    Parameters
    ----------
    accuracies:
        ``{(variant, filter_dim, pretrained): accuracy}``; missing entries
        fall back to :data:`PAPER_REFERENCE_ACCURACY` and are skipped if
        absent there too.
    filter_dimensions, window_samples, num_channels, num_classes:
        Geometry of the complexity evaluation (defaults: the paper's).
    """
    accuracy_lookup = dict(PAPER_REFERENCE_ACCURACY)
    if accuracies:
        accuracy_lookup.update(accuracies)

    result = Figure5Result()
    variant_settings = {"bio1": (1, 8), "bio2": (2, 2)}
    for variant, (depth, heads) in variant_settings.items():
        for filter_dimension in filter_dimensions:
            profile = profile_bioformer(
                BioformerConfig(
                    num_channels=num_channels,
                    window_samples=window_samples,
                    num_classes=num_classes,
                    patch_size=filter_dimension,
                    depth=depth,
                    num_heads=heads,
                )
            )
            for pretrained in (False, True):
                key = (variant, filter_dimension, pretrained)
                if key not in accuracy_lookup:
                    continue
                result.points.append(
                    ComplexityPoint(
                        variant=variant,
                        filter_dimension=filter_dimension,
                        pretrained=pretrained,
                        macs=profile.total_macs,
                        params=profile.total_params,
                        accuracy=accuracy_lookup[key],
                    )
                )
    temponet_profile = profile_temponet(
        TEMPONetConfig(
            num_channels=num_channels,
            window_samples=window_samples,
            num_classes=num_classes,
        )
    )
    for pretrained in (False, True):
        key = ("temponet", 0, pretrained)
        if key in accuracy_lookup:
            result.points.append(
                ComplexityPoint(
                    variant="temponet",
                    filter_dimension=0,
                    pretrained=pretrained,
                    macs=temponet_profile.total_macs,
                    params=temponet_profile.total_params,
                    accuracy=accuracy_lookup[key],
                )
            )
    return result


def render_figure5(result: Figure5Result) -> str:
    """Render both Pareto planes as text tables."""
    headers = ["model", "MMAC", "params (k)", "accuracy", "Pareto (MACs)", "Pareto (params)"]
    mac_front = {p.label for p in result.pareto_by_macs()}
    param_front = {p.label for p in result.pareto_by_params()}
    rows = []
    for point in sorted(result.points, key=lambda p: p.macs):
        rows.append(
            [
                point.label,
                f"{point.macs / 1e6:.2f}",
                f"{point.params / 1e3:.1f}",
                f"{100 * point.accuracy:.2f}%",
                "*" if point.label in mac_front else "",
                "*" if point.label in param_front else "",
            ]
        )
    return format_table(headers, rows, title="Fig. 5 — accuracy vs complexity Pareto spaces")
