"""Fig. 3 — per-subject benefit of the inter-subject pre-training.

The paper's Fig. 3 compares, subject by subject, the accuracy of Bioformer
(h=8, d=1) trained with the standard protocol against the two-step
protocol.  Findings reproduced here:

* the average accuracy improves with pre-training (+3.39% in the paper);
* the gain is largest for the subjects with the lowest baseline accuracy;
* individual subjects may occasionally degrade (Subj. 6 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

import numpy as np

from ..data.splits import subject_split
from ..training import run_two_step_protocol, train_subject_specific
from ..utils.tables import format_table
from .common import ExperimentContext, Scale, build_architecture, make_context

__all__ = ["Figure3Result", "run_figure3", "render_figure3"]


@dataclass
class Figure3Result:
    """Per-subject standard vs pre-trained accuracies."""

    scale: Scale
    architecture: str
    standard: Dict[int, float] = field(default_factory=dict)
    pretrained: Dict[int, float] = field(default_factory=dict)

    @property
    def gains(self) -> Dict[int, float]:
        """Per-subject accuracy gain of the two-step protocol."""
        return {
            subject: self.pretrained[subject] - self.standard[subject]
            for subject in self.standard
        }

    @property
    def mean_standard(self) -> float:
        """Average standard-training accuracy."""
        return float(np.mean(list(self.standard.values()))) if self.standard else 0.0

    @property
    def mean_gain(self) -> float:
        """Average accuracy gain from pre-training."""
        return float(np.mean(list(self.gains.values()))) if self.standard else 0.0

    def gain_by_baseline(self, threshold: float) -> Dict[str, float]:
        """Mean gain split by whether the baseline is below ``threshold``.

        The paper reports a +6.33% gain for subjects below 60% baseline and
        +0.45% for the others.
        """
        weak = [gain for subject, gain in self.gains.items() if self.standard[subject] < threshold]
        strong = [gain for subject, gain in self.gains.items() if self.standard[subject] >= threshold]
        return {
            "weak_subjects": float(np.mean(weak)) if weak else 0.0,
            "strong_subjects": float(np.mean(strong)) if strong else 0.0,
        }


def run_figure3(
    context: Optional[ExperimentContext] = None,
    architecture: str = "bio1",
    subjects: Optional[Iterable[int]] = None,
    patch_size: int = 10,
) -> Figure3Result:
    """Train ``architecture`` with both protocols for every subject."""
    context = context if context is not None else make_context(Scale.SMALL)
    subject_list = list(subjects) if subjects is not None else list(context.subjects)
    result = Figure3Result(scale=context.scale, architecture=architecture)
    for subject in subject_list:
        split = subject_split(context.dataset, subject)
        standard_model = build_architecture(architecture, context, patch_size=patch_size, seed=subject)
        standard = train_subject_specific(
            standard_model, split, context.protocol, num_classes=context.num_classes
        )
        pretrained_model = build_architecture(
            architecture, context, patch_size=patch_size, seed=subject
        )
        pretrained = run_two_step_protocol(
            pretrained_model, split, context.protocol, num_classes=context.num_classes
        )
        result.standard[subject] = standard.test_accuracy
        result.pretrained[subject] = pretrained.test_accuracy
    return result


def render_figure3(result: Figure3Result) -> str:
    """Render the per-subject comparison as a text table."""
    headers = ["subject", "standard", "pre-training", "gain"]
    rows = []
    for subject in sorted(result.standard):
        rows.append(
            [
                f"Subj.{subject}",
                f"{100 * result.standard[subject]:.2f}%",
                f"{100 * result.pretrained[subject]:.2f}%",
                f"{100 * result.gains[subject]:+.2f}%",
            ]
        )
    rows.append(
        [
            "mean",
            f"{100 * result.mean_standard:.2f}%",
            f"{100 * (result.mean_standard + result.mean_gain):.2f}%",
            f"{100 * result.mean_gain:+.2f}%",
        ]
    )
    return format_table(
        headers, rows, title=f"Fig. 3 — per-subject pre-training gain ({result.architecture})"
    )
