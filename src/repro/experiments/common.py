"""Shared infrastructure of the experiment drivers.

Each figure/table of the paper has a driver module in this package; every
driver accepts a :class:`Scale` preset that controls the dataset geometry
and epoch budgets:

* ``Scale.PAPER`` — the paper's full geometry (documented; hours of NumPy
  compute, not run by the harness);
* ``Scale.SMALL`` — the benchmark-harness preset (minutes);
* ``Scale.TINY``  — the integration-test preset (seconds).

A driver returns a plain dataclass of results plus a ``render()`` helper
producing the text table printed by the benchmark harness and recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..data import NinaProDB6, NinaProDB6Config
from ..models import bioformer_bio1, bioformer_bio2, temponet
from ..training import ProtocolConfig

__all__ = ["Scale", "ExperimentContext", "make_context", "build_architecture"]


class Scale(enum.Enum):
    """Experiment scale presets."""

    PAPER = "paper"
    SMALL = "small"
    TINY = "tiny"


@dataclass
class ExperimentContext:
    """Dataset + protocol bundle shared by the experiment drivers."""

    scale: Scale
    dataset: NinaProDB6
    protocol: ProtocolConfig

    @property
    def window_samples(self) -> int:
        """Model input window length for this scale."""
        return self.dataset.config.window_samples

    @property
    def num_channels(self) -> int:
        """Number of sEMG channels."""
        return self.dataset.config.num_channels

    @property
    def num_classes(self) -> int:
        """Number of gesture classes."""
        return self.dataset.config.num_gestures

    @property
    def subjects(self) -> Tuple[int, ...]:
        """Subject identifiers available at this scale."""
        return self.dataset.config.subjects


def make_context(
    scale: Scale = Scale.SMALL,
    num_subjects: Optional[int] = None,
    seed: int = 2022,
) -> ExperimentContext:
    """Build the dataset and protocol configuration for ``scale``."""
    if scale is Scale.PAPER:
        dataset_config = NinaProDB6Config.paper()
        protocol = ProtocolConfig.paper()
    elif scale is Scale.SMALL:
        dataset_config = NinaProDB6Config.small(
            num_subjects=num_subjects if num_subjects is not None else 3, seed=seed
        )
        protocol = ProtocolConfig.small()
    elif scale is Scale.TINY:
        dataset_config = NinaProDB6Config.tiny(seed=seed)
        protocol = ProtocolConfig.tiny()
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown scale {scale}")
    if num_subjects is not None and scale is not Scale.SMALL:
        dataset_config.num_subjects = num_subjects
    return ExperimentContext(scale=scale, dataset=NinaProDB6(dataset_config), protocol=protocol)


def build_architecture(
    name: str,
    context: ExperimentContext,
    patch_size: int = 10,
    seed: int = 0,
):
    """Instantiate ``"bio1"``, ``"bio2"`` or ``"temponet"`` for a context.

    The patch size is clamped so that the reduced-scale windows always
    produce at least two tokens.
    """
    window = context.window_samples
    patch = min(patch_size, max(window // 2, 1))
    if name == "bio1":
        return bioformer_bio1(
            patch_size=patch,
            window_samples=window,
            num_channels=context.num_channels,
            num_classes=context.num_classes,
            seed=seed,
        )
    if name == "bio2":
        return bioformer_bio2(
            patch_size=patch,
            window_samples=window,
            num_channels=context.num_channels,
            num_classes=context.num_classes,
            seed=seed,
        )
    if name == "temponet":
        return temponet(
            window_samples=window,
            num_channels=context.num_channels,
            num_classes=context.num_classes,
            seed=seed,
        )
    raise KeyError(f"unknown architecture '{name}'")
