"""Post-training quantisation (PTQ) and quantised-model export.

The deployment flow of the paper is: train in fp32, run a few epochs of
quantisation-aware fine-tuning, then export an int8 model for the GAP8
kernels.  This module provides the export/evaluation half of that flow:

* :func:`quantize_parameters` — convert every parameter of a module to
  int8 (symmetric, per-tensor) and report the resulting memory footprint;
* :class:`QuantizedModel` — a frozen bundle of integer parameters plus
  activation scales, able to run *emulated-int8* inference by loading the
  dequantised weights into a float model and fake-quantising activations at
  the module boundaries;
* :func:`evaluate_quantized` — quantised accuracy on a dataset (the
  "Q. Acc." column of Table I).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..data.dataset import ArrayDataset
from ..nn.module import Module
from ..training.metrics import ClassificationReport
from ..training.trainer import evaluate
from .quantizers import (
    MinMaxObserver,
    QuantizationSpec,
    QuantizedTensor,
    compute_scale_zero_point,
    fake_quantize,
    quantize,
)

__all__ = ["QuantizationReport", "QuantizedModel", "quantize_parameters", "evaluate_quantized"]


@dataclass
class QuantizationReport:
    """Summary of a post-training quantisation pass."""

    parameter_count: int
    float_bytes: int
    quantized_bytes: int
    per_parameter_error: Dict[str, float] = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        """Float-to-int size ratio (4.0 for fp32 -> int8)."""
        return self.float_bytes / max(self.quantized_bytes, 1)

    @property
    def quantized_kilobytes(self) -> float:
        """Quantised parameter memory in kB (the paper's "Memory" column)."""
        return self.quantized_bytes / 1024.0


def quantize_parameters(
    model: Module,
    spec: Optional[QuantizationSpec] = None,
) -> Dict[str, QuantizedTensor]:
    """Quantise every parameter of ``model`` (symmetric per-tensor int8 by default)."""
    spec = spec if spec is not None else QuantizationSpec(bits=8, symmetric=True)
    quantized: Dict[str, QuantizedTensor] = {}
    for name, parameter in model.named_parameters():
        values = parameter.data
        scale, zero_point = compute_scale_zero_point(values.min(), values.max(), spec)
        quantized[name] = QuantizedTensor(
            values=quantize(values, scale, zero_point, spec),
            scale=np.asarray(scale),
            zero_point=np.asarray(zero_point),
            spec=spec,
        )
    return quantized


class QuantizedModel:
    """Frozen int8 snapshot of a trained model.

    The snapshot holds the integer parameters and (optionally) an activation
    scale for the model input.  Inference is *emulated*: the dequantised
    weights are loaded back into a float copy of the architecture, and the
    input is fake-quantised — this reproduces the accuracy impact of int8
    deployment without re-implementing every kernel in integer arithmetic
    (the I-BERT kernels in :mod:`repro.quant.ibert` cover the non-linear
    operators, and are validated separately).
    """

    def __init__(
        self,
        model: Module,
        weight_spec: Optional[QuantizationSpec] = None,
        activation_spec: Optional[QuantizationSpec] = None,
    ) -> None:
        self.weight_spec = weight_spec if weight_spec is not None else QuantizationSpec()
        self.activation_spec = (
            activation_spec
            if activation_spec is not None
            else QuantizationSpec(bits=8, symmetric=False)
        )
        self._model = model
        self.parameters = quantize_parameters(model, self.weight_spec)
        self._input_observer = MinMaxObserver(self.activation_spec)
        self._float_state = model.state_dict()

    # ------------------------------------------------------------------ #
    # Calibration
    # ------------------------------------------------------------------ #
    def calibrate(self, dataset: ArrayDataset, max_batches: int = 8, batch_size: int = 128) -> None:
        """Observe input activation ranges on (a subset of) ``dataset``."""
        for index in range(0, min(len(dataset), max_batches * batch_size), batch_size):
            self._input_observer.observe(dataset.windows[index : index + batch_size])

    # ------------------------------------------------------------------ #
    # Emulated-int8 inference
    # ------------------------------------------------------------------ #
    def _load_quantized_weights(self) -> None:
        state = {}
        for name, quantized in self.parameters.items():
            state[name] = quantized.dequantize()
        self._model.load_state_dict({**self._float_state, **state}, strict=False)

    def _restore_float_weights(self) -> None:
        self._model.load_state_dict(self._float_state)

    def _prepare_inputs(self, windows: np.ndarray) -> np.ndarray:
        if not self._input_observer.initialized:
            return windows
        scale, zero_point = self._input_observer.quantization_parameters()
        return fake_quantize(windows, scale, zero_point, self.activation_spec)

    def evaluate(self, dataset: ArrayDataset, num_classes: Optional[int] = None) -> ClassificationReport:
        """Quantised-accuracy evaluation of the snapshot on ``dataset``."""
        quantized_inputs = self._prepare_inputs(dataset.windows)
        quantized_dataset = ArrayDataset(quantized_inputs, dataset.labels, dataset.metadata)
        self._load_quantized_weights()
        try:
            report = evaluate(self._model, quantized_dataset, num_classes=num_classes)
        finally:
            self._restore_float_weights()
        return report

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def report(self) -> QuantizationReport:
        """Memory footprint and per-parameter quantisation error."""
        float_bytes = 0
        quantized_bytes = 0
        errors: Dict[str, float] = {}
        for name, quantized in self.parameters.items():
            original = dict(self._model.named_parameters())[name].data
            reconstruction = quantized.dequantize()
            errors[name] = float(np.sqrt(np.mean((original - reconstruction) ** 2)))
            float_bytes += original.size * 4  # fp32 storage
            quantized_bytes += quantized.nbytes
        return QuantizationReport(
            parameter_count=sum(q.values.size for q in self.parameters.values()),
            float_bytes=float_bytes,
            quantized_bytes=quantized_bytes,
            per_parameter_error=errors,
        )

    @property
    def memory_kilobytes(self) -> float:
        """Int8 parameter memory in kB."""
        return self.report().quantized_kilobytes


def evaluate_quantized(
    model: Module,
    dataset: ArrayDataset,
    calibration: Optional[ArrayDataset] = None,
    num_classes: Optional[int] = None,
    weight_bits: int = 8,
    activation_bits: int = 8,
) -> ClassificationReport:
    """One-call PTQ evaluation: quantise ``model`` and score it on ``dataset``."""
    snapshot = QuantizedModel(
        model,
        weight_spec=QuantizationSpec(bits=weight_bits, symmetric=True),
        activation_spec=QuantizationSpec(bits=activation_bits, symmetric=False),
    )
    snapshot.calibrate(calibration if calibration is not None else dataset)
    return snapshot.evaluate(dataset, num_classes=num_classes)
