"""Uniform affine/symmetric quantizers and range observers.

The paper deploys int8 models produced by quantisation-aware training (QAT):
weights and activations are stored and processed as 8-bit integers on the
GAP8 target.  This module provides the building blocks:

* :class:`QuantizationSpec` — bit-width / signedness / symmetry of a tensor;
* :func:`quantize` / :func:`dequantize` — the affine mapping
  ``q = clamp(round(x / scale) + zero_point)``;
* :func:`fake_quantize` — quantise-dequantise in float, the straight-through
  operator used during QAT;
* :class:`MinMaxObserver` / :class:`MovingAverageObserver` — activation range
  tracking used to calibrate the scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "QuantizationSpec",
    "QuantizedTensor",
    "compute_scale_zero_point",
    "quantize",
    "dequantize",
    "fake_quantize",
    "quantization_error",
    "MinMaxObserver",
    "MovingAverageObserver",
]


@dataclass(frozen=True)
class QuantizationSpec:
    """Describes the integer format of a quantised tensor."""

    bits: int = 8
    symmetric: bool = True
    signed: bool = True
    #: Per-channel quantisation axis (None = per-tensor).
    channel_axis: Optional[int] = None

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 32:
            raise ValueError("bits must lie in [2, 32]")

    @property
    def qmin(self) -> int:
        """Smallest representable integer."""
        if self.signed:
            return -(2 ** (self.bits - 1))
        return 0

    @property
    def qmax(self) -> int:
        """Largest representable integer."""
        if self.signed:
            return 2 ** (self.bits - 1) - 1
        return 2**self.bits - 1

    @property
    def num_levels(self) -> int:
        """Number of representable integer levels."""
        return 2**self.bits


@dataclass
class QuantizedTensor:
    """An integer tensor together with its dequantisation parameters."""

    values: np.ndarray
    scale: np.ndarray
    zero_point: np.ndarray
    spec: QuantizationSpec

    def dequantize(self) -> np.ndarray:
        """Return the float reconstruction of the stored integers."""
        return dequantize(self.values, self.scale, self.zero_point, self.spec)

    @property
    def nbytes(self) -> int:
        """Storage size in bytes (integers only, excluding scales)."""
        return int(self.values.size * np.ceil(self.spec.bits / 8))


def _reduce_axes(shape: Tuple[int, ...], channel_axis: Optional[int]) -> Optional[Tuple[int, ...]]:
    if channel_axis is None:
        return None
    return tuple(axis for axis in range(len(shape)) if axis != channel_axis)


def _reshape_param(param: np.ndarray, shape: Tuple[int, ...], channel_axis: Optional[int]) -> np.ndarray:
    if channel_axis is None:
        return param
    broadcast_shape = [1] * len(shape)
    broadcast_shape[channel_axis] = -1
    return param.reshape(broadcast_shape)


def compute_scale_zero_point(
    minimum: np.ndarray,
    maximum: np.ndarray,
    spec: QuantizationSpec,
) -> Tuple[np.ndarray, np.ndarray]:
    """Derive ``(scale, zero_point)`` from observed value ranges.

    For symmetric quantisation the zero point is fixed at zero and the scale
    covers ``max(|min|, |max|)``; for affine quantisation the full
    ``[min, max]`` interval is mapped onto the integer range.
    """
    minimum = np.minimum(np.asarray(minimum, dtype=np.float64), 0.0)
    maximum = np.maximum(np.asarray(maximum, dtype=np.float64), 0.0)
    if spec.symmetric:
        bound = np.maximum(np.abs(minimum), np.abs(maximum))
        bound = np.where(bound == 0.0, 1e-8, bound)
        scale = bound / max(abs(spec.qmin), spec.qmax)
        zero_point = np.zeros_like(scale)
    else:
        value_range = np.where(maximum - minimum == 0.0, 1e-8, maximum - minimum)
        scale = value_range / (spec.qmax - spec.qmin)
        zero_point = np.round(spec.qmin - minimum / scale)
        zero_point = np.clip(zero_point, spec.qmin, spec.qmax)
    return scale, zero_point


def quantize(
    values: np.ndarray,
    scale: np.ndarray,
    zero_point: np.ndarray,
    spec: QuantizationSpec,
) -> np.ndarray:
    """Quantise float ``values`` to integers according to ``spec``."""
    values = np.asarray(values, dtype=np.float64)
    scale_b = _reshape_param(np.asarray(scale, dtype=np.float64), values.shape, spec.channel_axis)
    zero_b = _reshape_param(np.asarray(zero_point, dtype=np.float64), values.shape, spec.channel_axis)
    quantised = np.round(values / scale_b) + zero_b
    quantised = np.clip(quantised, spec.qmin, spec.qmax)
    dtype = np.int32 if spec.bits > 16 else (np.int16 if spec.bits > 8 else np.int8)
    if not spec.signed:
        dtype = np.uint32 if spec.bits > 16 else (np.uint16 if spec.bits > 8 else np.uint8)
    return quantised.astype(dtype)


def dequantize(
    values: np.ndarray,
    scale: np.ndarray,
    zero_point: np.ndarray,
    spec: QuantizationSpec,
) -> np.ndarray:
    """Reconstruct float values from integers."""
    values = np.asarray(values, dtype=np.float64)
    scale_b = _reshape_param(np.asarray(scale, dtype=np.float64), values.shape, spec.channel_axis)
    zero_b = _reshape_param(np.asarray(zero_point, dtype=np.float64), values.shape, spec.channel_axis)
    return (values - zero_b) * scale_b


def fake_quantize(
    values: np.ndarray,
    scale: np.ndarray,
    zero_point: np.ndarray,
    spec: QuantizationSpec,
) -> np.ndarray:
    """Quantise-dequantise in float (the straight-through QAT operator)."""
    return dequantize(quantize(values, scale, zero_point, spec), scale, zero_point, spec)


def quantization_error(values: np.ndarray, spec: QuantizationSpec) -> float:
    """RMS error introduced by quantising ``values`` with min/max calibration."""
    axes = _reduce_axes(values.shape, spec.channel_axis)
    minimum = values.min(axis=axes) if axes is not None else values.min()
    maximum = values.max(axis=axes) if axes is not None else values.max()
    scale, zero_point = compute_scale_zero_point(minimum, maximum, spec)
    reconstruction = fake_quantize(values, scale, zero_point, spec)
    return float(np.sqrt(np.mean((values - reconstruction) ** 2)))


class MinMaxObserver:
    """Tracks the running min/max of a tensor stream (per-tensor or per-channel)."""

    def __init__(self, spec: Optional[QuantizationSpec] = None) -> None:
        self.spec = spec if spec is not None else QuantizationSpec()
        self.minimum: Optional[np.ndarray] = None
        self.maximum: Optional[np.ndarray] = None

    def observe(self, values: np.ndarray) -> None:
        """Update the tracked range with a new batch of values."""
        values = np.asarray(values, dtype=np.float64)
        axes = _reduce_axes(values.shape, self.spec.channel_axis)
        batch_min = values.min(axis=axes) if axes is not None else np.asarray(values.min())
        batch_max = values.max(axis=axes) if axes is not None else np.asarray(values.max())
        if self.minimum is None:
            self.minimum, self.maximum = batch_min, batch_max
        else:
            self.minimum = np.minimum(self.minimum, batch_min)
            self.maximum = np.maximum(self.maximum, batch_max)

    @property
    def initialized(self) -> bool:
        """Whether at least one batch has been observed."""
        return self.minimum is not None

    def quantization_parameters(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(scale, zero_point)`` from the observed range."""
        if not self.initialized:
            raise RuntimeError("observer has not seen any data")
        return compute_scale_zero_point(self.minimum, self.maximum, self.spec)


class MovingAverageObserver(MinMaxObserver):
    """Exponential-moving-average range tracking (smoother QAT calibration)."""

    def __init__(self, spec: Optional[QuantizationSpec] = None, momentum: float = 0.9) -> None:
        super().__init__(spec)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.momentum = momentum

    def observe(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        axes = _reduce_axes(values.shape, self.spec.channel_axis)
        batch_min = values.min(axis=axes) if axes is not None else np.asarray(values.min())
        batch_max = values.max(axis=axes) if axes is not None else np.asarray(values.max())
        if self.minimum is None:
            self.minimum, self.maximum = batch_min, batch_max
        else:
            self.minimum = self.momentum * self.minimum + (1.0 - self.momentum) * batch_min
            self.maximum = self.momentum * self.maximum + (1.0 - self.momentum) * batch_max
