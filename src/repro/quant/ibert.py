"""Integer-only kernels for transformer non-linearities (I-BERT style).

The paper follows I-BERT (Kim et al., 2021) to replace the floating-point
operators inside MHSA layers with integer-only counterparts when deploying
on GAP8: softmax, GELU and LayerNorm are evaluated with second-order
polynomial approximations and integer square roots so that the whole
inference uses int8/int32 arithmetic.

This module implements those kernels over NumPy integer arrays.  They are
used (i) by the quantised-deployment pipeline to emulate on-target
numerics, and (ii) by the test-suite, which checks each integer kernel
against its floating-point reference within the accuracy bounds reported in
the I-BERT paper.

All functions follow the I-BERT convention of representing a real tensor
``x`` as ``q * scale`` with integer ``q``.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = [
    "SOFTMAX_OUTPUT_BITS",
    "integer_polynomial",
    "integer_erf",
    "integer_gelu",
    "integer_exp",
    "integer_softmax",
    "integer_sqrt",
    "integer_layernorm",
]

#: Fraction bits of the fixed-point softmax output grid: probabilities are
#: returned as integers with scale ``2**-SOFTMAX_OUTPUT_BITS``.  Shared with
#: the LUT-based softmax kernel in :mod:`repro.deploy.int_engine`, which must
#: reproduce this normalisation bit for bit.
SOFTMAX_OUTPUT_BITS = 15


def integer_polynomial(
    q: np.ndarray, scale: float, coefficients: Tuple[float, float, float]
) -> Tuple[np.ndarray, float]:
    """Evaluate ``a (x + b)^2 + c`` in integer arithmetic.

    Parameters
    ----------
    q, scale:
        Integer tensor and its scale (``x = q * scale``).
    coefficients:
        ``(a, b, c)`` of the second-order polynomial.

    Returns
    -------
    ``(q_out, scale_out)`` such that the result is ``q_out * scale_out``.
    """
    a, b, c = coefficients
    q_b = int(math.floor(b / scale))
    q_c = int(math.floor(c / (a * scale * scale)))
    scale_out = a * scale * scale
    q_out = (q.astype(np.int64) + q_b) ** 2 + q_c
    return q_out, scale_out


def integer_erf(q: np.ndarray, scale: float) -> Tuple[np.ndarray, float]:
    """I-BERT's integer approximation of ``erf(x)``.

    Uses the sign-decomposed second-order polynomial approximation
    ``erf(x) ~ sign(x) * [a (clip(|x|, max=-b) + b)^2 + 1]`` with the
    I-BERT constants ``a=-0.2888, b=-1.769``.
    """
    a, b = -0.2888, -1.769
    signs = np.sign(q)
    q_abs = np.abs(q.astype(np.int64))
    q_clipped = np.minimum(q_abs, int(-b / scale))
    q_poly, scale_poly = integer_polynomial(q_clipped, scale, (a, b, 1.0))
    q_out = signs * q_poly
    return q_out, scale_poly


def integer_gelu(q: np.ndarray, scale: float) -> Tuple[np.ndarray, float]:
    """Integer-only GELU: ``x * 0.5 * (1 + erf(x / sqrt(2)))``."""
    q_erf, scale_erf = integer_erf(q, scale / math.sqrt(2.0))
    one = int(math.floor(1.0 / scale_erf))
    q_out = q.astype(np.int64) * (q_erf + one)
    scale_out = scale * scale_erf / 2.0
    return q_out, scale_out


def integer_exp(q: np.ndarray, scale: float) -> Tuple[np.ndarray, float]:
    """Integer-only ``exp`` for non-positive inputs (softmax numerator).

    Decomposes ``x = -ln(2) * z + r`` with integer ``z`` and evaluates
    ``exp(r)`` with I-BERT's second-order polynomial, then shifts by ``z``.
    """
    ln2 = math.log(2.0)
    # Polynomial approximating exp(r) on r in (-ln2, 0]:
    coefficients = (0.3585, 1.353, 0.344)
    q = np.minimum(q.astype(np.int64), 0)
    q_ln2 = int(math.floor(ln2 / scale))
    if q_ln2 == 0:
        q_ln2 = 1
    z = (-q) // q_ln2
    remainder = q + z * q_ln2  # in (-q_ln2, 0]
    q_poly, scale_poly = integer_polynomial(remainder, scale, coefficients)
    # exp(x) = exp(r) * 2^{-z}; keep precision by shifting into a fixed budget.
    max_shift = 30
    z = np.minimum(z, max_shift)
    q_out = np.maximum(q_poly >> z.astype(np.int64), 0)
    return q_out, scale_poly


def integer_softmax(q: np.ndarray, scale: float, axis: int = -1) -> Tuple[np.ndarray, float]:
    """Integer-only softmax along ``axis``.

    Returns integer probabilities ``q_out`` with scale ``2**-bits`` such that
    ``q_out * scale_out`` sums to (approximately) one along ``axis``.
    """
    output_bits = SOFTMAX_OUTPUT_BITS
    q = q.astype(np.int64)
    q_shifted = q - q.max(axis=axis, keepdims=True)
    q_exp, scale_exp = integer_exp(q_shifted, scale)
    total = q_exp.sum(axis=axis, keepdims=True)
    total = np.maximum(total, 1)
    factor = 2**output_bits
    q_out = (q_exp * factor) // total
    return q_out, 1.0 / factor


def integer_sqrt(values: np.ndarray) -> np.ndarray:
    """Element-wise integer square root via Newton iteration (I-BERT Alg. 4)."""
    values = np.asarray(values, dtype=np.int64)
    if np.any(values < 0):
        raise ValueError("integer_sqrt expects non-negative inputs")
    result = np.zeros_like(values)
    positive = values > 0
    if not np.any(positive):
        return result
    x = values[positive]
    # Initial guess: 2^ceil(bits/2).
    estimate = 2 ** np.ceil(np.log2(np.maximum(x, 1)) / 2.0)
    estimate = estimate.astype(np.int64)
    for _ in range(20):
        new_estimate = (estimate + x // np.maximum(estimate, 1)) // 2
        converged = new_estimate >= estimate
        estimate = np.where(converged, estimate, new_estimate)
    result[positive] = estimate
    return result


def integer_layernorm(
    q: np.ndarray,
    scale: float,
    weight: np.ndarray,
    bias: np.ndarray,
    output_bits: int = 8,
) -> Tuple[np.ndarray, float]:
    """Integer-only LayerNorm over the last axis.

    The mean and variance are accumulated in int32/int64, the standard
    deviation is computed with :func:`integer_sqrt`, and the affine
    parameters are folded in at the output scale.
    """
    q = q.astype(np.int64)
    features = q.shape[-1]
    mean = q.sum(axis=-1, keepdims=True) // features
    centered = q - mean
    variance = (centered * centered).sum(axis=-1, keepdims=True) // features
    std = np.maximum(integer_sqrt(variance), 1)
    # Normalised value in a fixed-point format with `output_bits` fraction bits.
    factor = 2**output_bits
    normalised = (centered * factor) // std
    scale_out = 1.0 / factor
    # Fold the affine parameters (kept in float, as I-BERT folds them into
    # the following requantisation step).
    q_out = np.round(normalised * weight + bias / scale_out).astype(np.int64)
    return q_out, scale_out
