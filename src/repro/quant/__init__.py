"""``repro.quant`` — int8 quantisation: PTQ, QAT and I-BERT integer kernels."""

from .ibert import (
    integer_erf,
    integer_exp,
    integer_gelu,
    integer_layernorm,
    integer_polynomial,
    integer_softmax,
    integer_sqrt,
)
from .ptq import QuantizationReport, QuantizedModel, evaluate_quantized, quantize_parameters
from .qat import QATConfig, QATResult, quantization_aware_finetune
from .quantizers import (
    MinMaxObserver,
    MovingAverageObserver,
    QuantizationSpec,
    QuantizedTensor,
    compute_scale_zero_point,
    dequantize,
    fake_quantize,
    quantization_error,
    quantize,
)

__all__ = [
    "QuantizationSpec",
    "QuantizedTensor",
    "compute_scale_zero_point",
    "quantize",
    "dequantize",
    "fake_quantize",
    "quantization_error",
    "MinMaxObserver",
    "MovingAverageObserver",
    "QuantizationReport",
    "QuantizedModel",
    "quantize_parameters",
    "evaluate_quantized",
    "QATConfig",
    "QATResult",
    "quantization_aware_finetune",
    "integer_polynomial",
    "integer_erf",
    "integer_gelu",
    "integer_exp",
    "integer_softmax",
    "integer_sqrt",
    "integer_layernorm",
]
