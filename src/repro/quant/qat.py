"""Quantisation-aware training (QAT).

The paper performs "a few epochs of quantisation aware training" to move
from fp32 to int8 with minimal accuracy loss.  The standard QAT recipe is
reproduced here with the straight-through estimator (STE):

* a *shadow* fp32 copy of every parameter is kept as the master weights;
* on every training step the model weights are replaced by their
  fake-quantised (quantise-dequantise) version before the forward pass;
* gradients flow as if the quantiser were the identity (STE) and are
  applied to the shadow weights.

After QAT, :class:`repro.quant.ptq.QuantizedModel` exports the final int8
snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..data.dataset import ArrayDataset, DataLoader
from ..nn import CrossEntropyLoss, clip_grad_norm
from ..nn.module import Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from ..utils.logging import get_logger
from ..utils.rng import derive_rng
from .quantizers import QuantizationSpec, compute_scale_zero_point, fake_quantize

__all__ = ["QATConfig", "QATResult", "quantization_aware_finetune"]

_LOGGER = get_logger("qat")


@dataclass
class QATConfig:
    """Hyper-parameters of the quantisation-aware fine-tuning phase."""

    epochs: int = 5
    learning_rate: float = 5e-5
    batch_size: int = 64
    weight_bits: int = 8
    max_grad_norm: float = 5.0
    seed: int = 0

    @classmethod
    def paper(cls) -> "QATConfig":
        """A few epochs of QAT, as described in Sec. III-C."""
        return cls(epochs=5)

    @classmethod
    def small(cls, seed: int = 0) -> "QATConfig":
        """Reduced preset for the benchmark harness."""
        return cls(epochs=2, seed=seed)

    @classmethod
    def tiny(cls, seed: int = 0) -> "QATConfig":
        """Smoke-test preset."""
        return cls(epochs=1, batch_size=32, seed=seed)


@dataclass
class QATResult:
    """Outcome of a QAT run."""

    epochs: int
    final_train_accuracy: float
    final_train_loss: float


def _fake_quantize_weights(model: Module, spec: QuantizationSpec) -> Dict[str, np.ndarray]:
    """Replace every parameter by its fake-quantised version; return the shadows."""
    shadows: Dict[str, np.ndarray] = {}
    for name, parameter in model.named_parameters():
        shadows[name] = parameter.data.copy()
        scale, zero_point = compute_scale_zero_point(
            parameter.data.min(), parameter.data.max(), spec
        )
        parameter.data[...] = fake_quantize(parameter.data, scale, zero_point, spec)
    return shadows


def _restore_weights(model: Module, shadows: Dict[str, np.ndarray]) -> None:
    for name, parameter in model.named_parameters():
        parameter.data[...] = shadows[name]


def quantization_aware_finetune(
    model: Module,
    train_dataset: ArrayDataset,
    config: Optional[QATConfig] = None,
) -> QATResult:
    """Fine-tune ``model`` in place with fake-quantised weights (STE).

    Parameters
    ----------
    model:
        A trained float model; its weights are updated in place and remain
        in float (quantise afterwards with :class:`QuantizedModel`).
    train_dataset:
        The subject-specific training set (sessions 1-5).
    config:
        QAT hyper-parameters.
    """
    config = config if config is not None else QATConfig()
    spec = QuantizationSpec(bits=config.weight_bits, symmetric=True)
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    loss_function = CrossEntropyLoss()
    rng = derive_rng("qat", seed=config.seed)
    loader = DataLoader(train_dataset, batch_size=config.batch_size, shuffle=True, rng=rng)

    final_accuracy = 0.0
    final_loss = 0.0
    for epoch in range(1, config.epochs + 1):
        model.train()
        correct = 0
        seen = 0
        epoch_loss = 0.0
        for windows, labels in loader:
            shadows = _fake_quantize_weights(model, spec)
            logits = model(Tensor(windows))
            loss = loss_function(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            # Straight-through estimator: gradients computed at the quantised
            # point are applied to the full-precision shadow weights.
            _restore_weights(model, shadows)
            clip_grad_norm(optimizer.parameters, config.max_grad_norm)
            optimizer.step()

            predictions = np.argmax(logits.data, axis=-1)
            correct += int((predictions == labels).sum())
            seen += labels.shape[0]
            epoch_loss += float(loss.data) * labels.shape[0]
        final_accuracy = correct / max(seen, 1)
        final_loss = epoch_loss / max(seen, 1)
        _LOGGER.info(
            "QAT epoch %d/%d loss %.4f accuracy %.3f", epoch, config.epochs, final_loss, final_accuracy
        )
    return QATResult(
        epochs=config.epochs, final_train_accuracy=final_accuracy, final_train_loss=final_loss
    )
