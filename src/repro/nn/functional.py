"""Functional (stateless) neural-network operations.

Every function in this module consumes and produces :class:`repro.nn.Tensor`
objects and is differentiable through the autograd engine.  The module plays
the role of ``torch.nn.functional`` for the reproduction: the layer classes
in :mod:`repro.nn.layers` are thin stateful wrappers around these functions.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = [
    "linear",
    "relu",
    "gelu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "layer_norm",
    "batch_norm",
    "conv1d",
    "avg_pool1d",
    "max_pool1d",
    "cross_entropy",
    "one_hot",
    "nll_loss",
    "mse_loss",
]


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transformation ``x @ weight.T + bias``.

    Parameters
    ----------
    x:
        Input of shape ``(..., in_features)``.
    weight:
        Weight matrix of shape ``(out_features, in_features)``.
    bias:
        Optional bias of shape ``(out_features,)``.
    """
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation).

    This is the same approximation used by BERT/ViT implementations and by
    the integer-only I-BERT kernels the paper deploys, which keeps the
    float and quantized paths consistent.
    """
    coefficient = math.sqrt(2.0 / math.pi)
    inner = (x + (x * x * x) * 0.044715) * coefficient
    return x * (inner.tanh() + 1.0) * 0.5


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exponentials = shifted.exp()
    return exponentials / exponentials.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(
    x: Tensor,
    probability: float,
    training: bool,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout: zero each element with ``probability`` when training."""
    if not training or probability <= 0.0:
        return x
    if probability >= 1.0:
        raise ValueError("dropout probability must be < 1")
    generator = rng if rng is not None else np.random.default_rng()
    mask = (generator.random(x.shape) >= probability).astype(x.data.dtype)
    scale = 1.0 / (1.0 - probability)
    return x * Tensor(mask * scale)


def layer_norm(
    x: Tensor,
    weight: Optional[Tensor] = None,
    bias: Optional[Tensor] = None,
    eps: float = 1e-5,
) -> Tensor:
    """Layer normalisation over the last dimension.

    Normalises each feature vector to zero mean / unit variance and applies
    an optional learnable affine transform.
    """
    mean = x.mean(axis=-1, keepdims=True)
    variance = x.var(axis=-1, keepdims=True)
    normalised = (x - mean) / (variance + eps).sqrt()
    if weight is not None:
        normalised = normalised * weight
    if bias is not None:
        normalised = normalised + bias
    return normalised


def batch_norm(
    x: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    weight: Optional[Tensor],
    bias: Optional[Tensor],
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over the batch (and length) dimensions.

    Supports 2-D inputs ``(batch, features)`` and 3-D inputs
    ``(batch, channels, length)``.  ``running_mean`` / ``running_var`` are
    updated in place when ``training`` is true.
    """
    if x.ndim == 2:
        axes: Tuple[int, ...] = (0,)
        stat_shape = (1, -1)
    elif x.ndim == 3:
        axes = (0, 2)
        stat_shape = (1, -1, 1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 3-D input, got {x.ndim}-D")

    if training:
        batch_mean = x.mean(axis=axes, keepdims=True)
        batch_var = x.var(axis=axes, keepdims=True)
        running_mean *= 1.0 - momentum
        running_mean += momentum * batch_mean.data.reshape(-1)
        running_var *= 1.0 - momentum
        running_var += momentum * batch_var.data.reshape(-1)
        mean, variance = batch_mean, batch_var
    else:
        mean = Tensor(running_mean.reshape(stat_shape))
        variance = Tensor(running_var.reshape(stat_shape))

    normalised = (x - mean) / (variance + eps).sqrt()
    if weight is not None:
        normalised = normalised * weight.reshape(stat_shape)
    if bias is not None:
        normalised = normalised + bias.reshape(stat_shape)
    return normalised


def _conv1d_output_length(length: int, kernel: int, stride: int, padding: int, dilation: int) -> int:
    """Output length of a 1-D convolution (PyTorch convention)."""
    effective = dilation * (kernel - 1) + 1
    return (length + 2 * padding - effective) // stride + 1


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
) -> Tensor:
    """1-D cross-correlation, the workhorse of both Bioformer and TEMPONet.

    Parameters
    ----------
    x:
        Input of shape ``(batch, in_channels, length)``.
    weight:
        Filters of shape ``(out_channels, in_channels, kernel_size)``.
    bias:
        Optional bias of shape ``(out_channels,)``.
    stride, padding, dilation:
        Usual convolution hyper-parameters (single integers).

    Implementation
    --------------
    The convolution is lowered to a matrix multiplication (im2col) with a
    fused, hand-written backward pass: the input gradient is reconstructed
    tap-by-tap (``kernel_size`` vectorised additions) instead of a generic
    scatter-add, which is what makes training the TEMPONet baseline
    practical on the NumPy substrate.
    """
    batch, in_channels, length = x.shape
    out_channels, weight_in_channels, kernel = weight.shape
    if in_channels != weight_in_channels:
        raise ValueError(
            f"conv1d channel mismatch: input has {in_channels}, weight expects {weight_in_channels}"
        )
    out_length = _conv1d_output_length(length, kernel, stride, padding, dilation)
    if out_length <= 0:
        raise ValueError(
            f"conv1d produces non-positive output length ({out_length}) for input length {length}"
        )

    x_data = x.data
    if padding > 0:
        x_data = np.pad(x_data, ((0, 0), (0, 0), (padding, padding)))
    padded_length = x_data.shape[-1]

    # im2col index of shape (out_length, kernel): every tap of every window.
    starts = np.arange(out_length) * stride
    taps = np.arange(kernel) * dilation
    gather_index = starts[:, None] + taps[None, :]

    # (batch, out_length, in_channels, kernel) -> (batch, out_length, C*K)
    columns = x_data[:, :, gather_index].transpose(0, 2, 1, 3)
    columns_flat = columns.reshape(batch, out_length, in_channels * kernel)
    flat_weight = weight.data.reshape(out_channels, in_channels * kernel)
    out_data = columns_flat @ flat_weight.T  # (batch, out_length, out_channels)
    if bias is not None:
        out_data = out_data + bias.data
    out_data = out_data.transpose(0, 2, 1)  # (batch, out_channels, out_length)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        # grad: (batch, out_channels, out_length) -> (batch, out_length, out_channels)
        grad_out = grad.transpose(0, 2, 1)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_out.sum(axis=(0, 1)))
        if weight.requires_grad:
            grad_flat_weight = np.einsum("bto,btk->ok", grad_out, columns_flat)
            weight._accumulate(grad_flat_weight.reshape(out_channels, in_channels, kernel))
        if x.requires_grad:
            # (batch, out_length, C*K) -> (batch, out_length, C, K)
            grad_columns = (grad_out @ flat_weight).reshape(
                batch, out_length, in_channels, kernel
            )
            grad_padded = np.zeros((batch, in_channels, padded_length), dtype=grad.dtype)
            for tap in range(kernel):
                positions = starts + tap * dilation
                grad_padded[:, :, positions] += grad_columns[:, :, :, tap].transpose(0, 2, 1)
            if padding > 0:
                grad_padded = grad_padded[:, :, padding : padding + length]
            x._accumulate(grad_padded)

    return x._make_child(out_data, tuple(parents), backward)


def avg_pool1d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over the last dimension of a ``(B, C, L)`` tensor."""
    stride = stride if stride is not None else kernel_size
    batch, channels, length = x.shape
    out_length = (length - kernel_size) // stride + 1
    starts = np.arange(out_length) * stride
    taps = np.arange(kernel_size)
    gather_index = starts[:, None] + taps[None, :]
    windows = x[:, :, gather_index]
    return windows.mean(axis=-1)


def max_pool1d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over the last dimension of a ``(B, C, L)`` tensor."""
    stride = stride if stride is not None else kernel_size
    batch, channels, length = x.shape
    out_length = (length - kernel_size) // stride + 1
    starts = np.arange(out_length) * stride
    taps = np.arange(kernel_size)
    gather_index = starts[:, None] + taps[None, :]
    windows = x[:, :, gather_index]
    return windows.max(axis=-1)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a one-hot encoding of integer ``labels``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError("labels out of range for one_hot encoding")
    encoded = np.zeros((labels.size, num_classes))
    encoded[np.arange(labels.size), labels.reshape(-1)] = 1.0
    return encoded.reshape(labels.shape + (num_classes,))


def nll_loss(log_probabilities: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log-likelihood of integer ``targets`` under ``log_probabilities``."""
    num_classes = log_probabilities.shape[-1]
    encoded = Tensor(one_hot(targets, num_classes))
    per_sample = -(log_probabilities * encoded).sum(axis=-1)
    return per_sample.mean()


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    label_smoothing: float = 0.0,
) -> Tensor:
    """Softmax cross-entropy between ``logits`` and integer ``targets``.

    Parameters
    ----------
    logits:
        Unnormalised scores of shape ``(batch, num_classes)``.
    targets:
        Integer class labels of shape ``(batch,)``.
    label_smoothing:
        Optional label-smoothing factor in ``[0, 1)``.
    """
    num_classes = logits.shape[-1]
    log_probabilities = log_softmax(logits, axis=-1)
    encoded = one_hot(targets, num_classes)
    if label_smoothing > 0.0:
        encoded = encoded * (1.0 - label_smoothing) + label_smoothing / num_classes
    per_sample = -(log_probabilities * Tensor(encoded)).sum(axis=-1)
    return per_sample.mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between ``prediction`` and ``target``."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    difference = prediction - target
    return (difference * difference).mean()
