"""Loss functions as modules."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module
from .tensor import Tensor

__all__ = ["CrossEntropyLoss", "MSELoss"]


class CrossEntropyLoss(Module):
    """Softmax cross-entropy with optional label smoothing.

    The reproduction uses plain cross-entropy (no smoothing) for both the
    inter-subject pre-training and the subject-specific fine-tuning, matching
    the paper's standard classification setup.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        super().__init__()
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must lie in [0, 1)")
        self.label_smoothing = label_smoothing

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets, label_smoothing=self.label_smoothing)

    def __repr__(self) -> str:
        return f"CrossEntropyLoss(label_smoothing={self.label_smoothing})"


class MSELoss(Module):
    """Mean squared error, used by the quantisation-aware distillation tests."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        return F.mse_loss(prediction, target)
