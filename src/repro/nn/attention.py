"""Multi-head self-attention and transformer encoder blocks.

This module implements the attention machinery described in Sec. II-C of the
Bioformers paper:

* :class:`MultiHeadSelfAttention` — H parallel heads, each projecting the
  ``C``-dimensional tokens to a ``P``-dimensional query/key/value space,
  scaled dot-product attention, and an output block that merges the heads.
* :class:`FeedForward` — the two linear layers ("orange rectangle" in the
  paper's Fig. 1) that project each token to a hidden space and back to
  ``R^C``.
* :class:`TransformerEncoderBlock` — pre-norm residual block combining the
  two, the unit repeated ``depth`` times in a Bioformer.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .layers import Dropout, Linear
from .layers import LayerNorm
from .module import Module, Parameter
from .tensor import Tensor, is_grad_enabled

__all__ = ["MultiHeadSelfAttention", "FeedForward", "TransformerEncoderBlock"]


# --------------------------------------------------------------------- #
# Inference fast path (raw ndarray mirrors of the Tensor ops)
# --------------------------------------------------------------------- #
# Serving traffic runs under ``inference_mode``: no gradients are ever
# needed, yet the Tensor path still allocates a Tensor object (and closure
# bookkeeping) per op.  The helpers below replay the *exact same* NumPy
# calls, in the same order, on the raw ``.data`` arrays, so the fast path
# is bit-for-bit identical to the autograd forward by construction — the
# serving-parity tests pin this equality.  Any change to a functional op
# must be mirrored here (and will be caught by those tests if it is not).


def _linear_data(x: np.ndarray, layer: Linear) -> np.ndarray:
    """Mirror of :func:`repro.nn.functional.linear` on raw arrays."""
    out = x @ layer.weight.data.transpose()
    if layer.bias is not None:
        out = out + layer.bias.data
    return out


def _gelu_data(x: np.ndarray) -> np.ndarray:
    """Mirror of :func:`repro.nn.functional.gelu` (same op order)."""
    coefficient = math.sqrt(2.0 / math.pi)
    inner = (x + (x * x * x) * 0.044715) * coefficient
    return x * (np.tanh(inner) + 1.0) * 0.5


def _softmax_data(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Mirror of :func:`repro.nn.functional.softmax` (same op order)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=axis, keepdims=True)


def _layernorm_data(x: np.ndarray, layer: LayerNorm) -> np.ndarray:
    """Mirror of :func:`repro.nn.functional.layer_norm` (same op order)."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normalised = centered / np.sqrt(variance + layer.eps)
    return normalised * layer.weight.data + layer.bias.data


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention over a ``(batch, sequence, channels)`` input.

    Parameters
    ----------
    embed_dim:
        Token dimensionality ``C`` (64 in every Bioformer).
    num_heads:
        Number of parallel attention heads ``H``.
    head_dim:
        Per-head projection size ``P`` (32 in every Bioformer).  Unlike the
        common convention ``P = C / H``, the paper fixes ``P`` independently
        of ``H``, so the total projection width is ``H * P``.
    dropout:
        Dropout applied to the attention matrix during training.
    rng:
        Random generator used to initialise the projection weights.
    """

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        head_dim: Optional[int] = None,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        generator = rng if rng is not None else np.random.default_rng()
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = head_dim if head_dim is not None else embed_dim // num_heads
        if self.head_dim <= 0:
            raise ValueError("head_dim must be positive")
        total_dim = self.num_heads * self.head_dim

        self.query_projection = Linear(embed_dim, total_dim, rng=generator)
        self.key_projection = Linear(embed_dim, total_dim, rng=generator)
        self.value_projection = Linear(embed_dim, total_dim, rng=generator)
        self.output_projection = Linear(total_dim, embed_dim, rng=generator)
        self.attention_dropout = Dropout(dropout, rng=generator)
        # Exposed for inspection (tests / attention-map analysis); filled on
        # every forward pass with the detached attention probabilities.
        self.last_attention: Optional[np.ndarray] = None

    def _split_heads(self, x: Tensor, batch: int, sequence: int) -> Tensor:
        """Reshape ``(B, S, H*P)`` to ``(B, H, S, P)``."""
        return x.reshape((batch, sequence, self.num_heads, self.head_dim)).transpose((0, 2, 1, 3))

    def _forward_inference(self, x: np.ndarray) -> np.ndarray:
        """Batched no-autograd forward: same NumPy ops, no Tensor wrapping.

        The whole micro-batch flows through four GEMMs (three input
        projections and the output projection) and two stacked batched
        matmuls (scores and context) — no per-head or per-sample Python
        dispatch — and is bit-identical to the Tensor path because every
        call mirrors the corresponding Tensor op exactly.
        """
        batch, sequence, _ = x.shape
        heads, head_dim = self.num_heads, self.head_dim

        def split(projected: np.ndarray) -> np.ndarray:
            return projected.reshape(batch, sequence, heads, head_dim).transpose(0, 2, 1, 3)

        queries = split(_linear_data(x, self.query_projection))
        keys = split(_linear_data(x, self.key_projection))
        values = split(_linear_data(x, self.value_projection))

        scale = 1.0 / math.sqrt(self.head_dim)
        scores = (queries @ keys.transpose(0, 1, 3, 2)) * scale
        attention = _softmax_data(scores, axis=-1)
        self.last_attention = attention.copy()

        context = attention @ values  # (B, H, S, P)
        context = context.transpose(0, 2, 1, 3).reshape(batch, sequence, heads * head_dim)
        return _linear_data(context, self.output_projection)

    def forward(self, x: Tensor) -> Tensor:
        batch, sequence, channels = x.shape
        if channels != self.embed_dim:
            raise ValueError(
                f"expected embedding dimension {self.embed_dim}, got {channels}"
            )
        if not self.training and not is_grad_enabled():
            return Tensor(self._forward_inference(x.data))
        queries = self._split_heads(self.query_projection(x), batch, sequence)
        keys = self._split_heads(self.key_projection(x), batch, sequence)
        values = self._split_heads(self.value_projection(x), batch, sequence)

        scale = 1.0 / math.sqrt(self.head_dim)
        scores = queries.matmul(keys.transpose((0, 1, 3, 2))) * scale
        attention = F.softmax(scores, axis=-1)
        self.last_attention = attention.data.copy()
        attention = self.attention_dropout(attention)

        context = attention.matmul(values)  # (B, H, S, P)
        context = context.transpose((0, 2, 1, 3)).reshape(
            (batch, sequence, self.num_heads * self.head_dim)
        )
        return self.output_projection(context)

    def __repr__(self) -> str:
        return (
            f"MultiHeadSelfAttention(embed_dim={self.embed_dim}, num_heads={self.num_heads}, "
            f"head_dim={self.head_dim})"
        )


class FeedForward(Module):
    """Position-wise two-layer MLP: ``C -> hidden -> C`` with GELU."""

    def __init__(
        self,
        embed_dim: int,
        hidden_dim: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        generator = rng if rng is not None else np.random.default_rng()
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.expand = Linear(embed_dim, hidden_dim, rng=generator)
        self.contract = Linear(hidden_dim, embed_dim, rng=generator)
        self.dropout = Dropout(dropout, rng=generator)

    def _forward_inference(self, x: np.ndarray) -> np.ndarray:
        """No-autograd mirror of :meth:`forward` (dropout is identity)."""
        return _linear_data(_gelu_data(_linear_data(x, self.expand)), self.contract)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training and not is_grad_enabled():
            return Tensor(self._forward_inference(x.data))
        hidden = F.gelu(self.expand(x))
        hidden = self.dropout(hidden)
        return self.contract(hidden)

    def __repr__(self) -> str:
        return f"FeedForward(embed_dim={self.embed_dim}, hidden_dim={self.hidden_dim})"


class TransformerEncoderBlock(Module):
    """Pre-norm transformer encoder block (MHSA + FFN with residuals).

    This is the repeating unit of the Bioformer: ``depth`` such blocks are
    stacked after the 1-D convolutional patch embedding.  The hidden space
    of the feed-forward part is 128 in every configuration the paper
    evaluates.
    """

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        head_dim: int,
        hidden_dim: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        generator = rng if rng is not None else np.random.default_rng()
        self.attention_norm = LayerNorm(embed_dim)
        self.attention = MultiHeadSelfAttention(
            embed_dim, num_heads, head_dim=head_dim, dropout=dropout, rng=generator
        )
        self.feedforward_norm = LayerNorm(embed_dim)
        self.feedforward = FeedForward(embed_dim, hidden_dim, dropout=dropout, rng=generator)
        self.residual_dropout = Dropout(dropout, rng=generator)

    def _forward_inference(self, x: np.ndarray) -> np.ndarray:
        """No-autograd mirror of :meth:`forward` (dropout is identity)."""
        x = x + self.attention._forward_inference(_layernorm_data(x, self.attention_norm))
        x = x + self.feedforward._forward_inference(_layernorm_data(x, self.feedforward_norm))
        return x

    def forward(self, x: Tensor) -> Tensor:
        if not self.training and not is_grad_enabled():
            return Tensor(self._forward_inference(x.data))
        x = x + self.residual_dropout(self.attention(self.attention_norm(x)))
        x = x + self.residual_dropout(self.feedforward(self.feedforward_norm(x)))
        return x
