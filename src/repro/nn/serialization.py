"""Model checkpoint serialisation.

Checkpoints are plain ``.npz`` archives containing the flat ``state_dict``
of a module, so they can be inspected with nothing but NumPy.  The
pre-training / fine-tuning protocol uses these helpers to hand the
pre-trained weights over to each subject-specific fine-tuning run.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "save_state_dict", "load_state_dict"]


def save_state_dict(state: Dict[str, np.ndarray], path: str) -> None:
    """Write a flat ``name -> array`` mapping to ``path`` as ``.npz``."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Read a state dictionary previously written by :func:`save_state_dict`."""
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_checkpoint(module: Module, path: str) -> None:
    """Serialise ``module.state_dict()`` to ``path``."""
    save_state_dict(module.state_dict(), path)


def load_checkpoint(module: Module, path: str, strict: bool = True) -> Module:
    """Load a checkpoint into ``module`` in place and return it."""
    module.load_state_dict(load_state_dict(path), strict=strict)
    return module
