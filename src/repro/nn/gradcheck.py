"""Numerical gradient checking for the autograd engine and user models.

The whole reproduction rests on the correctness of the from-scratch autograd
engine, so gradient checking is promoted to a public utility rather than
living only inside the test-suite: users extending :mod:`repro.nn` with new
operators can verify them with one call, exactly as ``torch.autograd.gradcheck``
is used upstream.

Central finite differences are compared against the analytical gradients
produced by :meth:`Tensor.backward`; the comparison uses the standard
relative-error criterion ``|a - n| <= atol + rtol * |n|`` element-wise.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from .module import Module
from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradient", "check_module_gradients", "GradientCheckError"]


class GradientCheckError(AssertionError):
    """Raised when analytical and numerical gradients disagree."""


def numerical_gradient(
    function: Callable[[Tensor], Tensor],
    value: np.ndarray,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of a scalar-valued ``function``.

    ``function`` receives a :class:`Tensor` and must return a scalar
    :class:`Tensor` (e.g. a loss).
    """
    value = np.asarray(value, dtype=np.float64)
    gradient = np.zeros_like(value)
    flat = value.reshape(-1)
    flat_gradient = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        positive = float(function(Tensor(value.copy())).data)
        flat[index] = original - epsilon
        negative = float(function(Tensor(value.copy())).data)
        flat[index] = original
        flat_gradient[index] = (positive - negative) / (2.0 * epsilon)
    return gradient


def check_gradient(
    function: Callable[[Tensor], Tensor],
    value: np.ndarray,
    epsilon: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    raise_on_failure: bool = True,
) -> float:
    """Compare autograd and finite-difference gradients of ``function``.

    Returns the maximum absolute difference; raises
    :class:`GradientCheckError` when the tolerance is exceeded (unless
    ``raise_on_failure`` is ``False``).
    """
    tensor = Tensor(np.asarray(value, dtype=np.float64), requires_grad=True)
    output = function(tensor)
    if output.size != 1:
        raise ValueError("check_gradient expects a scalar-valued function")
    output.backward()
    analytical = tensor.grad
    if analytical is None:
        raise GradientCheckError("the function does not propagate gradients to its input")
    numerical = numerical_gradient(function, value, epsilon)
    difference = np.abs(analytical - numerical)
    tolerance = atol + rtol * np.abs(numerical)
    if raise_on_failure and np.any(difference > tolerance):
        worst = float(difference.max())
        raise GradientCheckError(
            f"gradient mismatch: max |analytical - numerical| = {worst:.3e} "
            f"(rtol={rtol}, atol={atol})"
        )
    return float(difference.max())


def check_module_gradients(
    module: Module,
    inputs: np.ndarray,
    loss_function: Optional[Callable[[Tensor], Tensor]] = None,
    epsilon: float = 1e-6,
    rtol: float = 1e-3,
    atol: float = 1e-5,
    parameters: Optional[Sequence[str]] = None,
    max_elements_per_parameter: int = 16,
) -> Dict[str, float]:
    """Finite-difference check of a module's parameter gradients.

    The module is run on ``inputs``; the (default sum-of-squares) loss is
    back-propagated and, for every selected parameter, a random subset of at
    most ``max_elements_per_parameter`` entries is perturbed numerically.

    Returns the maximum discrepancy per checked parameter and raises
    :class:`GradientCheckError` on the first failure.
    """
    module.eval()
    inputs = np.asarray(inputs, dtype=np.float64)
    if loss_function is None:
        loss_function = lambda output: (output * output).sum()  # noqa: E731

    named = dict(module.named_parameters())
    selected = parameters if parameters is not None else list(named)
    unknown = [name for name in selected if name not in named]
    if unknown:
        raise KeyError(f"unknown parameters {unknown}")

    def compute_loss() -> Tensor:
        return loss_function(module(Tensor(inputs)))

    module.zero_grad()
    loss = compute_loss()
    loss.backward()
    analytical = {name: named[name].grad.copy() for name in selected}

    rng = np.random.default_rng(0)
    results: Dict[str, float] = {}
    for name in selected:
        parameter = named[name]
        flat = parameter.data.reshape(-1)
        count = min(max_elements_per_parameter, flat.size)
        indices = rng.choice(flat.size, size=count, replace=False)
        worst = 0.0
        for index in indices:
            original = flat[index]
            flat[index] = original + epsilon
            positive = float(compute_loss().data)
            flat[index] = original - epsilon
            negative = float(compute_loss().data)
            flat[index] = original
            numerical = (positive - negative) / (2.0 * epsilon)
            analytical_value = analytical[name].reshape(-1)[index]
            difference = abs(analytical_value - numerical)
            worst = max(worst, difference)
            if difference > atol + rtol * abs(numerical):
                raise GradientCheckError(
                    f"parameter '{name}'[{index}]: analytical {analytical_value:.6e} vs "
                    f"numerical {numerical:.6e}"
                )
        results[name] = worst
    return results
