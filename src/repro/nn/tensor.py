"""Reverse-mode automatic differentiation over NumPy arrays.

This module implements the :class:`Tensor` class, the foundation of the
``repro.nn`` deep-learning substrate.  A ``Tensor`` wraps a ``numpy.ndarray``
and records the operations applied to it so that gradients can later be
propagated backwards through the resulting computation graph, exactly like
``torch.Tensor`` with ``requires_grad=True``.

The design follows the classic "define-by-run" tape approach:

* every differentiable operation produces a new ``Tensor`` whose
  ``_backward`` closure knows how to push the output gradient onto the
  gradients of its inputs;
* :meth:`Tensor.backward` topologically sorts the recorded graph and calls
  the closures in reverse order;
* broadcasting is handled by summing gradients over the broadcast axes
  (:func:`unbroadcast`).

Only the operations needed by the Bioformer / TEMPONet models are
implemented, but they are implemented completely (full broadcasting,
arbitrary axes for reductions, negative indexing for transposes, ...), so
the module is usable as a small general-purpose autograd engine.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "inference_mode", "is_grad_enabled", "unbroadcast"]

ArrayLike = Union[np.ndarray, float, int, list, tuple]

# Switch mirroring ``torch.no_grad()``: while disabled, no graph is
# recorded, which makes pure inference both faster and allocation-free.
# Thread-local so a serving worker running under ``inference_mode`` cannot
# disable gradients for a training loop on another thread.
_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return ``True`` when operations record the autograd graph."""
    return getattr(_GRAD_STATE, "enabled", True)


class no_grad:
    """Context manager (and decorator) that disables gradient recording.

    The switch is per-thread (as in PyTorch): entering ``no_grad`` on one
    thread leaves autograd untouched everywhere else.

    Example
    -------
    >>> with no_grad():
    ...     logits = model(x)
    """

    def __enter__(self) -> "no_grad":
        self._previous = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _GRAD_STATE.enabled = self._previous

    def __call__(self, function):
        def wrapper(*args, **kwargs):
            with no_grad():
                return function(*args, **kwargs)

        wrapper.__name__ = getattr(function, "__name__", "wrapped")
        wrapper.__doc__ = function.__doc__
        return wrapper


class inference_mode(no_grad):
    """Serving-path variant of :class:`no_grad` (mirrors ``torch.inference_mode``).

    Numerically identical to :class:`no_grad` — it exists so inference code
    (notably :mod:`repro.serve`) states its intent explicitly and stays a
    single hook if the fast path ever diverges from plain gradient
    disabling (e.g. buffer reuse or dtype narrowing).
    """


def unbroadcast(gradient: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``gradient`` so that it matches ``shape``.

    When an operand of shape ``shape`` was broadcast to a larger shape
    during the forward pass, the corresponding gradient must be summed over
    every broadcast axis to recover a gradient of the original shape.

    Parameters
    ----------
    gradient:
        Gradient with the (possibly broadcast) output shape.
    shape:
        Shape of the original operand.
    """
    if gradient.shape == tuple(shape):
        return gradient
    # Sum over leading axes that were added by broadcasting.
    extra_dims = gradient.ndim - len(shape)
    if extra_dims > 0:
        gradient = gradient.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were size 1 in the original operand.
    axes = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and gradient.shape[axis] != 1
    )
    if axes:
        gradient = gradient.sum(axis=axes, keepdims=True)
    return gradient.reshape(shape)


def _as_array(data: ArrayLike, dtype=np.float64) -> np.ndarray:
    """Convert ``data`` to a float ndarray without copying when possible."""
    if isinstance(data, np.ndarray):
        if data.dtype == dtype:
            return data
        return data.astype(dtype)
    return np.asarray(data, dtype=dtype)


class Tensor:
    """A NumPy-backed array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array, scalar or nested sequence holding the tensor values.
    requires_grad:
        When ``True`` the tensor accumulates gradients in ``self.grad``
        during :meth:`backward`.
    name:
        Optional human-readable label, useful when debugging graphs.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_backward", "_prev")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self.name = name
        self._backward = None
        self._prev: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions of the underlying array."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """NumPy dtype of the underlying array."""
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        """Transpose of a 2-D tensor (alias for :meth:`transpose`)."""
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the raw ndarray (shared memory, not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    def copy(self) -> "Tensor":
        """Return a detached deep copy of this tensor."""
        return Tensor(self.data.copy(), requires_grad=False, name=self.name)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ensure(other: Union["Tensor", ArrayLike]) -> "Tensor":
        """Wrap non-tensor operands so binary ops accept plain numbers."""
        return other if isinstance(other, Tensor) else Tensor(other)

    def _make_child(self, data: np.ndarray, parents: Tuple["Tensor", ...], backward) -> "Tensor":
        """Create the output tensor of an op and register its backward."""
        requires = is_grad_enabled() and any(parent.requires_grad for parent in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = tuple(parent for parent in parents if parent.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, gradient: np.ndarray) -> None:
        """Add ``gradient`` into ``self.grad`` (allocating on first use)."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += gradient

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad, self.shape))
            other._accumulate(unbroadcast(grad, other.shape))

        return self._make_child(out_data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make_child(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad, self.shape))
            other._accumulate(unbroadcast(-grad, other.shape))

        return self._make_child(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad * other.data, self.shape))
            other._accumulate(unbroadcast(grad * self.data, other.shape))

        return self._make_child(out_data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                unbroadcast(-grad * self.data / (other.data**2), other.shape)
            )

        return self._make_child(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other).__truediv__(self)

    def __pow__(self, exponent: Union[int, float]) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make_child(out_data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        """Batched matrix multiplication with full broadcasting support."""
        other = self._ensure(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    grad_self = np.expand_dims(grad, -1) * other.data
                else:
                    grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.outer(self.data, grad) if grad.ndim == 1 else (
                        np.expand_dims(self.data, -1) * grad
                    )
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(unbroadcast(grad_other, other.shape))

        return self._make_child(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make_child(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make_child(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return self._make_child(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make_child(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid."""
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make_child(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        """Elementwise rectified linear unit."""
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make_child(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient 0 at the origin)."""
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return self._make_child(out_data, (self,), backward)

    def clip(self, minimum: Optional[float] = None, maximum: Optional[float] = None) -> "Tensor":
        """Clamp values to ``[minimum, maximum]``; gradient is zero outside."""
        out_data = np.clip(self.data, minimum, maximum)
        inside = np.ones_like(self.data, dtype=bool)
        if minimum is not None:
            inside &= self.data >= minimum
        if maximum is not None:
            inside &= self.data <= maximum

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * inside)

        return self._make_child(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum of elements over the given axis (or all axes)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.shape).copy())

        return self._make_child(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over the given axis (or all axes)."""
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.shape).copy() / count)

        return self._make_child(out_data, (self,), backward)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Biased variance (denominator ``N``) over the given axis."""
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over the given axis; ties share gradient equally."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded_out = out_data
            expanded_grad = grad
            if axis is not None and not keepdims:
                expanded_out = np.expand_dims(out_data, axis)
                expanded_grad = np.expand_dims(grad, axis)
            mask = (self.data == expanded_out).astype(self.data.dtype)
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * expanded_grad / counts)

        return self._make_child(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Minimum over the given axis (implemented via :meth:`max`)."""
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        """Return a tensor with the same data and a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return self._make_child(out_data, (self,), backward)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        """Flatten all dimensions from ``start_dim`` onward into one."""
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(new_shape)

    def transpose(self, *axes) -> "Tensor":
        """Permute dimensions (defaults to reversing them)."""
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make_child(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Exchange two axes of the tensor."""
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(axes)

    def expand_dims(self, axis: int) -> "Tensor":
        """Insert a new axis of length one at position ``axis``."""
        out_data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.squeeze(grad, axis=axis))

        return self._make_child(out_data, (self,), backward)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        """Remove axes of length one."""
        original_shape = self.shape
        out_data = np.squeeze(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return self._make_child(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make_child(out_data, (self,), backward)

    def pad(self, pad_width: Sequence[Tuple[int, int]], value: float = 0.0) -> "Tensor":
        """Pad the tensor with a constant ``value``.

        ``pad_width`` follows the :func:`numpy.pad` convention: one
        ``(before, after)`` pair per dimension.
        """
        pad_width = tuple(tuple(pair) for pair in pad_width)
        out_data = np.pad(self.data, pad_width, mode="constant", constant_values=value)
        slices = tuple(
            slice(before, before + size) for (before, _), size in zip(pad_width, self.shape)
        )

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad[slices])

        return self._make_child(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Combination
    # ------------------------------------------------------------------ #
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate a sequence of tensors along ``axis``."""
        tensors = [Tensor._ensure(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        reference = tensors[0]

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                indexer = [slice(None)] * grad.ndim
                indexer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(indexer)])

        return reference._make_child(out_data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Stack tensors along a new axis."""
        tensors = [Tensor._ensure(t) for t in tensors]
        expanded = [t.expand_dims(axis) for t in tensors]
        return Tensor.concatenate(expanded, axis=axis)

    @staticmethod
    def where(condition: np.ndarray, positive: "Tensor", negative: "Tensor") -> "Tensor":
        """Select from ``positive`` where ``condition`` else ``negative``."""
        positive = Tensor._ensure(positive)
        negative = Tensor._ensure(negative)
        condition = np.asarray(condition, dtype=bool)
        out_data = np.where(condition, positive.data, negative.data)

        def backward(grad: np.ndarray) -> None:
            positive._accumulate(unbroadcast(grad * condition, positive.shape))
            negative._accumulate(unbroadcast(grad * (~condition), negative.shape))

        return positive._make_child(out_data, (positive, negative), backward)

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, gradient: Optional[np.ndarray] = None) -> None:
        """Back-propagate gradients from this tensor through the graph.

        Parameters
        ----------
        gradient:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1`` which is only valid for scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if gradient is None:
            if self.data.size != 1:
                raise RuntimeError("gradient must be provided for non-scalar outputs")
            gradient = np.ones_like(self.data)
        gradient = np.asarray(gradient, dtype=self.data.dtype)

        ordering: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        # Iterative DFS post-order to avoid recursion limits on deep graphs.
        while stack:
            node, processed = stack.pop()
            if processed:
                ordering.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(gradient)
        for node in reversed(ordering):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
        # Free the graph: intermediate closures are not reusable anyway.
        for node in ordering:
            if node is not self and node._backward is not None:
                node._backward = None
                node._prev = ()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        """Tensor filled with zeros."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        """Tensor filled with ones."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        """Tensor of standard-normal samples (optionally from ``rng``)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        generator = rng if rng is not None else np.random.default_rng()
        return Tensor(generator.standard_normal(shape), requires_grad=requires_grad)
