"""Model summaries: per-module parameter accounting.

A ``torchsummary``-style report for the :class:`~repro.nn.module.Module`
tree: how many parameters each sub-module owns, which of them dominate the
memory footprint, and what the int8/fp32 storage cost of the whole model is.
Used by the examples and by the deployment reports to show where the
94.2 kB of the paper's Bio1 actually live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..utils.tables import format_table
from .module import Module

__all__ = ["ModuleRow", "ModelSummary", "summarize"]


@dataclass
class ModuleRow:
    """Parameter accounting for one module of the tree."""

    name: str
    module_type: str
    depth: int
    own_params: int
    total_params: int

    @property
    def indented_name(self) -> str:
        """Name indented by tree depth (for the rendered table)."""
        return "  " * self.depth + (self.name or "(root)")


@dataclass
class ModelSummary:
    """Summary of a whole module tree."""

    model_type: str
    rows: List[ModuleRow] = field(default_factory=list)

    @property
    def total_params(self) -> int:
        """Total trainable parameters of the model."""
        return self.rows[0].total_params if self.rows else 0

    def bytes(self, bits_per_parameter: int = 32) -> int:
        """Parameter storage at the given precision."""
        return int(self.total_params * bits_per_parameter / 8)

    @property
    def fp32_kilobytes(self) -> float:
        """Parameter storage in kB at fp32."""
        return self.bytes(32) / 1024.0

    @property
    def int8_kilobytes(self) -> float:
        """Parameter storage in kB at int8 (the paper's Memory column)."""
        return self.bytes(8) / 1024.0

    def largest_modules(self, top: int = 5, leaf_only: bool = True) -> List[ModuleRow]:
        """The ``top`` modules owning the most parameters."""
        candidates = [
            row
            for row in self.rows[1:]
            if not leaf_only or row.own_params == row.total_params
        ]
        return sorted(candidates, key=lambda row: row.total_params, reverse=True)[:top]

    def render(self, max_depth: Optional[int] = None) -> str:
        """Plain-text summary table."""
        rows = [
            (row.indented_name, row.module_type, f"{row.total_params:,}")
            for row in self.rows
            if max_depth is None or row.depth <= max_depth
        ]
        table = format_table(("module", "type", "params"), rows, title=f"{self.model_type} summary")
        footer = (
            f"\ntotal parameters: {self.total_params:,}  "
            f"(fp32 {self.fp32_kilobytes:.1f} kB, int8 {self.int8_kilobytes:.1f} kB)"
        )
        return table + footer


def _walk(module: Module, name: str, depth: int, rows: List[ModuleRow]) -> int:
    own = int(sum(parameter.size for parameter in module._parameters.values()))
    row = ModuleRow(
        name=name,
        module_type=type(module).__name__,
        depth=depth,
        own_params=own,
        total_params=own,
    )
    rows.append(row)
    total = own
    for child_name, child in module._modules.items():
        qualified = f"{name}.{child_name}" if name else child_name
        total += _walk(child, qualified, depth + 1, rows)
    row.total_params = total
    return total


def summarize(model: Module) -> ModelSummary:
    """Build a :class:`ModelSummary` for ``model``.

    The first row is the root module; every descendant follows in
    depth-first order with its subtree parameter total.
    """
    summary = ModelSummary(model_type=type(model).__name__)
    _walk(model, "", 0, summary.rows)
    return summary
