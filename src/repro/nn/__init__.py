"""``repro.nn`` — a from-scratch NumPy deep-learning substrate.

The original Bioformers paper trains its models with PyTorch 1.8.1.  PyTorch
is not available in this environment, so this package re-implements the
subset of a deep-learning framework the paper needs: a reverse-mode autograd
engine over NumPy arrays, the layers used by Bioformer and TEMPONet
(linear, 1-D convolution, layer / batch normalisation, dropout, multi-head
self-attention), cross-entropy training with Adam and the paper's learning
rate schedules, and ``state_dict`` serialisation for the pre-train /
fine-tune hand-off.

The public surface mirrors ``torch``/``torch.nn`` naming so the model code
in :mod:`repro.models` reads like the original implementation would.
"""

from . import functional
from . import init
from .attention import FeedForward, MultiHeadSelfAttention, TransformerEncoderBlock
from .gradcheck import GradientCheckError, check_gradient, check_module_gradients, numerical_gradient
from .layers import (
    AvgPool1d,
    BatchNorm1d,
    Conv1d,
    Dropout,
    Flatten,
    GELU,
    GlobalAveragePool1d,
    Identity,
    LayerNorm,
    Linear,
    MaxPool1d,
    ReLU,
    Sigmoid,
    Tanh,
)
from .losses import CrossEntropyLoss, MSELoss
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, AdamW, Optimizer, clip_grad_norm
from .schedulers import (
    ConstantSchedule,
    CosineDecay,
    LinearWarmup,
    Scheduler,
    StepDecay,
)
from .serialization import load_checkpoint, load_state_dict, save_checkpoint, save_state_dict
from .summary import ModelSummary, ModuleRow, summarize
from .tensor import Tensor, inference_mode, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "inference_mode",
    "functional",
    "init",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv1d",
    "LayerNorm",
    "BatchNorm1d",
    "Dropout",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Flatten",
    "AvgPool1d",
    "MaxPool1d",
    "GlobalAveragePool1d",
    "MultiHeadSelfAttention",
    "FeedForward",
    "TransformerEncoderBlock",
    "CrossEntropyLoss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "Scheduler",
    "ConstantSchedule",
    "LinearWarmup",
    "StepDecay",
    "CosineDecay",
    "save_checkpoint",
    "load_checkpoint",
    "save_state_dict",
    "load_state_dict",
    "ModelSummary",
    "ModuleRow",
    "summarize",
    "GradientCheckError",
    "numerical_gradient",
    "check_gradient",
    "check_module_gradients",
]
