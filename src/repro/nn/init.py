"""Weight initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so that
every experiment in the reproduction is seeded and repeatable (a requirement
for the per-figure benchmark harness, which compares runs across
configurations).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = [
    "calculate_fan",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "kaiming_normal",
    "zeros",
    "ones",
    "normal",
    "uniform",
]


def calculate_fan(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight tensor shape.

    For linear layers the shape is ``(out_features, in_features)``; for 1-D
    convolutions it is ``(out_channels, in_channels, kernel_size)`` where the
    kernel size multiplies both fans (PyTorch convention).
    """
    if len(shape) < 2:
        raise ValueError("fan computation requires at least a 2-D shape")
    receptive_field = 1
    for dim in shape[2:]:
        receptive_field *= dim
    fan_in = shape[1] * receptive_field
    fan_out = shape[0] * receptive_field
    return fan_in, fan_out


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = calculate_fan(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = calculate_fan(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, a: float = math.sqrt(5)) -> np.ndarray:
    """He/Kaiming uniform initialisation (PyTorch's default for conv/linear)."""
    fan_in, _ = calculate_fan(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialisation for ReLU networks."""
    fan_in, _ = calculate_fan(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases, layer-norm offsets)."""
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one initialisation (layer-norm / batch-norm gains)."""
    return np.ones(shape)


def normal(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Truncated-free normal initialisation used for class tokens in ViT."""
    return rng.normal(0.0, std, size=shape)


def uniform(shape: Tuple[int, ...], rng: np.random.Generator, bound: float) -> np.ndarray:
    """Uniform initialisation in ``[-bound, bound]``."""
    return rng.uniform(-bound, bound, size=shape)
