"""Learning-rate schedulers.

The paper's training protocol uses two schedules:

* **pre-training** — Adam with a *linear warm-up* of the learning rate from
  1e-7 to 5e-4 (:class:`LinearWarmup`);
* **fine-tuning** — fixed 1e-4 with a 10x reduction after 10 epochs
  (:class:`StepDecay`).
"""

from __future__ import annotations

from typing import List

from .optim import Optimizer

__all__ = ["Scheduler", "LinearWarmup", "StepDecay", "CosineDecay", "ConstantSchedule"]


class Scheduler:
    """Base class: owns an optimiser and rewrites its ``lr`` every step."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.step_count = 0
        self.history: List[float] = []

    def learning_rate(self, step: int) -> float:
        """Return the learning rate for a given step index (0-based)."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance the schedule by one step and update the optimiser."""
        lr = self.learning_rate(self.step_count)
        self.optimizer.lr = lr
        self.history.append(lr)
        self.step_count += 1
        return lr


class ConstantSchedule(Scheduler):
    """Keep the learning rate fixed (used as a control in ablations)."""

    def __init__(self, optimizer: Optimizer, lr: float) -> None:
        super().__init__(optimizer)
        self.lr = lr

    def learning_rate(self, step: int) -> float:
        return self.lr


class LinearWarmup(Scheduler):
    """Linearly increase the learning rate from ``start_lr`` to ``peak_lr``.

    After ``warmup_steps`` the learning rate stays at ``peak_lr`` (the paper
    does not describe a decay phase for pre-training).
    """

    def __init__(
        self,
        optimizer: Optimizer,
        start_lr: float = 1e-7,
        peak_lr: float = 5e-4,
        warmup_steps: int = 100,
    ) -> None:
        super().__init__(optimizer)
        if warmup_steps <= 0:
            raise ValueError("warmup_steps must be positive")
        self.start_lr = start_lr
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps

    def learning_rate(self, step: int) -> float:
        if step >= self.warmup_steps:
            return self.peak_lr
        fraction = step / self.warmup_steps
        return self.start_lr + fraction * (self.peak_lr - self.start_lr)


class StepDecay(Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(
        self,
        optimizer: Optimizer,
        base_lr: float = 1e-4,
        step_size: int = 10,
        gamma: float = 0.1,
    ) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.base_lr = base_lr
        self.step_size = step_size
        self.gamma = gamma

    def learning_rate(self, step: int) -> float:
        return self.base_lr * (self.gamma ** (step // self.step_size))


class CosineDecay(Scheduler):
    """Cosine annealing from ``base_lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(
        self,
        optimizer: Optimizer,
        base_lr: float,
        total_steps: int,
        min_lr: float = 0.0,
    ) -> None:
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.base_lr = base_lr
        self.total_steps = total_steps
        self.min_lr = min_lr

    def learning_rate(self, step: int) -> float:
        import math

        progress = min(step / self.total_steps, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
