"""First-order optimisers.

The paper trains with Adam (linear warm-up during pre-training, fixed then
decayed learning rate during fine-tuning); SGD with momentum and AdamW are
included for the ablation benchmarks and as commonly expected baselines.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping, which the trainer logs to detect
    exploding gradients.
    """
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for parameter in parameters:
            parameter.grad *= scale
    return total


class Optimizer:
    """Base class holding the parameter list and the current learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear the gradient of every managed parameter."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update; implemented by sub-classes."""
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Return optimiser hyper-state (learning rate and step count)."""
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore optimiser hyper-state."""
        self.lr = float(state["lr"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay > 0.0:
                gradient = gradient + self.weight_decay * parameter.data
            if self.momentum > 0.0:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(parameter.data)
                self._velocity[index] = self.momentum * self._velocity[index] + gradient
                gradient = self._velocity[index]
            parameter.data -= self.lr * gradient


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba), the paper's training optimiser."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1**self._step_count
        bias_correction2 = 1.0 - self.beta2**self._step_count
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay > 0.0:
                gradient = gradient + self.weight_decay * parameter.data
            self._first_moment[index] = (
                self.beta1 * self._first_moment[index] + (1.0 - self.beta1) * gradient
            )
            self._second_moment[index] = (
                self.beta2 * self._second_moment[index] + (1.0 - self.beta2) * gradient**2
            )
            corrected_first = self._first_moment[index] / bias_correction1
            corrected_second = self._second_moment[index] / bias_correction2
            parameter.data -= self.lr * corrected_first / (np.sqrt(corrected_second) + self.eps)

    def state_dict(self) -> dict:
        return {"lr": self.lr, "step_count": self._step_count}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])
        self._step_count = int(state.get("step_count", 0))


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        if self.weight_decay > 0.0:
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.data -= self.lr * self.weight_decay * parameter.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay
