"""Module system: stateful containers for parameters and sub-modules.

Mirrors the ``torch.nn.Module`` contract closely enough that the model code
in :mod:`repro.models` reads like ordinary PyTorch:

* parameters and sub-modules assigned as attributes are registered
  automatically;
* ``parameters()`` / ``named_parameters()`` walk the tree;
* ``state_dict()`` / ``load_state_dict()`` serialise every parameter and
  buffer (running statistics, quantisation scales, ...);
* ``train()`` / ``eval()`` toggle behaviour of dropout and batch-norm.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable model parameter."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Sub-classes implement :meth:`forward`; calling the module invokes it.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array that is part of the module state."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def add_module(self, name: str, module: "Module") -> None:
        """Register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs for the whole subtree."""
        for name, parameter in self._parameters.items():
            yield (prefix + name, parameter)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        """Return every trainable parameter in the subtree."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(qualified_name, buffer)`` pairs for the whole subtree."""
        for name, buffer in self._buffers.items():
            yield (prefix + name, buffer)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        """Yield the immediate child modules."""
        yield from self._modules.values()

    # ------------------------------------------------------------------ #
    # Mode switching / gradient handling
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Put the whole subtree in training (or evaluation) mode."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Put the whole subtree in evaluation mode."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear the gradients of every parameter in the subtree."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self, trainable_only: bool = True) -> int:
        """Total number of scalar parameters in the subtree."""
        return int(sum(parameter.size for parameter in self.parameters()))

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of every parameter and buffer value."""
        state: Dict[str, np.ndarray] = {}
        for name, parameter in self.named_parameters():
            state[name] = parameter.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = np.asarray(buffer).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter and buffer values previously produced by :meth:`state_dict`."""
        own_parameters = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        missing = (set(own_parameters) | set(own_buffers)) - set(state)
        unexpected = set(state) - (set(own_parameters) | set(own_buffers))
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, parameter in own_parameters.items():
            if name in state:
                value = np.asarray(state[name])
                if value.shape != parameter.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: expected {parameter.shape}, got {value.shape}"
                    )
                parameter.data[...] = value
        for name, buffer in own_buffers.items():
            if name in state:
                value = np.asarray(state[name])
                buffer[...] = value.reshape(buffer.shape)

    # ------------------------------------------------------------------ #
    # Invocation
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        """Compute the module output; must be overridden by sub-classes."""
        raise NotImplementedError(f"{type(self).__name__} does not implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = []
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            child_lines.append(f"  ({name}): {child_repr}")
        body = "\n".join(child_lines)
        if body:
            return f"{type(self).__name__}(\n{body}\n)"
        return f"{type(self).__name__}()"


class Sequential(Module):
    """Container that applies child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            self.add_module(str(index), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x


class ModuleList(Module):
    """Holds sub-modules in a list so they are properly registered."""

    def __init__(self, modules: Optional[Iterable[Module]] = None) -> None:
        super().__init__()
        self._length = 0
        if modules is not None:
            for module in modules:
                self.append(module)

    def append(self, module: Module) -> "ModuleList":
        """Append a module to the list."""
        self.add_module(str(self._length), module)
        self._length += 1
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> Module:
        return self._modules[str(range(self._length)[index])]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called directly")
