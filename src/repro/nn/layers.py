"""Stateful neural-network layers built on the functional API.

The layer set covers exactly what the Bioformer and TEMPONet architectures
need: linear projections, 1-D convolutions (strided, padded and dilated),
layer / batch normalisation, dropout, pooling and the usual activations.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Linear",
    "Conv1d",
    "LayerNorm",
    "BatchNorm1d",
    "Dropout",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Flatten",
    "AvgPool1d",
    "MaxPool1d",
    "GlobalAveragePool1d",
]


def _default_rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    """Return ``rng`` or a freshly seeded generator."""
    return rng if rng is not None else np.random.default_rng()


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to add a learnable bias.
    rng:
        Random generator used for weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        generator = _default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), generator), name="weight"
        )
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias: Optional[Parameter] = Parameter(
                init.uniform((out_features,), generator, bound), name="bias"
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None})"
        )


class Conv1d(Module):
    """1-D convolution over ``(batch, channels, length)`` inputs.

    Supports stride, zero padding and dilation; groups are not needed by the
    reproduced architectures and are intentionally omitted.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        dilation: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        generator = _default_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.dilation = dilation
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kernel_size), generator),
            name="weight",
        )
        if bias:
            bound = 1.0 / math.sqrt(in_channels * kernel_size)
            self.bias: Optional[Parameter] = Parameter(
                init.uniform((out_channels,), generator, bound), name="bias"
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = F.conv1d(
            x,
            self.weight,
            bias=None,
            stride=self.stride,
            padding=self.padding,
            dilation=self.dilation,
        )
        if self.bias is not None:
            out = out + self.bias.reshape((1, self.out_channels, 1))
        return out

    def output_length(self, length: int) -> int:
        """Length of the output sequence for an input of ``length`` samples."""
        effective = self.dilation * (self.kernel_size - 1) + 1
        return (length + 2 * self.padding - effective) // self.stride + 1

    def __repr__(self) -> str:
        return (
            f"Conv1d({self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, dilation={self.dilation})"
        )


class LayerNorm(Module):
    """Layer normalisation with learnable affine parameters."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)), name="weight")
        self.bias = Parameter(init.zeros((normalized_shape,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape}, eps={self.eps})"


class BatchNorm1d(Module):
    """Batch normalisation for 2-D ``(B, C)`` or 3-D ``(B, C, L)`` inputs."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)), name="weight")
        self.bias = Parameter(init.zeros((num_features,)), name="bias")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(
            x,
            self.running_mean,
            self.running_var,
            self.weight,
            self.bias,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.num_features}, eps={self.eps}, momentum={self.momentum})"


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, probability: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.probability = probability
        self._rng = _default_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.probability, training=self.training, rng=self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.probability})"


class ReLU(Module):
    """Rectified linear unit activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class GELU(Module):
    """Gaussian error linear unit activation (tanh approximation)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Identity(Module):
    """Pass-through module, useful as a configurable placeholder."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    """Flatten every dimension after ``start_dim`` into a single one."""

    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=self.start_dim)


class AvgPool1d(Module):
    """Average pooling over the temporal dimension of ``(B, C, L)`` inputs."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool1d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool1d(kernel_size={self.kernel_size}, stride={self.stride})"


class MaxPool1d(Module):
    """Max pooling over the temporal dimension of ``(B, C, L)`` inputs."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool1d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool1d(kernel_size={self.kernel_size}, stride={self.stride})"


class GlobalAveragePool1d(Module):
    """Average over the whole temporal dimension, producing ``(B, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=-1)
