"""``repro.baselines`` — classical sEMG gesture-recognition baselines.

The paper's related work positions the Bioformer against the pre-deep-
learning state of the art: hand-crafted time-domain features (Hudgins' set
and friends) fed to shallow classifiers such as LDA, SVMs and random
forests, whose accuracy collapses across recording sessions.  This package
implements that whole stack from scratch so the repository can reproduce
the comparison:

* :mod:`repro.baselines.features` — MAV, RMS, WL, ZC, SSC, Hjorth, AR and
  histogram features per electrode;
* :mod:`repro.baselines.linear` — LDA, linear SVM, softmax regression;
* :mod:`repro.baselines.trees` — decision trees and random forests;
* :mod:`repro.baselines.neighbors` — k-nearest neighbours;
* :mod:`repro.baselines.pipeline` — feature/scaler/classifier pipelines and
  the session-protocol benchmark used by the harness.
"""

from .base import BaseClassifier, StandardScaler
from .features import DEFAULT_FEATURES, FeatureSet
from .linear import LinearDiscriminantAnalysis, LinearSVM, SoftmaxRegression
from .neighbors import KNeighborsClassifier
from .pipeline import (
    BaselineResult,
    FeaturePipeline,
    default_baselines,
    evaluate_baselines,
    render_baseline_table,
)
from .trees import DecisionTreeClassifier, RandomForestClassifier

__all__ = [
    "BaseClassifier",
    "StandardScaler",
    "FeatureSet",
    "DEFAULT_FEATURES",
    "LinearDiscriminantAnalysis",
    "LinearSVM",
    "SoftmaxRegression",
    "KNeighborsClassifier",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "FeaturePipeline",
    "BaselineResult",
    "default_baselines",
    "evaluate_baselines",
    "render_baseline_table",
]
