"""Feature-extraction + classification pipelines and the baseline benchmark.

A classical sEMG recogniser is a three-stage pipeline: hand-crafted
time-domain features per channel, feature standardisation with training-set
statistics, and a shallow classifier.  :class:`FeaturePipeline` packages the
three stages behind the same window-level interface the deep models use, so
the benchmark harness can put TEMPONet, the Bioformers and the classical
baselines in one table.

:func:`default_baselines` returns the classifiers used by the comparison
(LDA, linear SVM, softmax regression, random forest, k-NN) and
:func:`evaluate_baselines` runs the paper's session protocol — train on
sessions 1-5, test per session on 6-10 — for each of them, which is the
experiment showing why inter-session variability pushed the field towards
end-to-end deep models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.dataset import ArrayDataset
from ..data.splits import SubjectSplit
from ..utils.tables import format_table
from .base import BaseClassifier, StandardScaler
from .features import DEFAULT_FEATURES, FeatureSet
from .linear import LinearDiscriminantAnalysis, LinearSVM, SoftmaxRegression
from .neighbors import KNeighborsClassifier
from .trees import RandomForestClassifier

__all__ = [
    "FeaturePipeline",
    "BaselineResult",
    "default_baselines",
    "evaluate_baselines",
    "render_baseline_table",
]


class FeaturePipeline:
    """Feature extraction + standardisation + classical classifier.

    Parameters
    ----------
    classifier:
        Any :class:`~repro.baselines.base.BaseClassifier`.
    features:
        Feature selection; defaults to the Hudgins-style time-domain set.
    name:
        Label used in reports (defaults to the classifier class name).
    """

    def __init__(
        self,
        classifier: BaseClassifier,
        features: Optional[FeatureSet] = None,
        name: Optional[str] = None,
    ) -> None:
        self.classifier = classifier
        self.features = features if features is not None else FeatureSet(DEFAULT_FEATURES)
        self.scaler = StandardScaler()
        self.name = name if name is not None else type(classifier).__name__
        self._fitted = False

    # ------------------------------------------------------------------ #
    # Window-level interface (mirrors the deep models)
    # ------------------------------------------------------------------ #
    def _featurize(self, windows: np.ndarray) -> np.ndarray:
        return self.features.extract(np.asarray(windows))

    def fit(self, dataset: ArrayDataset) -> "FeaturePipeline":
        """Fit the scaler and the classifier on a window dataset."""
        if len(dataset) == 0:
            raise ValueError("cannot fit a pipeline on an empty dataset")
        matrix = self.scaler.fit_transform(self._featurize(dataset.windows))
        self.classifier.fit(matrix, dataset.labels)
        self._fitted = True
        return self

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Predict gesture classes for a batch of raw windows."""
        if not self._fitted:
            raise RuntimeError("pipeline must be fitted before prediction")
        return self.classifier.predict(self.scaler.transform(self._featurize(windows)))

    def score(self, dataset: ArrayDataset) -> float:
        """Accuracy on a window dataset."""
        if len(dataset) == 0:
            raise ValueError("cannot score an empty dataset")
        return float(np.mean(self.predict(dataset.windows) == dataset.labels))

    def score_per_session(self, per_session: Dict[int, ArrayDataset]) -> Dict[int, float]:
        """Accuracy broken down by test session (the Fig. 2 axis)."""
        return {session: self.score(dataset) for session, dataset in per_session.items()}

    @property
    def feature_dimension(self) -> Optional[int]:
        """Length of the extracted feature vector (known after fitting)."""
        if self.scaler.mean_ is None:
            return None
        return int(self.scaler.mean_.shape[0])


@dataclass
class BaselineResult:
    """Outcome of one classical baseline on the session protocol."""

    name: str
    train_accuracy: float
    test_accuracy: float
    per_session: Dict[int, float] = field(default_factory=dict)

    @property
    def session_drop(self) -> float:
        """Accuracy drop from the first to the last test session."""
        if len(self.per_session) < 2:
            return 0.0
        sessions = sorted(self.per_session)
        return self.per_session[sessions[0]] - self.per_session[sessions[-1]]


def default_baselines(seed: int = 0) -> Dict[str, BaseClassifier]:
    """The classical classifiers compared against the deep models."""
    return {
        "LDA": LinearDiscriminantAnalysis(shrinkage=0.1),
        "LinearSVM": LinearSVM(epochs=25, seed=seed),
        "Softmax": SoftmaxRegression(epochs=150),
        "RandomForest": RandomForestClassifier(num_trees=20, max_depth=10, seed=seed),
        "kNN": KNeighborsClassifier(num_neighbors=7),
    }


def evaluate_baselines(
    split: SubjectSplit,
    classifiers: Optional[Dict[str, BaseClassifier]] = None,
    features: Optional[FeatureSet] = None,
    seed: int = 0,
) -> List[BaselineResult]:
    """Run the paper's session protocol for every classical baseline.

    Each classifier is trained on the subject's training sessions and scored
    on the held-out sessions, overall and per session.
    """
    classifiers = classifiers if classifiers is not None else default_baselines(seed)
    results: List[BaselineResult] = []
    for name, classifier in classifiers.items():
        pipeline = FeaturePipeline(classifier, features=features, name=name)
        pipeline.fit(split.train)
        results.append(
            BaselineResult(
                name=name,
                train_accuracy=pipeline.score(split.train),
                test_accuracy=pipeline.score(split.test),
                per_session=pipeline.score_per_session(split.test_per_session),
            )
        )
    return results


def render_baseline_table(results: Sequence[BaselineResult]) -> str:
    """Plain-text comparison table of the classical baselines."""
    sessions = sorted({session for result in results for session in result.per_session})
    headers = ["classifier", "train", "test"] + [f"s{session}" for session in sessions]
    rows = []
    for result in results:
        row = [
            result.name,
            f"{100 * result.train_accuracy:.1f}%",
            f"{100 * result.test_accuracy:.1f}%",
        ]
        row += [f"{100 * result.per_session.get(session, float('nan')):.1f}%" for session in sessions]
        rows.append(row)
    return format_table(headers, rows, title="Classical baselines (train sessions 1-5, test 6-10)")
