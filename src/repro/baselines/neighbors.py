"""k-nearest-neighbour classifier (distance-weighted voting)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import BaseClassifier, check_fitted, validate_xy

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(BaseClassifier):
    """Brute-force k-NN over the feature space.

    Parameters
    ----------
    num_neighbors:
        Number of neighbours voting for each query.
    weighted:
        Use inverse-distance weighting instead of a uniform vote.
    chunk_size:
        Queries are processed in chunks to bound the distance-matrix memory.
    """

    def __init__(self, num_neighbors: int = 5, weighted: bool = True, chunk_size: int = 256) -> None:
        if num_neighbors < 1:
            raise ValueError("num_neighbors must be at least 1")
        self.num_neighbors = num_neighbors
        self.weighted = weighted
        self.chunk_size = chunk_size
        self.features_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "KNeighborsClassifier":
        features, labels = validate_xy(features, labels)
        if len(labels) < self.num_neighbors:
            raise ValueError(
                f"need at least {self.num_neighbors} training samples, got {len(labels)}"
            )
        self.features_ = features
        self.labels_ = labels
        self.classes_ = np.unique(labels)
        return self

    def _vote(self, queries: np.ndarray) -> np.ndarray:
        distances = (
            (queries**2).sum(axis=1, keepdims=True)
            - 2.0 * queries @ self.features_.T
            + (self.features_**2).sum(axis=1)[None, :]
        )
        distances = np.maximum(distances, 0.0)
        neighbor_indices = np.argpartition(distances, self.num_neighbors - 1, axis=1)[
            :, : self.num_neighbors
        ]
        neighbor_labels = self.labels_[neighbor_indices]
        if self.weighted:
            neighbor_distances = np.take_along_axis(distances, neighbor_indices, axis=1)
            weights = 1.0 / (np.sqrt(neighbor_distances) + 1e-9)
        else:
            weights = np.ones_like(neighbor_labels, dtype=np.float64)
        votes = np.zeros((queries.shape[0], len(self.classes_)))
        for class_index, label in enumerate(self.classes_):
            votes[:, class_index] = np.where(neighbor_labels == label, weights, 0.0).sum(axis=1)
        return votes

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        check_fitted(self, "features_")
        features = validate_xy(features)
        probabilities = np.zeros((features.shape[0], len(self.classes_)))
        for start in range(0, features.shape[0], self.chunk_size):
            chunk = features[start : start + self.chunk_size]
            votes = self._vote(chunk)
            probabilities[start : start + self.chunk_size] = votes / np.maximum(
                votes.sum(axis=1, keepdims=True), 1e-12
            )
        return probabilities

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(features), axis=1)]
