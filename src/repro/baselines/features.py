"""Hand-crafted sEMG time-domain features.

Before deep learning, sEMG gesture recognition relied on compact per-channel
time-domain descriptors (Hudgins' set and its extensions) fed to classical
classifiers — the SVM / RF / LDA approaches cited in the paper's related
work.  This module implements those descriptors so the repository can
reproduce that comparison point and quantify what the end-to-end learned
models buy over feature engineering:

* amplitude features — mean absolute value (MAV), root mean square (RMS),
  integrated EMG (IEMG), variance, waveform length (WL), Willison amplitude
  (WAMP), log detector;
* frequency-surrogate features — zero crossings (ZC), slope sign changes
  (SSC), Hjorth mobility and complexity;
* model-based features — autoregressive (AR) coefficients estimated per
  channel with Levinson-Durbin recursion;
* distribution features — a fixed-bin amplitude histogram.

All extractors consume a window batch of shape ``(num_windows, channels,
samples)`` and return ``(num_windows, channels * k)`` arrays; the
:class:`FeatureSet` front-end concatenates any selection of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "mean_absolute_value",
    "root_mean_square",
    "integrated_emg",
    "variance",
    "waveform_length",
    "willison_amplitude",
    "log_detector",
    "zero_crossings",
    "slope_sign_changes",
    "hjorth_mobility",
    "hjorth_complexity",
    "autoregressive_coefficients",
    "amplitude_histogram",
    "FeatureSet",
    "DEFAULT_FEATURES",
]


def _as_batch(windows: np.ndarray) -> np.ndarray:
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim == 2:
        windows = windows[None, ...]
    if windows.ndim != 3:
        raise ValueError(f"expected (windows, channels, samples), got shape {windows.shape}")
    return windows


# --------------------------------------------------------------------- #
# Amplitude features
# --------------------------------------------------------------------- #
def mean_absolute_value(windows: np.ndarray) -> np.ndarray:
    """MAV: mean of ``|x|`` per channel — the classic sEMG intensity feature."""
    return np.abs(_as_batch(windows)).mean(axis=-1)


def root_mean_square(windows: np.ndarray) -> np.ndarray:
    """RMS amplitude per channel."""
    return np.sqrt((_as_batch(windows) ** 2).mean(axis=-1))


def integrated_emg(windows: np.ndarray) -> np.ndarray:
    """IEMG: sum of ``|x|`` per channel."""
    return np.abs(_as_batch(windows)).sum(axis=-1)


def variance(windows: np.ndarray) -> np.ndarray:
    """Signal variance per channel."""
    return _as_batch(windows).var(axis=-1)


def waveform_length(windows: np.ndarray) -> np.ndarray:
    """WL: cumulative absolute first difference (combined amplitude/frequency cue)."""
    return np.abs(np.diff(_as_batch(windows), axis=-1)).sum(axis=-1)


def willison_amplitude(windows: np.ndarray, threshold: float = 0.05) -> np.ndarray:
    """WAMP: number of consecutive-sample jumps exceeding ``threshold``."""
    return (np.abs(np.diff(_as_batch(windows), axis=-1)) > threshold).sum(axis=-1).astype(np.float64)


def log_detector(windows: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """LOG: exponential of the mean log amplitude (robust intensity estimate)."""
    return np.exp(np.log(np.abs(_as_batch(windows)) + eps).mean(axis=-1))


# --------------------------------------------------------------------- #
# Frequency-surrogate features
# --------------------------------------------------------------------- #
def zero_crossings(windows: np.ndarray, threshold: float = 0.0) -> np.ndarray:
    """ZC: sign changes of the signal (a cheap spectral-centroid surrogate)."""
    batch = _as_batch(windows)
    sign_change = np.diff(np.signbit(batch), axis=-1)
    magnitude_ok = np.abs(np.diff(batch, axis=-1)) >= threshold
    return (sign_change & magnitude_ok).sum(axis=-1).astype(np.float64)


def slope_sign_changes(windows: np.ndarray, threshold: float = 0.0) -> np.ndarray:
    """SSC: sign changes of the first difference."""
    first_difference = np.diff(_as_batch(windows), axis=-1)
    change = np.diff(np.signbit(first_difference), axis=-1)
    magnitude_ok = np.abs(np.diff(first_difference, axis=-1)) >= threshold
    return (change & magnitude_ok).sum(axis=-1).astype(np.float64)


def hjorth_mobility(windows: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Hjorth mobility: std of the derivative over std of the signal."""
    batch = _as_batch(windows)
    derivative = np.diff(batch, axis=-1)
    return np.sqrt(derivative.var(axis=-1) / (batch.var(axis=-1) + eps))


def hjorth_complexity(windows: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Hjorth complexity: mobility of the derivative over mobility of the signal."""
    batch = _as_batch(windows)
    derivative = np.diff(batch, axis=-1)
    return hjorth_mobility(derivative, eps) / (hjorth_mobility(batch, eps) + eps)


# --------------------------------------------------------------------- #
# Model-based features
# --------------------------------------------------------------------- #
def autoregressive_coefficients(windows: np.ndarray, order: int = 4) -> np.ndarray:
    """Per-channel AR(``order``) coefficients via Levinson-Durbin recursion.

    AR coefficients summarise the short-term spectral shape of the signal
    and are a staple of classical sEMG pipelines.  Returns an array of shape
    ``(windows, channels * order)``.
    """
    if order < 1:
        raise ValueError("AR order must be at least 1")
    batch = _as_batch(windows)
    num_windows, channels, samples = batch.shape
    if samples <= order:
        raise ValueError(f"window of {samples} samples is too short for AR({order})")
    centered = batch - batch.mean(axis=-1, keepdims=True)
    # Autocorrelation lags 0..order for every (window, channel).
    autocorrelation = np.empty((num_windows, channels, order + 1))
    for lag in range(order + 1):
        if lag == 0:
            autocorrelation[..., lag] = (centered * centered).sum(axis=-1)
        else:
            autocorrelation[..., lag] = (centered[..., lag:] * centered[..., :-lag]).sum(axis=-1)
    autocorrelation[..., 0] = np.maximum(autocorrelation[..., 0], 1e-12)

    coefficients = np.zeros((num_windows, channels, order))
    error = autocorrelation[..., 0].copy()
    for step in range(order):
        # Reflection coefficient.
        accumulator = autocorrelation[..., step + 1].copy()
        for previous in range(step):
            accumulator -= coefficients[..., previous] * autocorrelation[..., step - previous]
        reflection = accumulator / np.maximum(error, 1e-12)
        # Update the coefficient vector (Levinson recursion).
        updated = coefficients.copy()
        updated[..., step] = reflection
        for previous in range(step):
            updated[..., previous] = (
                coefficients[..., previous] - reflection * coefficients[..., step - 1 - previous]
            )
        coefficients = updated
        error = error * (1.0 - reflection**2)
        error = np.maximum(error, 1e-12)
    return coefficients.reshape(num_windows, channels * order)


def amplitude_histogram(windows: np.ndarray, bins: int = 8, limit: float = 3.0) -> np.ndarray:
    """Normalised histogram of per-channel amplitudes (EMG histogram feature).

    Each channel is standardised, clipped to ``[-limit, limit]`` and binned
    into ``bins`` equal-width buckets; the counts are normalised to sum to
    one per channel.
    """
    if bins < 2:
        raise ValueError("need at least two histogram bins")
    batch = _as_batch(windows)
    num_windows, channels, samples = batch.shape
    standardized = (batch - batch.mean(axis=-1, keepdims=True)) / (
        batch.std(axis=-1, keepdims=True) + 1e-12
    )
    clipped = np.clip(standardized, -limit, limit)
    edges = np.linspace(-limit, limit, bins + 1)
    indices = np.clip(np.digitize(clipped, edges) - 1, 0, bins - 1)
    histogram = np.zeros((num_windows, channels, bins))
    for bin_index in range(bins):
        histogram[..., bin_index] = (indices == bin_index).sum(axis=-1)
    return (histogram / samples).reshape(num_windows, channels * bins)


# --------------------------------------------------------------------- #
# Feature-set front end
# --------------------------------------------------------------------- #
#: Name -> (extractor, features produced per channel) registry.
_REGISTRY: Dict[str, Tuple[Callable[[np.ndarray], np.ndarray], int]] = {
    "mav": (mean_absolute_value, 1),
    "rms": (root_mean_square, 1),
    "iemg": (integrated_emg, 1),
    "var": (variance, 1),
    "wl": (waveform_length, 1),
    "wamp": (willison_amplitude, 1),
    "log": (log_detector, 1),
    "zc": (zero_crossings, 1),
    "ssc": (slope_sign_changes, 1),
    "hjorth_mobility": (hjorth_mobility, 1),
    "hjorth_complexity": (hjorth_complexity, 1),
    "ar4": (autoregressive_coefficients, 4),
    "hist8": (amplitude_histogram, 8),
}

#: The Hudgins-style default set used by the classical-baseline experiments.
DEFAULT_FEATURES: Tuple[str, ...] = ("mav", "rms", "wl", "zc", "ssc", "var")


@dataclass
class FeatureSet:
    """A named selection of per-channel feature extractors.

    Example
    -------
    >>> features = FeatureSet(("mav", "wl", "zc"))
    >>> matrix = features.extract(windows)      # (num_windows, channels * 3)
    """

    names: Sequence[str] = field(default_factory=lambda: DEFAULT_FEATURES)

    def __post_init__(self) -> None:
        unknown = [name for name in self.names if name not in _REGISTRY]
        if unknown:
            raise ValueError(f"unknown features {unknown}; available: {sorted(_REGISTRY)}")
        if not self.names:
            raise ValueError("a FeatureSet needs at least one feature")

    @staticmethod
    def available() -> List[str]:
        """Names of every registered feature extractor."""
        return sorted(_REGISTRY)

    def features_per_channel(self) -> int:
        """Number of scalar features produced per channel."""
        return sum(_REGISTRY[name][1] for name in self.names)

    def dimension(self, num_channels: int) -> int:
        """Total feature-vector length for ``num_channels`` electrodes."""
        return num_channels * self.features_per_channel()

    def feature_names(self, num_channels: int) -> List[str]:
        """Qualified names (``ch3.rms``) of every output column."""
        labels: List[str] = []
        for name in self.names:
            width = _REGISTRY[name][1]
            for channel in range(num_channels):
                if width == 1:
                    labels.append(f"ch{channel}.{name}")
                else:
                    labels.extend(f"ch{channel}.{name}[{k}]" for k in range(width))
        return labels

    def extract(self, windows: np.ndarray) -> np.ndarray:
        """Extract the selected features from a window batch."""
        batch = _as_batch(windows)
        blocks = [_REGISTRY[name][0](batch) for name in self.names]
        return np.concatenate([block.reshape(batch.shape[0], -1) for block in blocks], axis=1)
