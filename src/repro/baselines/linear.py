"""Linear classical classifiers: LDA, linear SVM and softmax regression.

These are the classical sEMG gesture classifiers cited in the paper's
related work (Kaufmann et al., Atzori et al., Milosevic et al.): compact
linear decision functions over hand-crafted time-domain features.  They are
implemented from scratch on NumPy:

* :class:`LinearDiscriminantAnalysis` — shared-covariance Gaussian
  classifier with shrinkage regularisation;
* :class:`LinearSVM` — one-vs-rest L2-regularised hinge loss trained with
  mini-batch SGD (the Pegasos-style primal solver);
* :class:`SoftmaxRegression` — multinomial logistic regression trained with
  full-batch gradient descent.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import BaseClassifier, check_fitted, validate_xy

__all__ = ["LinearDiscriminantAnalysis", "LinearSVM", "SoftmaxRegression"]


class LinearDiscriminantAnalysis(BaseClassifier):
    """LDA with a shared, shrinkage-regularised covariance matrix.

    Parameters
    ----------
    shrinkage:
        Convex mixing weight between the empirical covariance and a scaled
        identity (0 = no regularisation, 1 = nearest-mean classifier).
    """

    def __init__(self, shrinkage: float = 0.1) -> None:
        if not 0.0 <= shrinkage <= 1.0:
            raise ValueError("shrinkage must lie in [0, 1]")
        self.shrinkage = shrinkage
        self.classes_: Optional[np.ndarray] = None
        self.means_: Optional[np.ndarray] = None
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearDiscriminantAnalysis":
        features, labels = validate_xy(features, labels)
        self.classes_ = np.unique(labels)
        num_features = features.shape[1]
        means = np.stack([features[labels == label].mean(axis=0) for label in self.classes_])
        priors = np.array([np.mean(labels == label) for label in self.classes_])

        pooled = np.zeros((num_features, num_features))
        for index, label in enumerate(self.classes_):
            centered = features[labels == label] - means[index]
            pooled += centered.T @ centered
        pooled /= max(len(labels) - len(self.classes_), 1)
        trace_scale = np.trace(pooled) / num_features
        covariance = (1.0 - self.shrinkage) * pooled + self.shrinkage * trace_scale * np.eye(
            num_features
        )
        precision = np.linalg.pinv(covariance)

        self.means_ = means
        self.coef_ = means @ precision
        self.intercept_ = -0.5 * np.einsum("kd,dc,kc->k", means, precision, means) + np.log(
            np.maximum(priors, 1e-12)
        )
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Per-class linear discriminant scores."""
        check_fitted(self, "coef_")
        return validate_xy(features) @ self.coef_.T + self.intercept_

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_function(features), axis=1)]

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        scores = self.decision_function(features)
        scores -= scores.max(axis=1, keepdims=True)
        exp = np.exp(scores)
        return exp / exp.sum(axis=1, keepdims=True)


class LinearSVM(BaseClassifier):
    """One-vs-rest linear SVM trained on the primal hinge loss with SGD.

    Parameters
    ----------
    regularization:
        L2 penalty weight (lambda); larger values give wider margins.
    epochs, batch_size, learning_rate:
        SGD schedule; the learning rate decays as ``1 / (1 + t)``.
    seed:
        Shuffling seed (training is deterministic given the seed).
    """

    def __init__(
        self,
        regularization: float = 1e-4,
        epochs: int = 30,
        batch_size: int = 64,
        learning_rate: float = 0.1,
        seed: int = 0,
    ) -> None:
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        self.regularization = regularization
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed
        self.classes_: Optional[np.ndarray] = None
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVM":
        features, labels = validate_xy(features, labels)
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(labels)
        num_samples, num_features = features.shape
        num_classes = len(self.classes_)
        weights = np.zeros((num_classes, num_features))
        biases = np.zeros(num_classes)
        targets = np.where(labels[:, None] == self.classes_[None, :], 1.0, -1.0)

        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(num_samples)
            for start in range(0, num_samples, self.batch_size):
                batch = order[start : start + self.batch_size]
                x = features[batch]
                y = targets[batch]  # (batch, classes) in {-1, +1}
                margins = y * (x @ weights.T + biases)
                violating = margins < 1.0
                learning_rate = self.learning_rate / (1.0 + 0.01 * step)
                step += 1
                gradient_w = self.regularization * weights
                gradient_b = np.zeros(num_classes)
                if np.any(violating):
                    weighted = (violating * y).T @ x / len(batch)  # (classes, features)
                    gradient_w -= weighted
                    gradient_b -= (violating * y).mean(axis=0)
                weights -= learning_rate * gradient_w
                biases -= learning_rate * gradient_b

        self.coef_ = weights
        self.intercept_ = biases
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """One-vs-rest margins."""
        check_fitted(self, "coef_")
        return validate_xy(features) @ self.coef_.T + self.intercept_

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_function(features), axis=1)]


class SoftmaxRegression(BaseClassifier):
    """Multinomial logistic regression trained with gradient descent."""

    def __init__(
        self,
        learning_rate: float = 0.5,
        epochs: int = 200,
        regularization: float = 1e-4,
    ) -> None:
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.regularization = regularization
        self.classes_: Optional[np.ndarray] = None
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None

    def _softmax(self, scores: np.ndarray) -> np.ndarray:
        scores = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(scores)
        return exp / exp.sum(axis=1, keepdims=True)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "SoftmaxRegression":
        features, labels = validate_xy(features, labels)
        self.classes_ = np.unique(labels)
        num_samples, num_features = features.shape
        num_classes = len(self.classes_)
        one_hot = (labels[:, None] == self.classes_[None, :]).astype(np.float64)
        weights = np.zeros((num_classes, num_features))
        biases = np.zeros(num_classes)
        for _ in range(self.epochs):
            probabilities = self._softmax(features @ weights.T + biases)
            error = (probabilities - one_hot) / num_samples
            weights -= self.learning_rate * (error.T @ features + self.regularization * weights)
            biases -= self.learning_rate * error.sum(axis=0)
        self.coef_ = weights
        self.intercept_ = biases
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        check_fitted(self, "coef_")
        return self._softmax(validate_xy(features) @ self.coef_.T + self.intercept_)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(features), axis=1)]
