"""Decision trees and random forests (from scratch, NumPy only).

Random forests are one of the classical sEMG gesture classifiers the paper's
related work compares against.  The implementation here is a straightforward
CART:

* :class:`DecisionTreeClassifier` — greedy Gini-impurity splits with depth /
  leaf-size stopping rules and per-split feature subsampling (so the same
  class doubles as the forest's base learner);
* :class:`RandomForestClassifier` — bootstrap-aggregated trees with
  majority (probability-averaged) voting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .base import BaseClassifier, check_fitted, validate_xy

__all__ = ["DecisionTreeClassifier", "RandomForestClassifier"]


@dataclass
class _Node:
    """One node of a fitted decision tree."""

    prediction: np.ndarray  # class-probability vector at this node
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - (proportions**2).sum())


class DecisionTreeClassifier(BaseClassifier):
    """CART classification tree with Gini-impurity splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (``None`` = grow until pure / too small).
    min_samples_split:
        Minimum number of samples required to attempt a split.
    max_features:
        Number of candidate features per split (``None`` = all, ``"sqrt"`` =
        square root of the feature count — the forest default).
    seed:
        Seed for the per-split feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = 12,
        min_samples_split: int = 4,
        max_features: Optional[object] = None,
        seed: int = 0,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be at least 2")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self.root_: Optional[_Node] = None
        self.classes_: Optional[np.ndarray] = None
        self.num_features_: int = 0

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def _num_candidate_features(self) -> int:
        if self.max_features is None:
            return self.num_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.num_features_)))
        return min(int(self.max_features), self.num_features_)

    def _best_split(self, features, class_indices, rng):
        num_samples = features.shape[0]
        parent_counts = np.bincount(class_indices, minlength=len(self.classes_))
        parent_impurity = _gini(parent_counts)
        best = None
        candidates = rng.choice(
            self.num_features_, size=self._num_candidate_features(), replace=False
        )
        for feature in candidates:
            order = np.argsort(features[:, feature], kind="stable")
            sorted_values = features[order, feature]
            sorted_classes = class_indices[order]
            left_counts = np.zeros(len(self.classes_))
            right_counts = parent_counts.astype(np.float64).copy()
            for split_point in range(1, num_samples):
                moved = sorted_classes[split_point - 1]
                left_counts[moved] += 1
                right_counts[moved] -= 1
                if sorted_values[split_point] == sorted_values[split_point - 1]:
                    continue
                left_fraction = split_point / num_samples
                impurity = left_fraction * _gini(left_counts) + (1 - left_fraction) * _gini(
                    right_counts
                )
                gain = parent_impurity - impurity
                if best is None or gain > best[0]:
                    threshold = 0.5 * (sorted_values[split_point] + sorted_values[split_point - 1])
                    best = (gain, feature, threshold)
        if best is None or best[0] <= 1e-12:
            return None
        return best[1], best[2]

    def _grow(self, features, class_indices, depth, rng) -> _Node:
        counts = np.bincount(class_indices, minlength=len(self.classes_)).astype(np.float64)
        prediction = counts / counts.sum()
        node = _Node(prediction=prediction)
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or features.shape[0] < self.min_samples_split
            or counts.max() == counts.sum()
        ):
            return node
        split = self._best_split(features, class_indices, rng)
        if split is None:
            return node
        feature, threshold = split
        mask = features[:, feature] <= threshold
        if mask.all() or not mask.any():
            return node
        node.feature = int(feature)
        node.threshold = float(threshold)
        node.left = self._grow(features[mask], class_indices[mask], depth + 1, rng)
        node.right = self._grow(features[~mask], class_indices[~mask], depth + 1, rng)
        return node

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTreeClassifier":
        features, labels = validate_xy(features, labels)
        self.classes_ = np.unique(labels)
        class_indices = np.searchsorted(self.classes_, labels)
        self.num_features_ = features.shape[1]
        rng = np.random.default_rng(self.seed)
        self.root_ = self._grow(features, class_indices, depth=0, rng=rng)
        return self

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def _leaf_probabilities(self, sample: np.ndarray) -> np.ndarray:
        node = self.root_
        while not node.is_leaf:
            node = node.left if sample[node.feature] <= node.threshold else node.right
        return node.prediction

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        check_fitted(self, "root_")
        features = validate_xy(features)
        return np.stack([self._leaf_probabilities(sample) for sample in features])

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(features), axis=1)]

    def depth(self) -> int:
        """Depth of the fitted tree (0 for a single leaf)."""
        check_fitted(self, "root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)


class RandomForestClassifier(BaseClassifier):
    """Bootstrap-aggregated decision trees with probability averaging."""

    def __init__(
        self,
        num_trees: int = 30,
        max_depth: Optional[int] = 10,
        min_samples_split: int = 4,
        max_features: object = "sqrt",
        seed: int = 0,
    ) -> None:
        if num_trees < 1:
            raise ValueError("num_trees must be at least 1")
        self.num_trees = num_trees
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self.trees_: Optional[List[DecisionTreeClassifier]] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForestClassifier":
        features, labels = validate_xy(features, labels)
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(labels)
        self.trees_ = []
        num_samples = features.shape[0]
        for index in range(self.num_trees):
            bootstrap = rng.integers(0, num_samples, size=num_samples)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=self.max_features,
                seed=self.seed + index + 1,
            )
            tree.fit(features[bootstrap], labels[bootstrap])
            self.trees_.append(tree)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        check_fitted(self, "trees_")
        features = validate_xy(features)
        probabilities = np.zeros((features.shape[0], len(self.classes_)))
        for tree in self.trees_:
            tree_probabilities = tree.predict_proba(features)
            # Trees trained on bootstrap samples may miss rare classes; align
            # their columns onto the forest's class set.
            column_map = np.searchsorted(self.classes_, tree.classes_)
            probabilities[:, column_map] += tree_probabilities
        return probabilities / self.num_trees

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(features), axis=1)]
