"""Common interface and helpers shared by the classical classifiers."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["BaseClassifier", "StandardScaler", "check_fitted", "validate_xy"]


def validate_xy(features: np.ndarray, labels: Optional[np.ndarray] = None):
    """Coerce and sanity-check a feature matrix (and optional label vector)."""
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {features.shape}")
    if labels is None:
        return features
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1 or labels.shape[0] != features.shape[0]:
        raise ValueError(
            f"labels of shape {labels.shape} do not match {features.shape[0]} samples"
        )
    return features, labels


def check_fitted(estimator, attribute: str) -> None:
    """Raise a clear error when predict() is called before fit()."""
    if getattr(estimator, attribute, None) is None:
        raise RuntimeError(f"{type(estimator).__name__} must be fitted before prediction")


class BaseClassifier:
    """Minimal fit / predict / score contract shared by every baseline.

    Sub-classes implement :meth:`fit` and :meth:`predict` (and optionally
    :meth:`predict_proba`); :meth:`score` is provided here.
    """

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "BaseClassifier":
        raise NotImplementedError

    def predict(self, features: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Class-probability estimates; not every classifier provides them."""
        raise NotImplementedError(f"{type(self).__name__} does not estimate probabilities")

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on ``(features, labels)``."""
        features, labels = validate_xy(features, labels)
        return float(np.mean(self.predict(features) == labels))


class StandardScaler:
    """Per-feature standardisation (zero mean, unit variance).

    Classical classifiers — LDA shrinkage, SVM margins, kNN distances — are
    all sensitive to feature scaling, so every pipeline standardises the
    feature matrix using statistics of the *training* sessions only.
    """

    def __init__(self, eps: float = 1e-12) -> None:
        self.eps = eps
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        """Estimate the per-feature statistics."""
        features = validate_xy(features)
        self.mean_ = features.mean(axis=0)
        self.std_ = features.std(axis=0) + self.eps
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Standardise ``features`` with the fitted statistics."""
        check_fitted(self, "mean_")
        features = validate_xy(features)
        return (features - self.mean_) / self.std_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit on ``features`` and return the standardised matrix."""
        return self.fit(features).transform(features)

    def inverse_transform(self, features: np.ndarray) -> np.ndarray:
        """Undo the standardisation."""
        check_fitted(self, "mean_")
        return validate_xy(features) * self.std_ + self.mean_
