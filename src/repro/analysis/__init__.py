"""``repro.analysis`` — Pareto analysis and report formatting."""

from .pareto import ParetoPoint, is_dominated, pareto_frontier

__all__ = ["ParetoPoint", "pareto_frontier", "is_dominated"]
