"""Pareto-frontier extraction for the accuracy-vs-complexity planes (Fig. 5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

__all__ = ["ParetoPoint", "pareto_frontier", "is_dominated"]


@dataclass(frozen=True)
class ParetoPoint:
    """One architecture in an accuracy-vs-cost plane.

    ``cost`` is minimised (MACs, parameters, energy); ``accuracy`` is
    maximised.  ``label`` identifies the architecture.
    """

    label: str
    cost: float
    accuracy: float


def is_dominated(candidate: ParetoPoint, others: Iterable[ParetoPoint]) -> bool:
    """``True`` when some other point is at least as good on both axes and
    strictly better on one."""
    for other in others:
        if other is candidate:
            continue
        if other.cost <= candidate.cost and other.accuracy >= candidate.accuracy:
            if other.cost < candidate.cost or other.accuracy > candidate.accuracy:
                return True
    return False


def pareto_frontier(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """Return the non-dominated subset of ``points`` sorted by cost."""
    frontier = [point for point in points if not is_dominated(point, points)]
    return sorted(frontier, key=lambda point: (point.cost, -point.accuracy))
