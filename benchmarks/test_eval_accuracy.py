"""Streaming accuracy trajectory: scenario sweep + accuracy vs deadline.

Runs the standard robustness sweep (``ScenarioSuite.default``) and the
accuracy-vs-deadline curve through a *real* ``InferenceServer`` with a
deterministically trained probe model on seeded synthetic recordings,
and appends the headline numbers to ``BENCH_accuracy.json`` — the same
trajectory pattern ``BENCH_serving.json`` uses.

Two gates:

* **absolute floor** — the clean-scenario post-vote accuracy must clear
  a generous floor (0.75) so a collapsed probe model or broken stream
  path cannot silently record a garbage baseline;
* **trajectory baseline** — the unlimited-deadline post-vote accuracy at
  the default vote depth must not drop below the best value already
  recorded in the trajectory.  Everything in the pipeline (generator,
  probe training, windowing, voting) is seeded, so this point is exactly
  reproducible: any drop means the numerics changed, not the dice.

Finite-deadline points depend on host timing (queue depth races the
clock) and are recorded for the trajectory but never gated.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.eval import (
    RecordingGenerator,
    ScenarioSuite,
    StreamEvaluator,
    accuracy_vs_deadline,
    fit_probe_model,
)
from repro.serve import BackendCache, InferenceServer

from conftest import report

GEOMETRY = dict(num_channels=4, num_classes=5)
WINDOW, SLIDE, SMOOTHING = 60, 30, 5
SEGMENT_LABELS = [0, 2, 1, 3, 2, 4, 1, 0]
SEGMENT_SAMPLES = 600
RECORDING_SEED = 5
DEADLINES = (None, 0.1, 0.01, 0.0)
#: Collapse guard for the clean scenario's post-vote accuracy.
ACCURACY_FLOOR = 0.75
#: Slack against the best recorded baseline (exactly-reproducible point,
#: but the gate tolerates float-print rounding in the trajectory file).
BASELINE_TOLERANCE = 1e-3

_BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_accuracy.json",
)
_BENCH_HISTORY_CAP = 100
_bench_metrics: dict = {}


def record_bench(name: str, **metrics) -> None:
    """Stash ``metrics`` under ``name`` for the trajectory dump."""
    _bench_metrics[name] = {
        key: round(float(value), 4) for key, value in metrics.items()
    }


def _load_history() -> list:
    if not os.path.exists(_BENCH_PATH):
        return []
    try:
        with open(_BENCH_PATH, "r", encoding="utf-8") as handle:
            return json.load(handle).get("history", [])
    except (json.JSONDecodeError, OSError):
        return []  # a corrupt trajectory must never fail the suite


@pytest.fixture(scope="module", autouse=True)
def bench_trajectory():
    """Append this run's metrics to the BENCH_accuracy.json trajectory."""
    yield
    if not _bench_metrics:
        return
    history = _load_history()
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "geometry": dict(GEOMETRY, window=WINDOW, slide=SLIDE, smoothing=SMOOTHING),
            "metrics": dict(sorted(_bench_metrics.items())),
        }
    )
    payload = {
        "description": "Streaming accuracy trajectory (benchmarks/"
        "test_eval_accuracy.py): scenario sweep + accuracy-vs-deadline "
        "curve of the deterministic probe pipeline; newest entry last.",
        "history": history[-_BENCH_HISTORY_CAP:],
    }
    with open(_BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


@pytest.fixture(scope="module")
def generator():
    return RecordingGenerator(
        class_separation=2.5, noise_std=0.25, seed=7, **GEOMETRY
    )


@pytest.fixture(scope="module")
def probe(generator):
    return fit_probe_model(generator, WINDOW, windows_per_class=16, epochs=6)


@pytest.fixture(scope="module")
def recording(generator):
    return generator.recording(
        SEGMENT_LABELS, SEGMENT_SAMPLES, seed=RECORDING_SEED, name="bench"
    )


def _render_scenarios(reports):
    lines = [
        f"{'scenario':>14} {'window acc':>10} {'post-vote':>10} "
        f"{'degraded':>9} {'lag (win)':>10} {'latency ms':>11}"
    ]
    for name, rep in reports.items():
        lag = (
            f"{rep.mean_transition_lag_windows:.2f}"
            if rep.mean_transition_lag_windows is not None
            else "-"
        )
        latency = (
            f"{rep.mean_decision_latency_ms:.1f}"
            if rep.mean_decision_latency_ms is not None
            else "-"
        )
        lines.append(
            f"{name:>14} {rep.window_accuracy:>10.3f} "
            f"{rep.smoothed_accuracy:>10.3f} {rep.degraded_rate:>9.3f} "
            f"{lag:>10} {latency:>11}"
        )
    return "\n".join(lines)


def test_scenario_sweep_accuracy(probe, recording):
    """Robustness sweep through the managed session layer, recorded."""
    suite = ScenarioSuite.default(seed=1)
    with InferenceServer(probe, "float", cache=BackendCache()) as server:
        manager = server.open_session_manager(slide=SLIDE, smoothing=SMOOTHING)
        evaluator = StreamEvaluator(manager, slide=SLIDE, smoothing=SMOOTHING)
        reports = evaluator.evaluate_suite(recording, suite)
    report(
        "Streaming accuracy — scenario sweep (probe model, managed sessions)",
        _render_scenarios(reports),
    )
    for name, rep in reports.items():
        record_bench(
            f"scenario_{name}",
            window_accuracy=rep.window_accuracy,
            smoothed_accuracy=rep.smoothed_accuracy,
            degraded_rate=rep.degraded_rate,
        )
    clean = reports["clean"]
    assert clean.smoothed_accuracy >= ACCURACY_FLOOR, (
        f"clean post-vote accuracy {clean.smoothed_accuracy:.3f} below the "
        f"collapse floor {ACCURACY_FLOOR}"
    )
    # The dead-electrode scenario must be flagged by the session layer.
    assert reports["dead_electrode"].degraded_rate > 0.9
    assert clean.degraded_rate == 0.0


def test_accuracy_vs_deadline_curve_and_baseline_gate(probe, recording):
    """The deadline trade-off curve + the trajectory's accuracy gate."""
    with InferenceServer(probe, "float", cache=BackendCache()) as server:
        curve = accuracy_vs_deadline(
            server,
            recording,
            slide=SLIDE,
            smoothing=SMOOTHING,
            deadlines=DEADLINES,
        )
    assert len(curve.points) >= 3
    lines = [
        f"{'deadline':>10} {'shed rate':>10} {'window acc':>11} {'post-vote':>10}"
    ]
    for point in curve.points:
        tag = "unlimited" if point.deadline_s is None else f"{point.deadline_s*1e3:g}ms"
        lines.append(
            f"{tag:>10} {point.shed_rate:>10.3f} "
            f"{point.window_accuracy:>11.3f} {point.smoothed_accuracy:>10.3f}"
        )
    report("Accuracy vs deadline (probe model, burst submission)", "\n".join(lines))
    for point in curve.points:
        tag = (
            "unlimited" if point.deadline_s is None else f"{point.deadline_s*1e3:g}ms"
        )
        record_bench(
            f"deadline_{tag}",
            shed_rate=point.shed_rate,
            window_accuracy=point.window_accuracy,
            smoothed_accuracy=point.smoothed_accuracy,
        )

    unlimited = curve.unlimited
    assert unlimited.shed == 0
    # deadline 0 sheds the whole burst: the curve's floor is real.
    zero = [p for p in curve.points if p.deadline_s == 0.0]
    if zero:
        assert zero[0].shed_rate == pytest.approx(1.0)

    # ---- trajectory gate: never fall below the recorded baseline ----- #
    baseline = None
    for entry in _load_history():
        recorded = (
            entry.get("metrics", {})
            .get("deadline_unlimited", {})
            .get("smoothed_accuracy")
        )
        if recorded is not None:
            baseline = max(baseline, recorded) if baseline is not None else recorded
    if baseline is not None:
        assert unlimited.smoothed_accuracy >= baseline - BASELINE_TOLERANCE, (
            f"post-vote accuracy at the default depth regressed: "
            f"{unlimited.smoothed_accuracy:.4f} < recorded baseline "
            f"{baseline:.4f} (BENCH_accuracy.json)"
        )
    assert unlimited.smoothed_accuracy >= ACCURACY_FLOOR
