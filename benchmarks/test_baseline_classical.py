"""Benchmark of the classical-ML baselines (the paper's related-work setting).

The paper motivates end-to-end deep models by the inter-session accuracy
collapse of feature-engineering pipelines (Sec. II-B).  This benchmark runs
those pipelines — Hudgins-style time-domain features into LDA / linear SVM /
softmax / random forest / kNN — under the same session protocol the deep
models use (train on sessions 1-5, test per session on 6-10) on the
SMALL-scale surrogate, and reports the train-vs-test gap and the per-session
series.
"""

import numpy as np
import pytest

from conftest import report
from repro.baselines import FeatureSet, default_baselines, evaluate_baselines, render_baseline_table
from repro.data import subject_split


@pytest.mark.slow
@pytest.mark.benchmark(group="baselines")
def test_classical_baselines_session_protocol(benchmark, small_context):
    """Classical pipelines on subject 1 of the SMALL-scale surrogate."""
    split = subject_split(small_context.dataset, subject=1, include_pretrain=False)

    def run():
        return evaluate_baselines(
            split,
            classifiers=default_baselines(seed=0),
            features=FeatureSet(("mav", "rms", "wl", "zc", "ssc", "var")),
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Classical baselines — session protocol (SMALL scale, subject 1)",
        render_baseline_table(results),
    )

    chance = 1.0 / small_context.num_classes
    for result in results:
        # Every pipeline learns the training sessions well above chance...
        assert result.train_accuracy > 2 * chance
        # ...and still generalises above chance to the held-out sessions.
        assert result.test_accuracy > chance
        # The motivating observation: no pipeline generalises better than it fits.
        assert result.train_accuracy >= result.test_accuracy - 0.02
    # At least the strongest fitters show a clear train -> multi-day test gap.
    assert max(r.train_accuracy - r.test_accuracy for r in results) > 0.05

    best = max(results, key=lambda item: item.test_accuracy)
    print(
        f"best classical baseline: {best.name} at {100 * best.test_accuracy:.1f}% "
        f"(train {100 * best.train_accuracy:.1f}%)"
    )


@pytest.mark.benchmark(group="baselines")
def test_feature_set_ablation(benchmark, small_context):
    """Ablation: richer feature sets help the same LDA classifier."""
    from repro.baselines import LinearDiscriminantAnalysis, FeaturePipeline

    split = subject_split(small_context.dataset, subject=1, include_pretrain=False)
    feature_sets = {
        "amplitude only (mav)": FeatureSet(("mav",)),
        "Hudgins (mav,wl,zc,ssc)": FeatureSet(("mav", "wl", "zc", "ssc")),
        "extended (+rms,var,AR4)": FeatureSet(("mav", "wl", "zc", "ssc", "rms", "var", "ar4")),
    }

    def run():
        scores = {}
        for name, features in feature_sets.items():
            pipeline = FeaturePipeline(LinearDiscriminantAnalysis(), features=features)
            pipeline.fit(split.train)
            scores[name] = pipeline.score(split.test)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.utils.tables import format_table

    report(
        "Feature-set ablation (LDA, SMALL scale, subject 1)",
        format_table(
            ("feature set", "test accuracy"),
            [(name, f"{100 * value:.1f}%") for name, value in scores.items()],
        ),
    )
    chance = 1.0 / small_context.num_classes
    assert all(value > chance for value in scores.values())
    # The extended set should not do worse than amplitude alone.
    assert scores["extended (+rms,var,AR4)"] >= scores["amplitude only (mav)"] - 0.05
