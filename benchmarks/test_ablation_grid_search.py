"""Ablation benchmark — the Sec. III-A depth x heads grid search.

The paper picks Bio1 (h=8, d=1) and Bio2 (h=2, d=2) from a 4x4 grid as the
best accuracy-vs-parameters trade-offs.  The benchmark trains a reduced grid
(depth in {1, 2}, heads in {2, 8}) that contains both chosen points and
verifies they land on (or next to) the grid's Pareto frontier.
"""

import pytest

pytestmark = pytest.mark.slow  # long-horizon training; excluded from tier-1

from conftest import report
from repro.experiments import render_grid_search, run_grid_search


@pytest.mark.benchmark(group="ablation")
def test_grid_search_depth_heads(benchmark, small_context):
    """Reduced depth x heads grid on the SMALL-scale surrogate (1 subject)."""

    def run():
        return run_grid_search(
            small_context, depths=(1, 2), heads=(2, 8), subjects=[1], patch_size=10
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Sec. III-A — depth x heads grid search (SMALL scale)", render_grid_search(result))

    # The paper's two reference configurations are part of the grid.
    assert (1, 8) in result.accuracy and (2, 2) in result.accuracy
    # Every grid point learns something (well above the 12.5% chance level).
    assert all(accuracy > 0.25 for accuracy in result.accuracy.values())
    # Parameters grow with both depth and heads (the cost axis of the search).
    assert result.params[(2, 8)] > result.params[(1, 8)] > result.params[(1, 2)]
