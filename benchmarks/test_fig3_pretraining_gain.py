"""Benchmark regenerating Fig. 3 — per-subject inter-subject pre-training gain.

Paper: Bioformer (h=8, d=1) improves by +3.39% on average, with the largest
gains on the subjects whose baseline accuracy is lowest.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # long-horizon training; excluded from tier-1

from conftest import report
from repro.experiments import render_figure3, run_figure3


@pytest.mark.benchmark(group="fig3")
def test_fig3_pretraining_gain(benchmark, small_context):
    """Standard vs two-step training of Bio1 for every SMALL-scale subject."""

    def run():
        return run_figure3(small_context, architecture="bio1")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig. 3 — per-subject pre-training gain (SMALL scale)", render_figure3(result))
    print(f"mean gain: {100 * result.mean_gain:+.2f}%  (paper: +3.39%)")

    # Pre-training helps on average.
    assert result.mean_gain > -0.02
    # The weakest subject gains at least as much as the strongest one
    # (the paper's "weak subjects benefit most" finding).
    weakest = min(result.standard, key=result.standard.get)
    strongest = max(result.standard, key=result.standard.get)
    assert result.gains[weakest] >= result.gains[strongest] - 0.05
