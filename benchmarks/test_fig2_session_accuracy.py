"""Benchmark regenerating Fig. 2 — accuracy per testing session.

Paper series: Bioformer (h=8,d=1), Bioformer (h=2,d=2) and TEMPONet on
testing sessions 6-10, with and without inter-subject pre-training.
Expected shape: accuracy degrades with session distance; pre-training
shifts every curve up.
"""

import pytest

pytestmark = pytest.mark.slow  # long-horizon training; excluded from tier-1

from conftest import report
from repro.experiments import render_figure2, run_figure2


@pytest.mark.benchmark(group="fig2")
def test_fig2_session_accuracy(benchmark, small_context):
    """Train the three paper architectures with both protocols (1 subject,
    SMALL scale) and print the per-session accuracy series."""

    def run():
        return run_figure2(
            small_context,
            architectures=("bio1", "bio2", "temponet"),
            subjects=[1],
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig. 2 — accuracy per testing session (SMALL scale, subject 1)", render_figure2(result))

    sessions = result.sessions
    for name in ("bio1", "bio2", "temponet"):
        series = result.series[(name, False)]
        # Later sessions are harder: the last two sessions do not beat the
        # first two (allowing noise at the reduced scale).
        early = (series[sessions[0]] + series[sessions[1]]) / 2
        late = (series[sessions[-2]] + series[sessions[-1]]) / 2
        assert late <= early + 0.10, f"{name}: no session degradation"
    # Pre-training helps the Bioformers on average (paper: +3.4% / +2.5%).
    assert result.pretraining_gain("bio1") > -0.05
