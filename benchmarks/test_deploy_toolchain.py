"""Benchmark of the graph-level GAP8 deployment toolchain (Table I, traced).

The `table1` benchmarks regenerate the paper's deployment table from the
*analytical* architecture profiles; this module regenerates the same rows
from the other direction — tracing real model instances, quantising their
weights to int8, planning the L2 activation arena and the L1 tiling, and
generating the C bundle — which is the flow a user runs before flashing a
device.  The weight-memory column must land on the paper's numbers because
it is a property of the architecture, not of training.
"""

import numpy as np
import pytest

from conftest import report
from repro.deploy import deploy_graph, plan_tiling, trace_model
from repro.models import bioformer_bio1, bioformer_bio2, temponet
from repro.utils.tables import format_table

#: (label, builder) for the Table I rows, at the paper's input geometry.
ROWS = (
    ("Bio1, wind=10", lambda: bioformer_bio1(patch_size=10)),
    ("Bio1, wind=20", lambda: bioformer_bio1(patch_size=20)),
    ("Bio1, wind=30", lambda: bioformer_bio1(patch_size=30)),
    ("Bio2, wind=10", lambda: bioformer_bio2(patch_size=10)),
    ("Bio2, wind=30", lambda: bioformer_bio2(patch_size=30)),
    ("TEMPONet", lambda: temponet()),
)

#: Paper Table I memory column, for the shape check.
PAPER_MEMORY_KB = {
    "Bio1, wind=10": 94.2,
    "Bio1, wind=20": 102.1,
    "Bio1, wind=30": 110.8,
    "Bio2, wind=10": 78.3,
    "Bio2, wind=30": 92.2,
    "TEMPONet": 461.0,
}


def run_toolchain_rows():
    rng = np.random.default_rng(0)
    calibration = rng.normal(size=(4, 14, 300))
    reports = {}
    for label, build in ROWS:
        model = build().eval()
        reports[label] = deploy_graph(model, calibration, generate_code=True)
    return reports


@pytest.mark.benchmark(group="deploy")
def test_deploy_toolchain_table(benchmark):
    """Trace -> int8 -> memory plan -> tiling -> codegen for every Table I row."""
    reports = benchmark.pedantic(run_toolchain_rows, rounds=1, iterations=1)

    rows = []
    for label, deployment in reports.items():
        rows.append(
            (
                label,
                f"{deployment.weight_kilobytes:.1f}",
                f"{deployment.activation_kilobytes:.1f}",
                f"{deployment.mmacs:.1f}",
                f"{deployment.latency_ms:.2f}",
                f"{deployment.energy_mj:.3f}",
                "yes" if deployment.tiling_plan.all_fit_single_tile else "no",
                f"{PAPER_MEMORY_KB[label]:.1f}",
            )
        )
    report(
        "Graph-level GAP8 deployment (traced models, paper geometry)",
        format_table(
            ("model", "weights kB", "act. kB", "MMAC", "lat. ms", "E mJ", "1-tile", "paper kB"),
            rows,
        ),
    )

    bio1 = reports["Bio1, wind=10"]
    tcn = reports["TEMPONet"]
    # Weight memory is architecture-determined: must match the paper closely.
    assert bio1.weight_kilobytes == pytest.approx(94.2, rel=0.08)
    assert tcn.weight_kilobytes == pytest.approx(461.0, rel=0.05)
    # Every row fits GAP8's 512 kB L2 including the activation arena.
    for deployment in reports.values():
        assert deployment.fits_l2
    # The paper's headline complexity ratio (~4.9x fewer MACs, ~8x energy).
    assert 4.0 < tcn.mmacs / bio1.mmacs < 6.5
    assert tcn.energy_mj / bio1.energy_mj > 5.0
    # Bioformer kernels fit L1 without tiling; TEMPONet needs tiles.
    assert bio1.tiling_plan.all_fit_single_tile or bio1.tiling_plan.total_tiles <= len(
        bio1.tiling_plan.layers
    ) + 2
    assert not tcn.tiling_plan.all_fit_single_tile
    # The generated C bundle is complete for every row.
    for deployment in reports.values():
        assert set(deployment.sources) == {"weights.h", "kernels.h", "network.h", "network.c"}


@pytest.mark.benchmark(group="deploy")
def test_int8_engine_matches_float_predictions(benchmark):
    """Integer-only inference agrees with float inference on the same graph
    (the qualification step before trusting the generated kernels)."""
    rng = np.random.default_rng(1)

    def run():
        model = bioformer_bio1(patch_size=10).eval()
        graph = trace_model(model)
        from repro.deploy import IntegerGraphExecutor, lower_to_int8

        quantized = lower_to_int8(graph, rng.normal(size=(8, 14, 300)))
        executor = IntegerGraphExecutor(quantized)
        return executor.agreement_with_float(rng.normal(size=(16, 14, 300)))

    agreement = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "int8 vs fp32 prediction agreement (Bio1, filter 10, paper geometry)",
        f"agreement on 16 random windows: {100 * agreement:.1f}%",
    )
    assert agreement >= 0.75


@pytest.mark.benchmark(group="deploy")
def test_l1_tiling_pressure(benchmark):
    """Ablation: shrinking L1 forces tiling and increases DMA traffic."""
    from repro.deploy import TilingConfig

    graph = trace_model(temponet().eval())

    def run():
        return {
            "full": plan_tiling(graph, TilingConfig(l1_bytes=56 * 1024)),
            "quarter": plan_tiling(graph, TilingConfig(l1_bytes=14 * 1024)),
            "tiny": plan_tiling(graph, TilingConfig(l1_bytes=4 * 1024)),
        }

    plans = benchmark(run)
    rows = [
        (name, plan.total_tiles, f"{plan.total_dma_bytes / 1024:.1f} kB")
        for name, plan in plans.items()
    ]
    report(
        "L1 tiling ablation (TEMPONet, paper geometry)",
        format_table(("L1 budget", "tiles", "DMA traffic"), rows),
    )
    assert plans["tiny"].total_tiles >= plans["quarter"].total_tiles >= plans["full"].total_tiles
    assert plans["tiny"].total_dma_bytes >= plans["full"].total_dma_bytes
