"""Benchmark of the hardware-aware architecture search (Sec. III-A at scale).

The paper picks Bio1 / Bio2 with an exhaustive grid over depth x heads (and
a filter-size sweep).  This benchmark runs the search package on the
SMALL-scale surrogate with short per-candidate training budgets and checks
that (i) the search finds candidates well above chance, (ii) the
complexity-constrained search returns a feasible architecture, and (iii) the
accuracy-vs-MACs Pareto frontier is populated — the same qualitative outcome
as the paper's Fig. 5.
"""

import pytest

pytestmark = pytest.mark.slow  # long-horizon training; excluded from tier-1

from conftest import report
from repro.data import subject_split
from repro.search import (
    EvolutionarySearch,
    RandomSearch,
    SearchSpace,
    TrainedAccuracyEvaluator,
)


def make_evaluator(small_context, epochs=3):
    split = subject_split(small_context.dataset, subject=1, include_pretrain=False)
    return TrainedAccuracyEvaluator(split.train, split.test, epochs=epochs, seed=0)


def make_space(small_context):
    return SearchSpace.reduced(
        num_channels=small_context.num_channels,
        window_samples=small_context.window_samples,
        num_classes=small_context.num_classes,
    )


@pytest.mark.benchmark(group="search")
def test_random_search_under_mac_budget(benchmark, small_context):
    """Random search with a deployment constraint (MAC budget)."""
    space = make_space(small_context)
    evaluator = make_evaluator(small_context)
    budget_macs = 2e6

    def run():
        search = RandomSearch(space, evaluator, constraints={"max_macs": budget_macs}, seed=3)
        return search.run(budget=6)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Random architecture search (SMALL scale, subject 1)", result.render(top=6))

    chance = 1.0 / small_context.num_classes
    assert result.num_evaluations == 6
    assert result.best.accuracy > chance
    if result.feasible():
        assert result.best.macs <= budget_macs
    frontier = result.pareto("macs")
    assert 1 <= len(frontier) <= result.num_evaluations
    print(f"Pareto frontier ({len(frontier)} points): " + ", ".join(p.label for p in frontier))


@pytest.mark.benchmark(group="search")
def test_evolutionary_search_improves_over_random_init(benchmark, small_context):
    """Evolutionary search must not end below its own initial population."""
    space = make_space(small_context)
    evaluator = make_evaluator(small_context, epochs=2)

    def run():
        search = EvolutionarySearch(space, evaluator, population_size=4, seed=5)
        return search.run(generations=2)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Evolutionary architecture search (SMALL scale, subject 1)", result.render(top=6))

    initial_population = result.history[:4]
    initial_best = max(candidate.accuracy for candidate in initial_population)
    assert result.best.accuracy >= initial_best
    assert result.num_evaluations == 4 + 2 * 4
