"""Host-side inference throughput of the reproduced architectures.

This does not model GAP8 (see the Table I benchmark for that); it measures
the NumPy substrate itself, which is what bounds how fast the training
experiments run, and documents the relative cost of the three architectures
at the paper's input geometry.
"""

import numpy as np
import pytest

from repro.models import bioformer_bio1, bioformer_bio2, temponet
from repro.nn import Tensor, no_grad

BATCH = 16
RNG = np.random.default_rng(0)
WINDOW = RNG.standard_normal((BATCH, 14, 300))


def _run_inference(model):
    model.eval()
    with no_grad():
        return model(Tensor(WINDOW)).data


@pytest.mark.benchmark(group="inference")
def test_bio1_inference_throughput(benchmark):
    """Bioformer (h=8, d=1, filter 10) forward pass, batch of 16 windows."""
    model = bioformer_bio1(patch_size=10)
    out = benchmark(_run_inference, model)
    assert out.shape == (BATCH, 8)


@pytest.mark.benchmark(group="inference")
def test_bio2_inference_throughput(benchmark):
    """Bioformer (h=2, d=2, filter 10) forward pass, batch of 16 windows."""
    model = bioformer_bio2(patch_size=10)
    out = benchmark(_run_inference, model)
    assert out.shape == (BATCH, 8)


@pytest.mark.benchmark(group="inference")
def test_temponet_inference_throughput(benchmark):
    """TEMPONet forward pass, batch of 16 windows (expected to be the slowest,
    mirroring its 5-16x higher MAC count)."""
    model = temponet()
    out = benchmark(_run_inference, model)
    assert out.shape == (BATCH, 8)
