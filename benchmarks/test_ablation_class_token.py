"""Ablation benchmark — class token vs mean pooling, and the filter 10 -> 20
energy trade-off called out in Sec. IV-B.

The paper motivates the dedicated class token (following ViT) as giving the
classifier a learnable query over the sequence; the alternative is mean
pooling of the token outputs.  The second ablation quantifies the paper's
claim that moving the front-end filter from 10 to 20 halves the energy for
a ~1.7% accuracy drop.
"""

import pytest

from conftest import report
from repro.data import subject_split
from repro.experiments import build_architecture
from repro.hw import deploy
from repro.models import BioformerConfig
from repro.models.bioformer import Bioformer
from repro.training import train_subject_specific
from repro.utils.tables import format_table


@pytest.mark.slow
@pytest.mark.benchmark(group="ablation")
def test_class_token_vs_mean_pooling(benchmark, small_context):
    """Train Bio1 with the class-token head and with mean pooling."""
    split = subject_split(small_context.dataset, 1, include_pretrain=False)
    window = small_context.window_samples

    def run():
        results = {}
        for pooling in ("class_token", "mean"):
            config = BioformerConfig(
                num_channels=small_context.num_channels,
                window_samples=window,
                num_classes=small_context.num_classes,
                patch_size=10,
                depth=1,
                num_heads=8,
                pooling=pooling,
                seed=1,
            )
            model = Bioformer(config)
            outcome = train_subject_specific(
                model, split, small_context.protocol, num_classes=small_context.num_classes
            )
            results[pooling] = outcome.test_accuracy
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Ablation — classification head (SMALL scale, Bio1, subject 1)",
        format_table(
            ["head", "test accuracy"],
            [[name, f"{100 * accuracy:.2f}%"] for name, accuracy in results.items()],
        ),
    )
    # Both heads must be functional classifiers; the class token (the paper's
    # choice) should not be substantially worse than mean pooling.
    assert all(accuracy > 0.25 for accuracy in results.values())
    assert results["class_token"] >= results["mean"] - 0.10


@pytest.mark.benchmark(group="ablation")
def test_filter_energy_tradeoff(benchmark):
    """Sec. IV-B: filter 10 -> 20 halves energy; filter 10 -> 30 saves more."""

    def run():
        return {
            f: deploy(BioformerConfig(depth=1, num_heads=8, patch_size=f))
            for f in (10, 20, 30)
        }

    records = benchmark(run)
    rows = [
        [f"filter {f}", f"{r.mmacs:.2f}", f"{r.latency_ms:.2f} ms", f"{r.energy_mj:.3f} mJ"]
        for f, r in records.items()
    ]
    report(
        "Ablation — front-end filter vs deployment cost (paper geometry)",
        format_table(["config", "MMAC", "latency", "energy"], rows),
    )
    energy_ratio = records[10].energy_mj / records[20].energy_mj
    print(f"energy reduction filter 10 -> 20: {energy_ratio:.2f}x (paper: ~2x)")
    assert 1.6 < energy_ratio < 2.4
    assert records[30].energy_mj < records[20].energy_mj < records[10].energy_mj
