"""Ablation benchmark — int8 quantisation cost and the I-BERT integer kernels.

Two aspects of the deployment flow:

* the accuracy cost of int8 weights/activations after QAT (paper: ~1%);
* the fidelity and speed of the integer-only softmax/GELU kernels that
  replace the float operators inside MHSA on GAP8.
"""

import numpy as np
import pytest
from scipy.special import softmax as scipy_softmax

from conftest import report
from repro.data import subject_split
from repro.experiments import build_architecture
from repro.quant import (
    QATConfig,
    evaluate_quantized,
    integer_gelu,
    integer_softmax,
    quantization_aware_finetune,
)
from repro.training import evaluate, train_subject_specific
from repro.utils.tables import format_table


@pytest.mark.slow
@pytest.mark.benchmark(group="quantization")
def test_quantization_accuracy_drop(benchmark, small_context):
    """Float vs int8 accuracy of Bio1 (filter 10) after QAT (SMALL scale)."""
    split = subject_split(small_context.dataset, 1, include_pretrain=False)

    def run():
        model = build_architecture("bio1", small_context, patch_size=10, seed=1)
        train_subject_specific(
            model, split, small_context.protocol, num_classes=small_context.num_classes
        )
        float_accuracy = evaluate(model, split.test, num_classes=8).accuracy
        quantization_aware_finetune(model, split.train, QATConfig.small())
        int8_accuracy = evaluate_quantized(
            model, split.test, calibration=split.train, num_classes=8
        ).accuracy
        return float_accuracy, int8_accuracy

    float_accuracy, int8_accuracy = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Ablation — int8 quantisation cost (SMALL scale, Bio1 f=10, subject 1)",
        format_table(
            ["precision", "test accuracy"],
            [["fp32", f"{100 * float_accuracy:.2f}%"], ["int8 (QAT)", f"{100 * int8_accuracy:.2f}%"]],
        ),
    )
    print(f"accuracy drop: {100 * (float_accuracy - int8_accuracy):.2f}% (paper: ~1%)")
    assert int8_accuracy >= float_accuracy - 0.10


@pytest.mark.benchmark(group="quantization")
def test_ibert_integer_softmax_kernel(benchmark):
    """Throughput and fidelity of the integer-only softmax over a realistic
    attention-score tensor (8 heads x 31 x 31, the Bio1 f=10 shape)."""
    rng = np.random.default_rng(0)
    scale = 1 / 128.0
    scores = rng.standard_normal((8, 31, 31)) * 2
    quantized_scores = np.round(scores / scale).astype(np.int64)

    q_out, out_scale = benchmark(integer_softmax, quantized_scores, scale)
    reference = scipy_softmax(scores, axis=-1)
    error = np.abs(q_out * out_scale - reference).max()
    print(f"max abs error vs float softmax: {error:.4f}")
    assert error < 0.02


@pytest.mark.benchmark(group="quantization")
def test_ibert_integer_gelu_kernel(benchmark):
    """Throughput and fidelity of the integer-only GELU over an FFN activation
    tensor (31 tokens x 128 hidden, the Bio1 f=10 shape)."""
    from scipy.special import erf

    rng = np.random.default_rng(1)
    scale = 1 / 64.0
    activations = rng.standard_normal((31, 128)) * 2
    quantized = np.round(activations / scale).astype(np.int64)

    q_out, out_scale = benchmark(integer_gelu, quantized, scale)
    reference = activations * 0.5 * (1.0 + erf(activations / np.sqrt(2)))
    error = np.abs(q_out * out_scale - reference).max()
    print(f"max abs error vs float GELU: {error:.4f}")
    assert error < 0.1
