"""Benchmark regenerating Fig. 5 — accuracy vs MACs / parameters Pareto spaces.

Paper: every Pareto point except the pre-trained TEMPONet is a Bioformer;
Bio1 (filter 10) needs ~4.9x fewer operations than TEMPONet at essentially
the same accuracy; the filter dimension barely moves the parameter count.
"""

import pytest

from conftest import report
from repro.experiments import render_figure5, run_figure5


@pytest.mark.benchmark(group="fig5")
def test_fig5_pareto_spaces(benchmark):
    """Profile every swept architecture at paper geometry and extract both
    Pareto frontiers (accuracy from the paper's reported values)."""
    result = benchmark(run_figure5)
    report("Fig. 5 — accuracy vs complexity Pareto spaces (paper geometry)", render_figure5(result))

    mac_reduction = result.mac_reduction_vs_temponet("bio1", 10)
    print(f"MAC reduction of Bio1 (f=10) vs TEMPONet: {mac_reduction:.1f}x (paper: 4.9x)")
    assert 4.0 < mac_reduction < 6.5

    lightest = result.mac_reduction_vs_temponet("bio2", 10)
    print(f"MAC reduction of Bio2 (f=10) vs TEMPONet: {lightest:.1f}x (paper: ~16x)")
    assert lightest > 5.0

    # The frontiers are populated by Bioformers (pre-trained TEMPONet may
    # take the very top point, as in the paper).
    for frontier in (result.pareto_by_macs(), result.pareto_by_params()):
        non_temponet = [p for p in frontier if "temponet" not in p.label]
        assert len(non_temponet) >= len(frontier) - 1
