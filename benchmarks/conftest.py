"""Shared fixtures of the benchmark harness.

Every benchmark that trains models uses the SMALL experiment scale: the
paper's protocol structure (sessions 1-5 train / 6-10 test, inter-subject
pre-training, QAT) on the reduced synthetic dataset, so the whole harness
finishes in minutes on a laptop while preserving the qualitative shape of
every figure/table.  Deployment/complexity benchmarks always use the
paper's full input geometry (14 channels x 300 samples), where the
analytical numbers are exact.
"""

import pytest

from repro.experiments import Scale, make_context


@pytest.fixture(scope="session")
def small_context():
    """SMALL-scale experiment context shared across the benchmark modules."""
    return make_context(Scale.SMALL, num_subjects=3)


def report(title: str, text: str) -> None:
    """Print a rendered experiment table under a visible banner."""
    print()
    print("=" * 79)
    print(title)
    print("=" * 79)
    print(text)
