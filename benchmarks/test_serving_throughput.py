"""Serving throughput of ``InferenceServer`` under dynamic micro-batching.

Measures windows/second through the full serving path (request submission,
micro-batch formation, backend execution, response distribution) at batch
caps 1 / 16 / 64 for both backends.  Batch cap 1 is the no-batching
baseline: every request pays the full per-forward Python dispatch cost,
which is exactly what the batcher amortises.

The float run doubles as the acceptance gate for the serving PR: the
batched (cap >= 16) rate must be at least 3x the unbatched per-window rate.
The int8 engine is dominated by integer einsum/I-BERT arithmetic that
scales nearly linearly with the batch, so its batching gain is smaller; it
is asserted to be non-regressive only.

The geometry is the deployment-unit scale (4 channels x 60 samples) used
throughout the deploy test-suite — the regime every MCU-class model of the
paper lives in, where per-call overhead, not BLAS time, bounds the host.
"""

import time

import numpy as np
import pytest

from repro.models import build_model
from repro.serve import BackendCache, InferenceServer

from conftest import report

GEOMETRY = dict(num_channels=4, window_samples=60, seed=11)
NUM_WINDOWS = 96
BATCH_CAPS = (1, 16, 64)


@pytest.fixture(scope="module")
def cache():
    return BackendCache()


@pytest.fixture(scope="module")
def model():
    return build_model("bio2", patch_size=10, **GEOMETRY).eval()


@pytest.fixture(scope="module")
def windows():
    rng = np.random.default_rng(0)
    return rng.normal(size=(NUM_WINDOWS, GEOMETRY["num_channels"], GEOMETRY["window_samples"]))


def _throughput(model, backend, max_batch, windows, cache, repeats=2, **kwargs):
    """Best-of-``repeats`` windows/sec through a fresh server."""
    best = 0.0
    mean_batch = 0.0
    for _ in range(repeats):
        with InferenceServer(
            model, backend, cache=cache, max_batch_size=max_batch, max_wait_s=0.005, **kwargs
        ) as server:
            server.infer(windows[:8])  # warm-up (allocator, caches)
            start = time.perf_counter()
            logits = server.infer(windows)
            elapsed = time.perf_counter() - start
            assert logits.shape == (windows.shape[0], 8)
            stats = server.stats.batcher
            assert stats.max_batch <= max_batch
            best = max(best, windows.shape[0] / elapsed)
            mean_batch = stats.mean_batch
    return best, mean_batch


def _render(rows):
    lines = [f"{'backend':>8} {'cap':>5} {'mean batch':>11} {'windows/s':>11} {'speedup':>9}"]
    for backend, cap, mean_batch, throughput, speedup in rows:
        lines.append(
            f"{backend:>8} {cap:>5d} {mean_batch:>11.1f} {throughput:>11.1f} {speedup:>8.2f}x"
        )
    return "\n".join(lines)


def test_float_backend_batching_speedup(model, windows, cache):
    """Dynamic batching must pay for itself: >= 3x over unbatched serving."""
    results = {
        cap: _throughput(model, "float", cap, windows, cache) for cap in BATCH_CAPS
    }
    base = results[1][0]
    rows = [
        ("float", cap, results[cap][1], results[cap][0], results[cap][0] / base)
        for cap in BATCH_CAPS
    ]
    report("Serving throughput — float backend (bio2, 4ch x 60smp)", _render(rows))
    batched_best = max(results[cap][0] for cap in BATCH_CAPS if cap >= 16)
    assert batched_best >= 3.0 * base, (
        f"batched serving reached only {batched_best / base:.2f}x the "
        f"unbatched rate ({batched_best:.0f} vs {base:.0f} windows/s)"
    )


def test_int8_backend_batching_not_regressive(model, windows, cache):
    """Integer engine serving: batching must never be slower than cap 1."""
    calibration = np.random.default_rng(1).normal(
        size=(16, GEOMETRY["num_channels"], GEOMETRY["window_samples"])
    )
    results = {
        cap: _throughput(
            model, "int8", cap, windows, cache, calibration=calibration
        )
        for cap in BATCH_CAPS
    }
    base = results[1][0]
    rows = [
        ("int8", cap, results[cap][1], results[cap][0], results[cap][0] / base)
        for cap in BATCH_CAPS
    ]
    report("Serving throughput — int8 backend (bio2, 4ch x 60smp)", _render(rows))
    batched_best = max(results[cap][0] for cap in BATCH_CAPS if cap >= 16)
    # Generous floor: integer arithmetic scales ~linearly with batch, so the
    # win is bounded; the invariant is that micro-batching never costs.
    assert batched_best >= 0.9 * base


def test_backend_cache_amortizes_construction(model, windows, cache):
    """Re-serving a cached architecture must skip model/graph construction."""
    start = time.perf_counter()
    with InferenceServer(model, "float", cache=cache, max_batch_size=16) as server:
        server.infer(windows[:4])
    elapsed = time.perf_counter() - start
    assert cache.hits >= 1
    # Construction was cached by the earlier benchmarks; opening a server
    # and classifying 4 windows should be near-instant.
    assert elapsed < 5.0
