"""Serving throughput of ``InferenceServer`` under dynamic micro-batching.

Measures windows/second through the full serving path (request submission,
micro-batch formation, backend execution, response distribution) at batch
caps 1 / 16 / 64 for both backends.  Batch cap 1 is the no-batching
baseline: every request pays the full per-forward Python dispatch cost,
which is exactly what the batcher amortises.

The float run doubles as the acceptance gate for the serving PR: the
batched (cap >= 16) rate must be at least 3x the unbatched per-window rate.
The int8 engine is dominated by integer einsum/I-BERT arithmetic that
scales nearly linearly with the batch, so its batching gain is smaller; it
is asserted to be non-regressive only.

The geometry is the deployment-unit scale (4 channels x 60 samples) used
throughout the deploy test-suite — the regime every MCU-class model of the
paper lives in, where per-call overhead, not BLAS time, bounds the host.

The scale-out benchmarks gate the worker-pool PR: pooled execution must
beat single-worker serving (>1x from 1 -> N workers; measured outright on
multi-core hosts and on the latency-bound float path everywhere), and a
high-priority request must preempt already-queued low-priority bulk work
while malformed/expired riders never fail their batch-mates.

The LUT benchmark gates the int8 op-set PR: the table-driven GELU/softmax
kernels must cut the nonlinearity time decisively at kernel level, and the
batched int8 path (batch >= 8) must come out faster than the elementwise
baseline end to end (bit-identical logits either way — the comparison is
purely about speed).

The GEMM benchmark gates the batched-integer-GEMM PR: with the MAC ops
(conv1d via im2col, linear, attention matmul) running as one whole-batch
integer GEMM per node, batch >= 8 int8 inference must beat the per-op
einsum baseline (again bit-identical logits — only the schedule differs).

Every run also appends its headline throughput numbers to
``BENCH_serving.json`` at the repository root, so later PRs can gate
against the recorded latency/throughput trajectory instead of a single
fragile absolute number.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.models import build_model
from repro.serve import (
    BackendCache,
    DeadlineExceeded,
    DynamicBatcher,
    InferenceServer,
    Priority,
    WorkerPool,
    build_int8_backend,
)

from conftest import report

GEOMETRY = dict(num_channels=4, window_samples=60, seed=11)
NUM_WINDOWS = 96
BATCH_CAPS = (1, 16, 64)
WORKER_COUNTS = (1, 2, 4)

#: Headline metrics accumulated by the benchmarks in this module and
#: appended to BENCH_serving.json (one trajectory entry per pytest run).
_BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_serving.json"
)
_BENCH_HISTORY_CAP = 100
_bench_metrics: dict = {}


def record_bench(name: str, **metrics) -> None:
    """Stash ``metrics`` (windows/s, speedups) under ``name`` for the dump."""
    _bench_metrics[name] = {
        key: round(float(value), 3) for key, value in metrics.items()
    }


@pytest.fixture(scope="module", autouse=True)
def bench_trajectory():
    """Append this run's metrics to the BENCH_serving.json trajectory."""
    yield
    if not _bench_metrics:
        return
    history = []
    if os.path.exists(_BENCH_PATH):
        try:
            with open(_BENCH_PATH, "r", encoding="utf-8") as handle:
                history = json.load(handle).get("history", [])
        except (json.JSONDecodeError, OSError):
            history = []  # a corrupt trajectory must never fail the suite
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "geometry": GEOMETRY,
            "num_windows": NUM_WINDOWS,
            "metrics": dict(sorted(_bench_metrics.items())),
        }
    )
    payload = {
        "description": "Serving latency/throughput trajectory "
        "(benchmarks/test_serving_throughput.py); newest entry last.",
        "history": history[-_BENCH_HISTORY_CAP:],
    }
    with open(_BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


@pytest.fixture(scope="module")
def cache():
    return BackendCache()


@pytest.fixture(scope="module")
def model():
    return build_model("bio2", patch_size=10, **GEOMETRY).eval()


@pytest.fixture(scope="module")
def windows():
    rng = np.random.default_rng(0)
    return rng.normal(size=(NUM_WINDOWS, GEOMETRY["num_channels"], GEOMETRY["window_samples"]))


def _throughput(model, backend, max_batch, windows, cache, repeats=2, **kwargs):
    """Best-of-``repeats`` windows/sec through a fresh server."""
    best = 0.0
    mean_batch = 0.0
    for _ in range(repeats):
        with InferenceServer(
            model, backend, cache=cache, max_batch_size=max_batch, max_wait_s=0.005, **kwargs
        ) as server:
            server.infer(windows[:8])  # warm-up (allocator, caches)
            start = time.perf_counter()
            logits = server.infer(windows)
            elapsed = time.perf_counter() - start
            assert logits.shape == (windows.shape[0], 8)
            stats = server.stats.batcher
            assert stats.max_batch <= max_batch
            best = max(best, windows.shape[0] / elapsed)
            mean_batch = stats.mean_batch
    return best, mean_batch


def _render(rows):
    lines = [f"{'backend':>8} {'cap':>5} {'mean batch':>11} {'windows/s':>11} {'speedup':>9}"]
    for backend, cap, mean_batch, throughput, speedup in rows:
        lines.append(
            f"{backend:>8} {cap:>5d} {mean_batch:>11.1f} {throughput:>11.1f} {speedup:>8.2f}x"
        )
    return "\n".join(lines)


def test_float_backend_batching_speedup(model, windows, cache):
    """Dynamic batching must pay for itself: >= 3x over unbatched serving."""
    results = {
        cap: _throughput(model, "float", cap, windows, cache) for cap in BATCH_CAPS
    }
    base = results[1][0]
    rows = [
        ("float", cap, results[cap][1], results[cap][0], results[cap][0] / base)
        for cap in BATCH_CAPS
    ]
    report("Serving throughput — float backend (bio2, 4ch x 60smp)", _render(rows))
    record_bench(
        "float_serving",
        **{f"cap{cap}_windows_per_s": results[cap][0] for cap in BATCH_CAPS},
    )
    batched_best = max(results[cap][0] for cap in BATCH_CAPS if cap >= 16)
    assert batched_best >= 3.0 * base, (
        f"batched serving reached only {batched_best / base:.2f}x the "
        f"unbatched rate ({batched_best:.0f} vs {base:.0f} windows/s)"
    )


def test_int8_backend_batching_not_regressive(model, windows, cache):
    """Integer engine serving: batching must never be slower than cap 1."""
    calibration = np.random.default_rng(1).normal(
        size=(16, GEOMETRY["num_channels"], GEOMETRY["window_samples"])
    )
    results = {
        cap: _throughput(
            model, "int8", cap, windows, cache, calibration=calibration
        )
        for cap in BATCH_CAPS
    }
    base = results[1][0]
    rows = [
        ("int8", cap, results[cap][1], results[cap][0], results[cap][0] / base)
        for cap in BATCH_CAPS
    ]
    report("Serving throughput — int8 backend (bio2, 4ch x 60smp)", _render(rows))
    record_bench(
        "int8_serving",
        **{f"cap{cap}_windows_per_s": results[cap][0] for cap in BATCH_CAPS},
    )
    batched_best = max(results[cap][0] for cap in BATCH_CAPS if cap >= 16)
    # Generous floor: integer arithmetic scales ~linearly with batch, so the
    # win is bounded; the invariant is that micro-batching never costs.
    assert batched_best >= 0.9 * base


def test_int8_lut_batch_scaling_vs_elementwise(model, windows, cache):
    """The int8 LUT op set must beat the elementwise baseline when batched.

    Two gates, ordered from most to least isolated:

    * **kernel level** — the summed execution time of the gelu/softmax
      nodes must drop by >= 1.5x under the LUT op set (the single gather
      replaces the I-BERT polynomial chains; measured ~5-15x on this
      geometry, gated loosely for noisy single-vCPU CI boxes);
    * **batched path** — whole-graph int8 inference at batch >= 8 must be
      faster with LUTs than with the elementwise kernels (interleaved
      best-of rounds; the best batched configuration decides, since the
      integer ``linear`` einsums dominate the profile and bound the
      end-to-end win to ~5-10%).

    Both backends produce bit-identical logits (pinned here and
    exhaustively in ``tests/test_lut_kernels.py``), so this comparison is
    purely about throughput.
    """
    calibration = np.random.default_rng(1).normal(
        size=(16, GEOMETRY["num_channels"], GEOMETRY["window_samples"])
    )
    backends = {
        "lut": build_int8_backend(model, calibration, use_lut=True),
        "elementwise": build_int8_backend(model, calibration, use_lut=False),
    }
    assert backends["lut"].uses_lut and not backends["elementwise"].uses_lut
    np.testing.assert_array_equal(
        backends["lut"].run_integer(windows[:4]),
        backends["elementwise"].run_integer(windows[:4]),
    )

    def nonlinearity_seconds(backend):
        """One whole-graph replay, accumulating only gelu/softmax node time."""
        executor = backend.executor
        graph = executor.graph
        quantized = executor.quantized
        stacked = np.asarray(windows[:32], dtype=np.float64)
        tensors = {
            graph.graph_input.name: quantized.input_quantization.quantize(stacked)
        }
        total = 0.0
        for node in graph.nodes:
            start = time.perf_counter()
            out = executor._run_node(node, tensors)
            elapsed = time.perf_counter() - start
            tensors[node.output.name] = out
            if node.op in ("gelu", "softmax"):
                total += elapsed
        return total

    for backend in backends.values():
        nonlinearity_seconds(backend)  # warm-up
    kernel_time = {
        name: min(nonlinearity_seconds(backend) for _ in range(3))
        for name, backend in backends.items()
    }

    batches = (1, 8, 32)
    best = {name: dict.fromkeys(batches, 0.0) for name in backends}
    for _ in range(5):  # interleaved best-of rounds: drift hits both equally
        for name, backend in backends.items():
            for batch in batches:
                stacked = windows[:batch]
                start = time.perf_counter()
                logits = backend.run(stacked)
                elapsed = time.perf_counter() - start
                assert logits.shape == (batch, 8)
                best[name][batch] = max(best[name][batch], batch / elapsed)

    speedup = {batch: best["lut"][batch] / best["elementwise"][batch] for batch in batches}
    rows = [
        f"{'batch':>6} {'lut win/s':>10} {'elementwise':>12} {'speedup':>9}"
    ]
    for batch in batches:
        rows.append(
            f"{batch:>6d} {best['lut'][batch]:>10.1f} "
            f"{best['elementwise'][batch]:>12.1f} {speedup[batch]:>8.2f}x"
        )
    report(
        "Int8 op set — LUT vs elementwise nonlinearities (bio2, 4ch x 60smp)",
        "\n".join(rows)
        + f"\nnonlinearity kernels (batch 32): "
        f"lut {1e3 * kernel_time['lut']:.2f} ms vs "
        f"elementwise {1e3 * kernel_time['elementwise']:.2f} ms "
        f"({kernel_time['elementwise'] / kernel_time['lut']:.1f}x)",
    )
    assert kernel_time["elementwise"] >= 1.5 * kernel_time["lut"], (
        f"LUT nonlinearities only {kernel_time['elementwise'] / kernel_time['lut']:.2f}x "
        f"faster at kernel level"
    )
    batched_speedup = max(speedup[batch] for batch in batches if batch >= 8)
    record_bench(
        "int8_lut_vs_elementwise",
        kernel_speedup=kernel_time["elementwise"] / kernel_time["lut"],
        **{f"batch{batch}_speedup": speedup[batch] for batch in batches},
    )
    assert batched_speedup > 1.0, (
        f"batched int8 LUT path never beat the elementwise baseline "
        f"(best {batched_speedup:.3f}x at batch >= 8)"
    )


def test_int8_gemm_batch_scaling_vs_einsum(model, windows, cache):
    """The batched integer GEMM path must beat the per-op einsum kernels.

    Two gates, mirroring the LUT benchmark:

    * **kernel level** — the summed execution time of the MAC nodes
      (conv1d / linear / matmul) at batch 32 must not regress versus the
      einsum op set (the GEMM contraction runs through BLAS wherever that
      is provably exact for int8-grid operands, so it is measured ~2-10x
      faster; the gate is loose for noisy single-vCPU CI boxes);
    * **batched path** — whole-graph int8 inference at batch >= 8 must be
      faster with the GEMM schedule than with the per-op einsum kernels
      (interleaved best-of rounds; the best batched configuration decides).

    Both backends produce bit-identical logits at every batch size (pinned
    here and exhaustively in ``tests/test_int_gemm.py``) — integer
    arithmetic is exact, so the comparison is purely about speed.
    """
    calibration = np.random.default_rng(1).normal(
        size=(16, GEOMETRY["num_channels"], GEOMETRY["window_samples"])
    )
    backends = {
        "gemm": build_int8_backend(model, calibration, use_gemm=True),
        "einsum": build_int8_backend(model, calibration, use_gemm=False),
    }
    assert backends["gemm"].uses_gemm and not backends["einsum"].uses_gemm
    np.testing.assert_array_equal(
        backends["gemm"].run_integer(windows[:8]),
        backends["einsum"].run_integer(windows[:8]),
    )

    def mac_seconds(backend):
        """One whole-graph replay, accumulating only conv/linear/matmul time."""
        executor = backend.executor
        graph = executor.graph
        quantized = executor.quantized
        stacked = np.asarray(windows[:32], dtype=np.float64)
        tensors = {
            graph.graph_input.name: quantized.input_quantization.quantize(stacked)
        }
        total = 0.0
        for node in graph.nodes:
            start = time.perf_counter()
            out = executor._run_node(node, tensors)
            elapsed = time.perf_counter() - start
            tensors[node.output.name] = out
            if node.op in ("conv1d", "linear", "matmul"):
                total += elapsed
        return total

    for backend in backends.values():
        mac_seconds(backend)  # warm-up
    kernel_time = {
        name: min(mac_seconds(backend) for _ in range(3))
        for name, backend in backends.items()
    }

    batches = (1, 8, 32)
    best = {name: dict.fromkeys(batches, 0.0) for name in backends}
    for _ in range(5):  # interleaved best-of rounds: drift hits both equally
        for name, backend in backends.items():
            for batch in batches:
                stacked = windows[:batch]
                start = time.perf_counter()
                logits = backend.run(stacked)
                elapsed = time.perf_counter() - start
                assert logits.shape == (batch, 8)
                best[name][batch] = max(best[name][batch], batch / elapsed)

    speedup = {batch: best["gemm"][batch] / best["einsum"][batch] for batch in batches}
    rows = [f"{'batch':>6} {'gemm win/s':>11} {'einsum':>10} {'speedup':>9}"]
    for batch in batches:
        rows.append(
            f"{batch:>6d} {best['gemm'][batch]:>11.1f} "
            f"{best['einsum'][batch]:>10.1f} {speedup[batch]:>8.2f}x"
        )
    report(
        "Int8 MAC op set — batched GEMM vs per-op einsum (bio2, 4ch x 60smp)",
        "\n".join(rows)
        + f"\nMAC kernels (batch 32): "
        f"gemm {1e3 * kernel_time['gemm']:.2f} ms vs "
        f"einsum {1e3 * kernel_time['einsum']:.2f} ms "
        f"({kernel_time['einsum'] / kernel_time['gemm']:.1f}x)",
    )
    record_bench(
        "int8_gemm_vs_einsum",
        kernel_speedup=kernel_time["einsum"] / kernel_time["gemm"],
        **{f"batch{batch}_speedup": speedup[batch] for batch in batches},
        **{f"batch{batch}_windows_per_s": best["gemm"][batch] for batch in batches},
    )
    assert kernel_time["einsum"] >= 0.9 * kernel_time["gemm"], (
        f"GEMM MAC kernels regressed at kernel level "
        f"({kernel_time['einsum'] / kernel_time['gemm']:.2f}x einsum/gemm)"
    )
    batched_speedup = max(speedup[batch] for batch in batches if batch >= 8)
    assert batched_speedup > 1.0, (
        f"batched int8 GEMM path never beat the per-op einsum baseline "
        f"(best {batched_speedup:.3f}x at batch >= 8)"
    )


def test_int8_lut_serving_not_regressive(model, windows, cache):
    """Through the full serving path the LUT op set must never cost.

    Server-level timing stacks batcher dispatch on both variants, so the
    gate here is non-regression (the decisive speed comparison is the
    backend-level benchmark above); the rows document what a served int8
    deployment sees.
    """
    calibration = np.random.default_rng(1).normal(
        size=(16, GEOMETRY["num_channels"], GEOMETRY["window_samples"])
    )
    results = {}
    for variant, lower_kwargs in (("lut", {}), ("elementwise", {"use_lut": False})):
        results[variant] = _throughput(
            model,
            "int8",
            16,
            windows,
            cache,
            calibration=calibration,
            lower_kwargs=lower_kwargs,
        )
    rows = [f"{'variant':>12} {'mean batch':>11} {'windows/s':>11}"]
    for variant, (throughput, mean_batch) in results.items():
        rows.append(f"{variant:>12} {mean_batch:>11.1f} {throughput:>11.1f}")
    report("Serving throughput — int8 LUT vs elementwise (cap 16)", "\n".join(rows))
    assert results["lut"][0] >= 0.8 * results["elementwise"][0]


def test_worker_pool_scales_float_throughput(model, windows, cache):
    """Pool scale-out on the raw float backend (hardware-aware gate).

    Thread scaling of pure NumPy compute needs real cores: the backend
    releases the GIL only inside BLAS kernels.  On a multi-core host the
    pooled configuration must beat single-worker serving outright; on a
    single-core host (1-vCPU CI) true parallelism is physically impossible,
    so the gate degrades to non-regression — the latency-bound benchmark
    below supplies the machine-independent >1x scaling proof.
    """
    results = {}
    for workers in WORKER_COUNTS:
        best = 0.0
        for _ in range(3):
            with InferenceServer(
                model,
                "float",
                cache=cache,
                max_batch_size=8,
                max_wait_s=0.002,
                num_workers=workers,
            ) as server:
                server.infer(windows[:8])  # warm-up
                start = time.perf_counter()
                logits = server.infer(windows)
                elapsed = time.perf_counter() - start
                assert logits.shape == (windows.shape[0], 8)
                best = max(best, windows.shape[0] / elapsed)
        results[workers] = best
    base = results[1]
    cores = os.cpu_count() or 1
    rows = "\n".join(
        f"{'float':>8} {workers:>8d} {results[workers]:>11.1f} {results[workers] / base:>8.2f}x"
        for workers in WORKER_COUNTS
    )
    report(
        f"Serving scale-out — float backend, worker pool ({cores} core(s))",
        f"{'backend':>8} {'workers':>8} {'windows/s':>11} {'speedup':>9}\n{rows}",
    )
    pooled_best = max(results[workers] for workers in WORKER_COUNTS if workers > 1)
    if cores >= 2:
        assert pooled_best > base, (
            f"worker pool never beat single-worker serving on a {cores}-core "
            f"host ({pooled_best:.0f} vs {base:.0f} windows/s)"
        )
    else:
        # Single core: parallel speedup is impossible; the pool must at
        # least not cost meaningful throughput.
        assert pooled_best >= 0.7 * base


def test_worker_pool_scales_latency_bound_float_serving(model, windows, cache):
    """The machine-independent pool-scaling gate: 1 -> N workers is >1x.

    Real deployments put transport latency around every backend call
    (device DMA, RPC to a sharded backend — the ROADMAP's next step), and
    that latency releases the GIL just like the BLAS kernels do on real
    cores.  Modelling it as a fixed per-micro-batch stall on top of the
    *actual float-backend compute* shows what the pool buys: with one
    worker every stall serialises behind batch formation; with N workers
    the stalls overlap, so throughput must scale >1x even on a 1-vCPU
    host.
    """
    stall_s = 0.003
    with InferenceServer(model, "float", cache=cache) as probe:
        float_backend = probe.backend

    def latency_bound_run(batch):
        time.sleep(stall_s)  # simulated transport; releases the GIL
        return float_backend.run(batch)

    results = {}
    for workers in WORKER_COUNTS:
        pool = WorkerPool(workers, name=f"bench-{workers}") if workers > 1 else None
        best = 0.0
        for _ in range(2):
            with DynamicBatcher(
                latency_bound_run,
                max_batch_size=8,
                max_wait_s=0.0,
                input_shape=float_backend.input_shape,
                pool=pool,
            ) as batcher:
                batcher.map(windows[:8], timeout=60.0)  # warm-up
                start = time.perf_counter()
                logits = batcher.map(windows, timeout=60.0)
                elapsed = time.perf_counter() - start
                assert logits.shape == (windows.shape[0], 8)
                best = max(best, windows.shape[0] / elapsed)
        if pool is not None:
            pool.close()
        results[workers] = best
    base = results[1]
    rows = "\n".join(
        f"{'float+rpc':>9} {workers:>8d} {results[workers]:>11.1f} {results[workers] / base:>8.2f}x"
        for workers in WORKER_COUNTS
    )
    report(
        f"Serving scale-out — latency-bound float backend ({1e3 * stall_s:.0f} ms stall/batch)",
        f"{'backend':>9} {'workers':>8} {'windows/s':>11} {'speedup':>9}\n{rows}",
    )
    pooled_best = max(results[workers] for workers in WORKER_COUNTS if workers > 1)
    assert pooled_best > 1.2 * base, (
        f"pool scaling reached only {pooled_best / base:.2f}x over one worker "
        f"({pooled_best:.0f} vs {base:.0f} windows/s)"
    )


def test_priority_preemption_latency(model, windows, cache):
    """A HIGH request must land before already-queued LOW bulk work.

    Floods the server with low-priority bulk scoring (with one malformed
    and one already-expired request riding along — neither may fail its
    batch-mates), then submits one high-priority window and measures its
    latency against the bulk completion time.
    """
    with InferenceServer(
        model, "float", cache=cache, max_batch_size=4, max_wait_s=0.0
    ) as server:
        server.infer(windows[:8])  # warm-up
        bulk = server.infer_async(windows, priority=Priority.LOW)
        expired = server.submit(windows[0], priority=Priority.LOW, deadline_s=0.0)
        malformed = server.batcher.submit(
            np.zeros((3, 3)), priority=Priority.LOW
        )  # bypasses the facade's shape check, lands mid-bulk
        start = time.perf_counter()
        urgent = server.submit(windows[0], priority=Priority.HIGH)
        urgent.result(timeout=60.0)
        urgent_latency = time.perf_counter() - start
        pending_at_urgent_done = sum(not f.done() for f in bulk)
        for future in bulk:
            future.result(timeout=60.0)
        bulk_latency = time.perf_counter() - start
        # Settle the riders before snapshotting stats: their counters are
        # published before their futures resolve.
        with pytest.raises(DeadlineExceeded):
            expired.result(timeout=60.0)
        with pytest.raises(ValueError):
            malformed.result(timeout=60.0)
        stats = server.stats
    report(
        "Priority preemption — HIGH vs queued LOW bulk (bio2, 4ch x 60smp)",
        f"bulk queued:        {len(bulk)} windows (LOW)\n"
        f"HIGH latency:       {1e3 * urgent_latency:.2f} ms\n"
        f"bulk completion:    {1e3 * bulk_latency:.2f} ms\n"
        f"LOW still pending when HIGH landed: {pending_at_urgent_done}\n"
        f"expired/malformed riders: {stats.batcher.expired}/{stats.batcher.malformed} "
        f"(batch-mates unaffected)",
    )
    # The urgent request preempted queued bulk work: it landed while most
    # of the earlier-submitted LOW traffic was still waiting.
    assert pending_at_urgent_done > len(bulk) // 2, (
        f"only {pending_at_urgent_done}/{len(bulk)} bulk requests were still "
        f"pending when the HIGH request completed"
    )
    assert urgent_latency < bulk_latency
    # The malformed and expired riders resolved alone; every bulk future
    # still produced its logits row.
    assert stats.batcher.expired >= 1
    assert stats.batcher.malformed == 1


def test_backend_cache_amortizes_construction(model, windows, cache):
    """Re-serving a cached architecture must skip model/graph construction."""
    start = time.perf_counter()
    with InferenceServer(model, "float", cache=cache, max_batch_size=16) as server:
        server.infer(windows[:4])
    elapsed = time.perf_counter() - start
    assert cache.hits >= 1
    # Construction was cached by the earlier benchmarks; opening a server
    # and classifying 4 windows should be near-instant.
    assert elapsed < 5.0


def test_idle_fault_layer_costs_nothing(model, windows, cache):
    """The resilience machinery must be free when nothing is failing.

    Serves the same float workload twice — bare, and with the full fault
    stack armed but idle (a FaultInjectingBackend with an empty schedule,
    a retry policy, a closed circuit breaker and admission control) — and
    gates the armed configuration at >= 0.7x the bare throughput
    (generous for noisy 1-vCPU CI boxes; the expected cost is a few
    percent of per-call bookkeeping).
    """
    from repro.serve import CircuitBreaker, FaultInjectingBackend, RetryPolicy

    bare, _ = _throughput(model, "float", 16, windows, cache, repeats=3)
    armed, _ = _throughput(
        model,
        "float",
        16,
        windows,
        cache,
        repeats=3,
        retry_policy=RetryPolicy(),
        circuit_breaker=CircuitBreaker(),
        max_queue_depth=4096,
        backend_wrapper=lambda b: FaultInjectingBackend(b, schedule=None),
    )
    report(
        "Serving throughput — fault layer armed but idle (float, cap 16)",
        f"{'config':>10} {'windows/s':>11}\n"
        f"{'bare':>10} {bare:>11.1f}\n"
        f"{'armed':>10} {armed:>11.1f}\n"
        f"ratio: {armed / bare:.2f}x",
    )
    record_bench(
        "idle_fault_layer", bare_windows_per_s=bare, armed_windows_per_s=armed,
        ratio=armed / bare,
    )
    assert armed >= 0.7 * bare, (
        f"idle fault layer cost {1 - armed / bare:.0%} of serving throughput "
        f"({armed:.0f} vs {bare:.0f} windows/s)"
    )


def test_session_lifecycle_churn_not_regressive(model, windows, cache):
    """Fleet session management must be free at the serving hot path.

    Two gates for the session-lifecycle PR:

    * **churn** — opening and closing 1000 managed sessions (each close
      capturing a final checkpoint into the tombstone ring) must sustain a
      rate that makes per-connection bookkeeping invisible next to a single
      model forward;
    * **streaming** — pushing the same raw signal through a managed session
      (quota accounting + degraded-electrode scan + activity tracking on
      every chunk) must reach >= 0.7x the bare ``open_stream`` rate
      (generous for noisy 1-vCPU CI boxes; the expected cost is a few
      percent of per-chunk bookkeeping).

    Both paths produce identical decisions (pinned in
    ``tests/test_serve_sessions.py``), so the comparison is purely about
    overhead.
    """
    slide, smoothing = 20, 3
    window = GEOMETRY["window_samples"]
    num_windows = 200
    signal = np.random.default_rng(7).standard_normal(
        (GEOMETRY["num_channels"], window + slide * (num_windows - 1))
    )
    with InferenceServer(
        model, "float", cache=cache, max_batch_size=16, max_wait_s=0.0005
    ) as server:
        server.infer(windows[:8])  # warm-up (allocator, caches)
        with server.open_session_manager(slide=slide, smoothing=smoothing) as manager:
            churn = 1000
            start = time.perf_counter()
            for _ in range(churn):
                session = manager.create_session("bench")
                manager.close_session(session.session_id)
            churn_elapsed = time.perf_counter() - start
            churn_rate = churn / churn_elapsed

            best = {"bare": 0.0, "managed": 0.0}
            for _ in range(3):  # interleaved best-of: drift hits both equally
                start = time.perf_counter()
                bare = server.open_stream(slide=slide, smoothing=smoothing)
                bare.run(signal, chunk_size=64)
                elapsed = time.perf_counter() - start
                assert bare.windows_classified == num_windows
                best["bare"] = max(best["bare"], num_windows / elapsed)

                start = time.perf_counter()
                managed = manager.create_session("bench")
                managed.run(signal, chunk_size=64)
                elapsed = time.perf_counter() - start
                assert managed.windows_classified == num_windows
                assert managed.decisions == bare.decisions
                manager.close_session(managed.session_id)
                best["managed"] = max(best["managed"], num_windows / elapsed)
            stats = manager.stats
        assert stats.sessions_created == churn + 3
    ratio = best["managed"] / best["bare"]
    report(
        "Session lifecycle — managed vs bare streaming (float, cap 16)",
        f"open/close churn:   {churn_rate:>11.1f} sessions/s ({churn} sessions)\n"
        f"{'path':>10} {'windows/s':>11}\n"
        f"{'bare':>10} {best['bare']:>11.1f}\n"
        f"{'managed':>10} {best['managed']:>11.1f}\n"
        f"ratio: {ratio:.2f}x",
    )
    record_bench(
        "session_lifecycle",
        churn_sessions_per_s=churn_rate,
        bare_windows_per_s=best["bare"],
        managed_windows_per_s=best["managed"],
        ratio=ratio,
    )
    # A session open/close round trip is pure Python bookkeeping plus one
    # empty-buffer checkpoint; it must outpace any plausible request rate.
    assert churn_rate > 200.0, (
        f"managed-session churn reached only {churn_rate:.0f} open/close per "
        f"second across {churn} sessions"
    )
    assert ratio >= 0.7, (
        f"managed-session streaming cost {1 - ratio:.0%} of bare open_stream "
        f"throughput ({best['managed']:.0f} vs {best['bare']:.0f} windows/s)"
    )


def test_compile_wall_time_per_config(windows):
    """Record the deploy compiler's lowering wall-time per registry config.

    The pass-pipeline refactor moved the whole lowering into a
    PassManager; this benchmark keeps its cost visible in the
    BENCH_serving.json trajectory (default pipeline vs the optimizing
    pipeline, per architecture) and gates only a generous absolute
    ceiling — calibration dominates, and a pathological pass would blow
    straight through it.
    """
    from repro.deploy import lower_to_int8, trace_model

    calibration = np.random.default_rng(5).normal(
        size=(16, GEOMETRY["num_channels"], GEOMETRY["window_samples"])
    )
    configs = [("bio1", 10), ("bio2", 10), ("temponet", None)]
    rows = []
    for arch, patch in configs:
        kwargs = dict(GEOMETRY)
        if patch is not None:
            kwargs["patch_size"] = patch
        graph = trace_model(build_model(arch, **kwargs).eval())
        timings = {}
        for label, lower_kwargs in (("default", {}), ("optimized", {"optimize": True})):
            best = float("inf")
            for _ in range(2):
                start = time.perf_counter()
                quantized = lower_to_int8(graph, calibration, **lower_kwargs)
                elapsed = time.perf_counter() - start
                best = min(best, elapsed)
                # The manifest's per-pass timers nest inside this run's
                # total (compare against the same run, not the best one).
                assert sum(r.wall_ms for r in quantized.manifest) <= elapsed * 1e3 + 1.0
            timings[label] = best
        rows.append((arch, timings["default"], timings["optimized"]))
        record_bench(
            f"compile_{arch}",
            default_ms=timings["default"] * 1e3,
            optimized_ms=timings["optimized"] * 1e3,
        )
        assert timings["optimized"] < 10.0, (
            f"lowering {arch} took {timings['optimized']:.1f}s"
        )
    report(
        "Deploy compiler wall-time per config (best of 2)",
        f"{'config':>10} {'default ms':>11} {'optimized ms':>13}\n"
        + "\n".join(
            f"{arch:>10} {default * 1e3:>11.1f} {optimized * 1e3:>13.1f}"
            for arch, default, optimized in rows
        ),
    )
