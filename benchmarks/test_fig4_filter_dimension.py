"""Benchmark regenerating Fig. 4 — accuracy vs front-end filter dimension.

Paper: filter dimension 10 is the sweet spot for most models; pushing to 20
or 30 costs some accuracy but roughly halves the operation count (the
deployment trade-off of Table I).  Filter 1 (a per-sample linear embedding)
is both the most expensive and not the most accurate — the motivation for
the 1-D convolutional front-end.
"""

import pytest

pytestmark = pytest.mark.slow  # long-horizon training; excluded from tier-1

from conftest import report
from repro.experiments import render_figure4, run_figure4, scaled_filter_dimensions
from repro.hw import profile_bioformer
from repro.models import BioformerConfig


@pytest.mark.benchmark(group="fig4")
def test_fig4_filter_dimension(benchmark, small_context):
    """Sweep the filter dimension for Bio1 with both protocols (1 subject)."""
    filters = [f for f in scaled_filter_dimensions(small_context) if f >= 5]

    def run():
        return run_figure4(
            small_context,
            variants=("bio1",),
            protocols=(False, True),
            subjects=[1],
            filter_dimensions=filters,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig. 4 — accuracy vs filter dimension (SMALL scale, Bio1, subject 1)", render_figure4(result))

    # Complexity falls roughly linearly with the filter dimension (the other
    # half of the paper's trade-off), independent of training.
    macs = {
        f: profile_bioformer(BioformerConfig(depth=1, num_heads=8, patch_size=f)).total_macs
        for f in (10, 20)
    }
    ratio = macs[10] / macs[20]
    print(f"MAC reduction from filter 10 -> 20: {ratio:.2f}x (paper: 1.93x)")
    assert 1.5 < ratio < 2.5

    # Accuracy at the best filter beats the largest filter on the pre-trained
    # series (the paper's accuracy-vs-cost trade-off exists).
    series = result.accuracy[("bio1", True)]
    assert max(series.values()) >= series[max(series)] - 0.02
