"""Benchmark regenerating Table I — quantised architectures deployed on GAP8.

Paper rows (memory / MMAC / latency / energy / int8 accuracy):

    Bio1, wind=30   110.8 kB  1.2   1.03 ms  0.052 mJ  61.09%
    Bio1, wind=20   102.1 kB  1.7   1.37 ms  0.070 mJ  63.14%
    Bio1, wind=10    94.2 kB  3.3   2.72 ms  0.139 mJ  64.69%
    Bio2, wind=30    92.2 kB  1.0   1.55 ms  0.079 mJ  60.19%
    Bio2, wind=10    78.3 kB  2.5   4.82 ms  0.246 mJ  62.43%
    TEMPONet        461   kB 16.0  21.82 ms  1.11  mJ  61.00%

plus the battery-life projection (~257 h for the fastest Bioformer vs ~54 h
for TEMPONet on a 1000 mAh battery).
"""

import pytest

from conftest import report
from repro.experiments import render_table1, run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_deployment_columns(benchmark):
    """Memory / MMAC / latency / energy / battery columns for all six rows
    (analytical GAP8 model at paper geometry — milliseconds to compute)."""
    result = benchmark(run_table1, measure_accuracy=False)
    report("Table I — GAP8 deployment columns (paper geometry)", render_table1(result))
    print(
        f"energy ratio TEMPONet / Bio1(f=10): {result.energy_ratio():.1f}x (paper: 8.0x); "
        f"memory ratio: {result.memory_ratio():.1f}x (paper: 4.9x)"
    )

    bio1 = result.row("Bio1, wind=10")
    temponet = result.row("TEMPONet")
    assert bio1.memory_kb == pytest.approx(94.2, rel=0.05)
    assert bio1.latency_ms == pytest.approx(2.72, rel=0.15)
    assert bio1.energy_mj == pytest.approx(0.139, rel=0.15)
    assert temponet.memory_kb == pytest.approx(461, rel=0.05)
    assert not temponet.real_time
    assert result.energy_ratio() > 6.0
    assert 4.0 < result.memory_ratio() < 6.0
    # Battery life: fastest Bioformer ~5x the TEMPONet lifetime (paper: 4.77x).
    fastest = result.row("Bio1, wind=30")
    assert fastest.battery_life_hours / temponet.battery_life_hours > 3.5


@pytest.mark.slow
@pytest.mark.benchmark(group="table1")
def test_table1_quantized_accuracy(benchmark, small_context):
    """The accuracy column: train + QAT + int8-evaluate the two headline rows
    (Bio1 filter 10 and TEMPONet) on the SMALL-scale surrogate."""

    def run():
        return run_table1(
            small_context,
            configurations=(
                ("Bio1, wind=10", "bio1", 10),
                ("TEMPONet", "temponet", 0),
            ),
            measure_accuracy=True,
            subject=1,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Table I — quantised accuracy (SMALL scale, subject 1)", render_table1(result))

    for row in result.rows:
        assert row.quantized_accuracy is not None
        # int8 deployment costs only a few accuracy points vs float
        # (paper: ~1%; we allow more slack at the reduced scale).
        assert row.quantized_accuracy >= row.float_accuracy - 0.12
        assert row.quantized_accuracy > 1.5 / 8  # well above chance
