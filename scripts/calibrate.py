"""Internal calibration helper: checks that the reduced-scale presets show
the paper's qualitative effects (pre-training gain, session degradation).

Not part of the public API; used during development and kept for
reproducibility of the preset tuning.
"""

import argparse
import time

import numpy as np

from repro.data import NinaProDB6, NinaProDB6Config, subject_split
from repro.models import bioformer_bio1
from repro.training import ProtocolConfig, run_two_step_protocol, train_subject_specific


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--subjects", type=int, default=3)
    parser.add_argument("--eval-subjects", type=int, nargs="*", default=[1, 2, 3])
    args = parser.parse_args()

    cfg = NinaProDB6Config.small(num_subjects=args.subjects)
    ds = NinaProDB6(cfg)
    proto = ProtocolConfig.small()
    gains = []
    for subject in args.eval_subjects:
        split = subject_split(ds, subject)
        t0 = time.time()
        model_std = bioformer_bio1(patch_size=10, window_samples=cfg.window_samples)
        res_std = train_subject_specific(model_std, split, proto)
        model_pre = bioformer_bio1(patch_size=10, window_samples=cfg.window_samples)
        res_pre = run_two_step_protocol(model_pre, split, proto)
        gain = res_pre.test_accuracy - res_std.test_accuracy
        gains.append(gain)
        print(
            f"subject {subject}: standard {res_std.test_accuracy:.3f} "
            f"pretrain {res_pre.test_accuracy:.3f} gain {gain:+.3f} "
            f"({time.time() - t0:.0f}s)"
        )
        print("  std sessions", {k: round(v, 2) for k, v in res_std.session_series().items()})
        print("  pre sessions", {k: round(v, 2) for k, v in res_pre.session_series().items()})
    print(f"mean gain {np.mean(gains):+.3f}")


if __name__ == "__main__":
    main()
