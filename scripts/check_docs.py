#!/usr/bin/env python
"""Docs lint: every relative link in README.md and docs/ must resolve.

Checks, with nothing but the standard library:

* every markdown link/image target in README.md, docs/*.md, ROADMAP.md and
  CHANGES.md that points at a repository path exists on disk (external
  ``http(s)://`` / ``mailto:`` targets and pure ``#anchors`` are skipped);
* intra-document anchors (``file.md#section``) resolve to a heading of the
  target file, using GitHub's slug convention.

Run from the repository root (CI does)::

    python scripts/check_docs.py

Exits non-zero listing every broken link.  Example sources are validated
separately by ``python -m compileall`` in the CI docs job.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Markdown inline links/images: [text](target) — won't match code spans.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def _heading_slugs(markdown: str) -> set:
    """GitHub-style anchor slugs of every heading in ``markdown``."""
    slugs = set()
    for line in markdown.splitlines():
        match = re.match(r"#{1,6}\s+(.*)", line)
        if match:
            title = re.sub(r"[`*_\[\]()]", "", match.group(1)).strip().lower()
            slugs.add(re.sub(r"[^\w\- ]", "", title).replace(" ", "-"))
    return slugs


def check_file(path: Path) -> list:
    """Return human-readable problems for every broken link in ``path``.

    Link targets resolve relative to the containing file (GitHub's
    rendering rule); root-absolute ``/docs/...`` targets are not supported.
    """
    problems = []
    text = path.read_text(encoding="utf-8")
    for target in _LINK.findall(text):
        if target.startswith(_EXTERNAL):
            continue
        target, _, anchor = target.partition("#")
        if not target:  # same-document anchor
            if anchor and anchor not in _heading_slugs(text):
                problems.append(f"{path}: broken anchor '#{anchor}'")
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken link '{target}'")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in _heading_slugs(resolved.read_text(encoding="utf-8")):
                problems.append(f"{path}: broken anchor '{target}#{anchor}'")
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    required = [
        root / "README.md",
        root / "ROADMAP.md",
        root / "CHANGES.md",
        root / "docs" / "architecture.md",
        root / "docs" / "quantization.md",
        root / "docs" / "compiler.md",
        root / "docs" / "evaluation.md",
    ]
    documents = sorted(set(required) | set((root / "docs").glob("*.md")))
    problems = [
        f"{doc.relative_to(root)}: required document missing"
        for doc in required
        if not doc.exists()
    ]
    for document in documents:
        if document.exists():
            problems.extend(check_file(document))
    if problems:
        print("\n".join(problems))
        print(f"\ndocs lint: {len(problems)} problem(s)")
        return 1
    print(f"docs lint: {len(documents)} document(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
