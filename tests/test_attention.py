"""Tests of multi-head self-attention and the transformer encoder block."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.attention import FeedForward, MultiHeadSelfAttention, TransformerEncoderBlock


@pytest.fixture
def attention(rng):
    return MultiHeadSelfAttention(embed_dim=16, num_heads=4, head_dim=8, rng=rng)


class TestMultiHeadSelfAttention:
    def test_output_shape_preserved(self, attention, rng):
        x = Tensor(rng.standard_normal((3, 7, 16)))
        assert attention(x).shape == (3, 7, 16)

    def test_attention_rows_are_probabilities(self, attention, rng):
        attention.eval()
        attention(Tensor(rng.standard_normal((2, 5, 16))))
        maps = attention.last_attention
        assert maps.shape == (2, 4, 5, 5)
        np.testing.assert_allclose(maps.sum(axis=-1), 1.0, atol=1e-9)
        assert np.all(maps >= 0)

    def test_paper_head_dimension_is_independent_of_heads(self, rng):
        """The paper fixes P=32 regardless of H, so H*P can exceed C."""
        mhsa = MultiHeadSelfAttention(embed_dim=64, num_heads=8, head_dim=32, rng=rng)
        assert mhsa.query_projection.out_features == 256
        assert mhsa.output_projection.in_features == 256
        assert mhsa.output_projection.out_features == 64

    def test_wrong_embed_dim_raises(self, attention, rng):
        with pytest.raises(ValueError):
            attention(Tensor(rng.standard_normal((1, 4, 8))))

    def test_permutation_equivariance_without_positions(self, rng):
        """Self-attention (without positional encoding) commutes with token
        permutations — permuting the inputs permutes the outputs."""
        mhsa = MultiHeadSelfAttention(embed_dim=8, num_heads=2, head_dim=4, rng=rng)
        mhsa.eval()
        x = rng.standard_normal((1, 6, 8))
        permutation = rng.permutation(6)
        out = mhsa(Tensor(x)).data
        out_permuted = mhsa(Tensor(x[:, permutation, :])).data
        np.testing.assert_allclose(out_permuted, out[:, permutation, :], atol=1e-10)

    def test_gradients_flow_to_all_projections(self, attention, rng):
        x = Tensor(rng.standard_normal((2, 4, 16)), requires_grad=True)
        (attention(x) ** 2).sum().backward()
        for module in (
            attention.query_projection,
            attention.key_projection,
            attention.value_projection,
            attention.output_projection,
        ):
            assert module.weight.grad is not None
            assert np.any(module.weight.grad != 0)
        assert x.grad is not None

    def test_invalid_head_dim(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(embed_dim=8, num_heads=4, head_dim=0, rng=rng)

    def test_default_head_dim_is_embed_over_heads(self, rng):
        mhsa = MultiHeadSelfAttention(embed_dim=12, num_heads=3, rng=rng)
        assert mhsa.head_dim == 4


class TestFeedForward:
    def test_shape_and_hidden_dim(self, rng):
        ff = FeedForward(embed_dim=16, hidden_dim=32, rng=rng)
        assert ff(Tensor(rng.standard_normal((2, 5, 16)))).shape == (2, 5, 16)
        assert ff.expand.out_features == 32

    def test_positionwise_independence(self, rng):
        """Each token is processed independently of the others."""
        ff = FeedForward(embed_dim=8, hidden_dim=16, rng=rng)
        ff.eval()
        x = rng.standard_normal((1, 4, 8))
        full = ff(Tensor(x)).data
        single = ff(Tensor(x[:, 2:3, :])).data
        np.testing.assert_allclose(full[:, 2:3, :], single, atol=1e-12)


class TestTransformerEncoderBlock:
    def test_shape_preserved(self, rng):
        block = TransformerEncoderBlock(16, 2, 8, 32, rng=rng)
        assert block(Tensor(rng.standard_normal((2, 9, 16)))).shape == (2, 9, 16)

    def test_residual_path_at_init(self, rng):
        """With dropout off, the block output differs from the input but keeps
        the same scale (pre-norm residual)."""
        block = TransformerEncoderBlock(16, 2, 8, 32, dropout=0.0, rng=rng)
        block.eval()
        x = rng.standard_normal((1, 5, 16))
        out = block(Tensor(x)).data
        assert not np.allclose(out, x)
        assert out.std() < 10 * x.std()

    def test_parameter_count_formula(self, rng):
        """Parameters = QKV + out-proj + FFN + 2 LayerNorms."""
        embed, heads, head_dim, hidden = 64, 8, 32, 128
        block = TransformerEncoderBlock(embed, heads, head_dim, hidden, rng=rng)
        total_head = heads * head_dim
        expected = (
            3 * (embed * total_head + total_head)
            + total_head * embed + embed
            + embed * hidden + hidden + hidden * embed + embed
            + 2 * (2 * embed)
        )
        assert block.num_parameters() == expected

    def test_end_to_end_gradcheck(self, rng):
        block = TransformerEncoderBlock(8, 2, 4, 16, dropout=0.0, rng=rng)
        block.eval()
        x = Tensor(rng.standard_normal((1, 3, 8)), requires_grad=True)
        (block(x) ** 2).mean().backward()
        index = (0, 1, 4)
        eps = 1e-6
        base = x.data[index]
        x.data[index] = base + eps
        up = float((block(Tensor(x.data)) ** 2).mean().data)
        x.data[index] = base - eps
        down = float((block(Tensor(x.data)) ** 2).mean().data)
        x.data[index] = base
        numeric = (up - down) / (2 * eps)
        assert abs(numeric - x.grad[index]) < 1e-5
