"""Tests of the optimisers, schedulers and checkpoint serialisation."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.optim import SGD, Adam, AdamW, clip_grad_norm
from repro.nn.schedulers import ConstantSchedule, CosineDecay, LinearWarmup, StepDecay


def quadratic_loss(parameter):
    """Simple convex objective with minimum at 3."""
    return ((parameter - 3.0) ** 2).sum()


class TestOptimizers:
    @pytest.mark.parametrize("optimizer_class,lr", [(SGD, 0.1), (Adam, 0.2), (AdamW, 0.2)])
    def test_converges_on_quadratic(self, optimizer_class, lr):
        parameter = nn.Parameter(np.array([0.0, 10.0]))
        optimizer = optimizer_class([parameter], lr=lr)
        for _ in range(200):
            optimizer.zero_grad()
            loss = quadratic_loss(parameter)
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, [3.0, 3.0], atol=0.05)

    def test_sgd_momentum_accelerates(self):
        def run(momentum):
            parameter = nn.Parameter(np.array([10.0]))
            optimizer = SGD([parameter], lr=0.02, momentum=momentum)
            for _ in range(30):
                optimizer.zero_grad()
                quadratic_loss(parameter).backward()
                optimizer.step()
            return abs(parameter.data[0] - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        parameter = nn.Parameter(np.array([5.0]))
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        (parameter * 0.0).sum().backward()  # zero task gradient
        optimizer.step()
        assert abs(parameter.data[0]) < 5.0

    def test_adamw_decoupled_decay(self):
        parameter = nn.Parameter(np.array([5.0]))
        optimizer = AdamW([parameter], lr=0.0001, weight_decay=0.1)
        optimizer.zero_grad()
        (parameter * 0.0).sum().backward()
        optimizer.step()
        # Decoupled decay shrinks regardless of the (zero) gradient moments.
        assert parameter.data[0] < 5.0
        assert optimizer.weight_decay == 0.1  # restored after the step

    def test_skips_parameters_without_grad(self):
        used = nn.Parameter(np.array([1.0]))
        unused = nn.Parameter(np.array([2.0]))
        optimizer = Adam([used, unused], lr=0.1)
        optimizer.zero_grad()
        quadratic_loss(used).backward()
        optimizer.step()
        assert unused.data[0] == 2.0

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            Adam([nn.Parameter(np.zeros(1))], lr=0.0)

    def test_adam_state_dict_roundtrip(self):
        parameter = nn.Parameter(np.zeros(2))
        optimizer = Adam([parameter], lr=1e-3)
        optimizer.zero_grad()
        quadratic_loss(parameter).backward()
        optimizer.step()
        state = optimizer.state_dict()
        other = Adam([parameter], lr=5e-2)
        other.load_state_dict(state)
        assert other.lr == pytest.approx(1e-3)
        assert other._step_count == 1


class TestGradientClipping:
    def test_clip_reduces_norm(self):
        parameter = nn.Parameter(np.zeros(4))
        parameter.grad = np.full(4, 10.0)
        norm_before = clip_grad_norm([parameter], max_norm=1.0)
        assert norm_before == pytest.approx(20.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0)

    def test_no_clip_below_threshold(self):
        parameter = nn.Parameter(np.zeros(2))
        parameter.grad = np.array([0.1, 0.1])
        clip_grad_norm([parameter], max_norm=10.0)
        np.testing.assert_allclose(parameter.grad, [0.1, 0.1])

    def test_handles_missing_gradients(self):
        assert clip_grad_norm([nn.Parameter(np.zeros(2))], 1.0) == 0.0


class TestSchedulers:
    def _optimizer(self):
        return SGD([nn.Parameter(np.zeros(1))], lr=1.0)

    def test_linear_warmup_profile(self):
        optimizer = self._optimizer()
        scheduler = LinearWarmup(optimizer, start_lr=0.0, peak_lr=1.0, warmup_steps=10)
        rates = [scheduler.step() for _ in range(15)]
        assert rates[0] == pytest.approx(0.0)
        assert rates[5] == pytest.approx(0.5)
        assert all(rate == pytest.approx(1.0) for rate in rates[10:])
        assert optimizer.lr == pytest.approx(1.0)

    def test_paper_warmup_endpoints(self):
        """The paper warms up from 1e-7 to 5e-4."""
        scheduler = LinearWarmup(self._optimizer())
        assert scheduler.learning_rate(0) == pytest.approx(1e-7)
        assert scheduler.learning_rate(100) == pytest.approx(5e-4)

    def test_step_decay_paper_schedule(self):
        """Fine-tuning: 1e-4 reduced by 10x after 10 epochs."""
        scheduler = StepDecay(self._optimizer(), base_lr=1e-4, step_size=10, gamma=0.1)
        assert scheduler.learning_rate(0) == pytest.approx(1e-4)
        assert scheduler.learning_rate(9) == pytest.approx(1e-4)
        assert scheduler.learning_rate(10) == pytest.approx(1e-5)
        assert scheduler.learning_rate(20) == pytest.approx(1e-6)

    def test_cosine_decay_monotone(self):
        scheduler = CosineDecay(self._optimizer(), base_lr=1.0, total_steps=50, min_lr=0.1)
        rates = [scheduler.learning_rate(step) for step in range(51)]
        assert rates[0] == pytest.approx(1.0)
        assert rates[-1] == pytest.approx(0.1)
        assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))

    def test_constant_schedule(self):
        scheduler = ConstantSchedule(self._optimizer(), lr=0.123)
        assert scheduler.step() == pytest.approx(0.123)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LinearWarmup(self._optimizer(), warmup_steps=0)
        with pytest.raises(ValueError):
            StepDecay(self._optimizer(), step_size=0)
        with pytest.raises(ValueError):
            CosineDecay(self._optimizer(), base_lr=1.0, total_steps=0)

    def test_history_recorded(self):
        scheduler = StepDecay(self._optimizer(), base_lr=1.0, step_size=2, gamma=0.5)
        for _ in range(4):
            scheduler.step()
        assert scheduler.history == [1.0, 1.0, 0.5, 0.5]


class TestSerialization:
    def test_checkpoint_roundtrip(self, tmp_path, rng):
        from repro.nn.serialization import load_checkpoint, save_checkpoint

        source = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
        path = str(tmp_path / "model.npz")
        save_checkpoint(source, path)
        target = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        load_checkpoint(target, path)
        x = Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_allclose(source(x).data, target(x).data, atol=1e-12)

    def test_state_dict_file_contents(self, tmp_path):
        from repro.nn.serialization import load_state_dict, save_state_dict

        state = {"a": np.arange(3.0), "b": np.ones((2, 2))}
        path = str(tmp_path / "state.npz")
        save_state_dict(state, path)
        loaded = load_state_dict(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_allclose(loaded["a"], state["a"])
